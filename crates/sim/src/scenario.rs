//! The synthetic Trentino scenario.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use css_core::{CssPlatform, MemoryProvider, Role};
use css_event::{EventSchema, FieldDef, FieldKind};
use css_types::{
    ActorId, CssResult, EventTypeId, PersonId, PersonIdentity, Purpose, SimClock, Timestamp,
};

/// Identifiers of the scenario's organizations.
#[derive(Debug, Clone)]
pub struct Orgs {
    /// S. Chiara hospital (producer of clinical events).
    pub hospital: ActorId,
    /// Laboratory unit inside the hospital.
    pub laboratory: ActorId,
    /// Radiology unit inside the hospital.
    pub radiology: ActorId,
    /// Municipality of Trento (producer of meal-delivery events).
    pub municipality: ActorId,
    /// Private telecare company (producer of telecare and home-care events).
    pub telecare: ActorId,
    /// Social welfare department (producer of autonomy assessments,
    /// consumer of the social profile).
    pub welfare: ActorId,
    /// Elderly-care office inside the welfare department.
    pub elderly_office: ActorId,
    /// Provincial governance (statistics / reimbursement consumer).
    pub governance: ActorId,
    /// Family doctors (healthcare consumers).
    pub family_doctors: Vec<ActorId>,
}

/// Scenario sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Number of citizens in care.
    pub persons: usize,
    /// Number of family doctors.
    pub family_doctors: usize,
    /// RNG seed for person generation.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            persons: 50,
            family_doctors: 3,
            seed: 7,
        }
    }
}

/// A fully wired platform plus the population it serves.
pub struct Scenario {
    /// The assembled platform.
    pub platform: CssPlatform<MemoryProvider>,
    /// The simulated clock driving the platform.
    pub clock: SimClock,
    /// Organization ids.
    pub orgs: Orgs,
    /// The citizens.
    pub persons: Vec<PersonIdentity>,
}

/// Event type codes used by the scenario.
pub mod types {
    use css_types::EventTypeId;

    /// Laboratory blood test (hospital).
    pub fn blood_test() -> EventTypeId {
        EventTypeId::v1("blood-test")
    }
    /// Radiology report (hospital).
    pub fn radiology_report() -> EventTypeId {
        EventTypeId::v1("radiology-report")
    }
    /// Hospital discharge (hospital).
    pub fn discharge() -> EventTypeId {
        EventTypeId::v1("hospital-discharge")
    }
    /// Home care service delivered (telecare company).
    pub fn home_care() -> EventTypeId {
        EventTypeId::v1("home-care-service-event")
    }
    /// Telecare alarm (telecare company).
    pub fn telecare_alarm() -> EventTypeId {
        EventTypeId::v1("telecare-alarm")
    }
    /// Autonomy assessment (social welfare).
    pub fn autonomy() -> EventTypeId {
        EventTypeId::v1("autonomy-assessment")
    }
    /// Meal delivered at home (municipality).
    pub fn meal_delivery() -> EventTypeId {
        EventTypeId::v1("meal-delivery")
    }

    /// All scenario event types.
    pub fn all() -> Vec<EventTypeId> {
        vec![
            blood_test(),
            radiology_report(),
            discharge(),
            home_care(),
            telecare_alarm(),
            autonomy(),
            meal_delivery(),
        ]
    }
}

fn person_fields() -> Vec<FieldDef> {
    vec![FieldDef::required("PatientId", FieldKind::Integer)]
}

fn schemas(orgs: &Orgs) -> Vec<(EventSchema, &'static str)> {
    let mut blood = EventSchema::new(types::blood_test(), "Blood Test", orgs.hospital);
    for f in person_fields() {
        blood = blood.field(f);
    }
    let blood = blood
        .field(FieldDef::required("CollectedAt", FieldKind::DateTime))
        .field(
            FieldDef::required(
                "Result",
                FieldKind::Code(vec!["negative".into(), "positive".into()]),
            )
            .sensitive(),
        )
        .field(FieldDef::optional("Hemoglobin", FieldKind::Decimal).sensitive())
        .field(FieldDef::optional("HivResult", FieldKind::Text).sensitive());

    let mut radio = EventSchema::new(types::radiology_report(), "Radiology Report", orgs.hospital);
    for f in person_fields() {
        radio = radio.field(f);
    }
    let radio = radio
        .field(FieldDef::required(
            "Modality",
            FieldKind::Code(vec!["xray".into(), "ct".into(), "mri".into()]),
        ))
        .field(FieldDef::required("Report", FieldKind::Text).sensitive());

    let mut disch = EventSchema::new(types::discharge(), "Hospital Discharge", orgs.hospital);
    for f in person_fields() {
        disch = disch.field(f);
    }
    let disch = disch
        .field(FieldDef::required("Ward", FieldKind::Text))
        .field(FieldDef::required("DischargedAt", FieldKind::DateTime))
        .field(FieldDef::optional("Diagnosis", FieldKind::Text).sensitive())
        .field(FieldDef::optional("CarePlan", FieldKind::Text).sensitive());

    let mut home = EventSchema::new(types::home_care(), "Home Care Service Event", orgs.telecare);
    for f in person_fields() {
        home = home.field(f);
    }
    let home = home
        .field(FieldDef::required("Service", FieldKind::Text))
        .field(FieldDef::required("DurationMinutes", FieldKind::Integer))
        .field(FieldDef::optional("CareNotes", FieldKind::Text).sensitive());

    let mut alarm = EventSchema::new(types::telecare_alarm(), "Telecare Alarm", orgs.telecare);
    for f in person_fields() {
        alarm = alarm.field(f);
    }
    let alarm = alarm
        .field(FieldDef::required(
            "AlarmKind",
            FieldKind::Code(vec!["fall".into(), "panic".into(), "inactivity".into()]),
        ))
        .field(FieldDef::optional("Outcome", FieldKind::Text).sensitive());

    let mut auto = EventSchema::new(types::autonomy(), "Autonomy Assessment", orgs.welfare);
    for f in person_fields() {
        auto = auto.field(f);
    }
    let auto = auto
        .field(FieldDef::required("Age", FieldKind::Integer))
        .field(FieldDef::required(
            "Sex",
            FieldKind::Code(vec!["m".into(), "f".into()]),
        ))
        .field(FieldDef::required("AutonomyScore", FieldKind::Integer).sensitive())
        .field(FieldDef::optional("PsychNotes", FieldKind::Text).sensitive());

    let mut meal = EventSchema::new(types::meal_delivery(), "Meal Delivery", orgs.municipality);
    for f in person_fields() {
        meal = meal.field(f);
    }
    let meal = meal
        .field(FieldDef::required("MealType", FieldKind::Text))
        .field(FieldDef::optional("DietNotes", FieldKind::Text).sensitive());

    vec![
        (blood, "health/laboratory"),
        (radio, "health/radiology"),
        (disch, "health/hospital"),
        (home, "social/home-care"),
        (alarm, "social/telecare"),
        (auto, "social/welfare"),
        (meal, "social/home-care"),
    ]
}

const GIVEN_NAMES: &[&str] = &[
    "Mario", "Anna", "Luca", "Giulia", "Franco", "Elena", "Paolo", "Chiara", "Sergio", "Rita",
];
const SURNAMES: &[&str] = &[
    "Rossi", "Bianchi", "Ferrari", "Russo", "Gallo", "Conti", "Ricci", "Marino", "Greco", "Bruno",
];

fn generate_person(rng: &mut StdRng, id: u64) -> PersonIdentity {
    let name = GIVEN_NAMES[rng.gen_range(0..GIVEN_NAMES.len())];
    let surname = SURNAMES[rng.gen_range(0..SURNAMES.len())];
    let code: String = (0..16)
        .map(|i| {
            if i < 6 {
                (b'A' + rng.gen_range(0..26)) as char
            } else {
                char::from_digit(rng.gen_range(0..10), 10).unwrap()
            }
        })
        .collect();
    PersonIdentity {
        id: PersonId(id),
        fiscal_code: code,
        name: name.to_string(),
        surname: surname.to_string(),
    }
}

impl Scenario {
    /// Build the scenario: organizations, contracts, gateways, event
    /// classes, the policy matrix, and the citizen population.
    pub fn build(config: ScenarioConfig) -> CssResult<Scenario> {
        Self::build_sharded(config, None)
    }

    /// [`Scenario::build`] with an explicit controller shard count
    /// (`None` = the platform default) — the knob the shard-scaling
    /// experiments sweep.
    pub fn build_sharded(config: ScenarioConfig, shards: Option<usize>) -> CssResult<Scenario> {
        let clock = SimClock::starting_at(Timestamp(1_262_304_000_000)); // 2010-01-01
        let mut builder = CssPlatform::builder().clock(Arc::new(clock.clone()));
        if let Some(n) = shards {
            builder = builder.shards(n);
        }
        let mut platform = builder.build()?;

        let hospital = platform.register_organization("Ospedale S. Chiara")?;
        let laboratory = platform.register_unit(hospital, "Laboratory")?;
        let radiology = platform.register_unit(hospital, "Radiology")?;
        let municipality = platform.register_organization("Municipality of Trento")?;
        let telecare = platform.register_organization("Telecare Trentino S.p.A.")?;
        let welfare = platform.register_organization("Social Welfare Department")?;
        let elderly_office = platform.register_unit(welfare, "Elderly Care Office")?;
        let governance = platform.register_organization("Provincia Autonoma di Trento")?;
        let mut family_doctors = Vec::with_capacity(config.family_doctors);
        for i in 0..config.family_doctors {
            family_doctors
                .push(platform.register_organization(&format!("Family Doctor {}", i + 1))?);
        }

        let orgs = Orgs {
            hospital,
            laboratory,
            radiology,
            municipality,
            telecare,
            welfare,
            elderly_office,
            governance,
            family_doctors,
        };

        // Contracts: producers also consume (e.g. telecare reacts to
        // discharges), doctors/governance only consume.
        for p in [hospital, municipality, telecare, welfare] {
            platform.join(p, Role::Producer)?;
            platform.join(p, Role::Consumer)?;
        }
        for c in orgs.family_doctors.iter().copied().chain([governance]) {
            platform.join(c, Role::Consumer)?;
        }

        // Declare event classes.
        for (schema, domain) in schemas(&orgs) {
            platform
                .producer(schema.producer)?
                .declare(&schema, Some(domain))?;
        }

        // Policy matrix.
        Self::install_policies(&platform, &orgs)?;

        // Population.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let persons = (0..config.persons)
            .map(|i| generate_person(&mut rng, i as u64 + 1))
            .collect();

        Ok(Scenario {
            platform,
            clock,
            orgs,
            persons,
        })
    }

    fn install_policies(platform: &CssPlatform<MemoryProvider>, orgs: &Orgs) -> CssResult<()> {
        let hospital = platform.producer(orgs.hospital)?;
        let telecare = platform.producer(orgs.telecare)?;
        let welfare_p = platform.producer(orgs.welfare)?;
        let municipality = platform.producer(orgs.municipality)?;

        // Family doctors: clinical events, full clinical fields, for
        // healthcare treatment.
        for ty in [
            types::blood_test(),
            types::radiology_report(),
            types::discharge(),
        ] {
            hospital
                .policy_wizard(&ty)?
                .select_all_fields()
                .grant_to(orgs.family_doctors.iter().copied())
                .map_err(css_types::CssError::from)?
                .for_purposes([Purpose::HealthcareTreatment, Purpose::Emergency])
                .labeled("doctors-clinical", "family doctors, treatment")
                .save()?;
        }
        for ty in [types::telecare_alarm(), types::home_care()] {
            telecare
                .policy_wizard(&ty)?
                .select_all_fields()
                .grant_to(orgs.family_doctors.iter().copied())
                .map_err(css_types::CssError::from)?
                .for_purposes([Purpose::HealthcareTreatment, Purpose::Emergency])
                .labeled("doctors-telecare", "family doctors, treatment")
                .save()?;
        }

        // Welfare department: the social profile — discharge (no
        // diagnosis), home care, meals, autonomy, alarms.
        hospital
            .policy_wizard(&types::discharge())?
            .select_fields(["PatientId", "Ward", "DischargedAt", "CarePlan"])
            .map_err(css_types::CssError::from)?
            .grant_to([orgs.welfare])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::SocialAssistance])
            .labeled("welfare-discharge", "care continuity, no diagnosis")
            .save()?;
        telecare
            .policy_wizard(&types::home_care())?
            .select_all_fields()
            .grant_to([orgs.welfare])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::SocialAssistance, Purpose::ServiceAssessment])
            .labeled("welfare-homecare", "")
            .save()?;
        telecare
            .policy_wizard(&types::telecare_alarm())?
            .select_fields(["PatientId", "AlarmKind"])
            .map_err(css_types::CssError::from)?
            .grant_to([orgs.welfare])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::SocialAssistance])
            .labeled("welfare-alarms", "")
            .save()?;
        welfare_p
            .policy_wizard(&types::autonomy())?
            .select_all_fields()
            .grant_to([orgs.elderly_office])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::SocialAssistance])
            .labeled("welfare-own-assessments", "")
            .save()?;
        municipality
            .policy_wizard(&types::meal_delivery())?
            .select_all_fields()
            .grant_to([orgs.welfare])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::SocialAssistance, Purpose::ServiceAssessment])
            .labeled("welfare-meals", "")
            .save()?;

        // Governance: the paper's example — age, sex, autonomy_score for
        // statistical analysis; service events for reimbursement, no
        // sensitive notes.
        welfare_p
            .policy_wizard(&types::autonomy())?
            .select_fields(["Age", "Sex", "AutonomyScore"])
            .map_err(css_types::CssError::from)?
            .grant_to([orgs.governance])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::StatisticalAnalysis])
            .labeled("governance-stats", "elderly needs statistics")
            .save()?;
        telecare
            .policy_wizard(&types::home_care())?
            .select_fields(["PatientId", "Service", "DurationMinutes"])
            .map_err(css_types::CssError::from)?
            .grant_to([orgs.governance])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::Reimbursement, Purpose::ServiceAssessment])
            .labeled("governance-reimbursement-homecare", "")
            .save()?;
        municipality
            .policy_wizard(&types::meal_delivery())?
            .select_fields(["PatientId", "MealType"])
            .map_err(css_types::CssError::from)?
            .grant_to([orgs.governance])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::Reimbursement, Purpose::ServiceAssessment])
            .labeled("governance-reimbursement-meals", "")
            .save()?;

        // Telecare activates its service on discharge notifications.
        hospital
            .policy_wizard(&types::discharge())?
            .select_fields(["PatientId", "DischargedAt"])
            .map_err(css_types::CssError::from)?
            .grant_to([orgs.telecare])
            .map_err(css_types::CssError::from)?
            .for_purposes([Purpose::SocialAssistance])
            .labeled("telecare-activation", "")
            .save()?;
        Ok(())
    }

    /// The producer organization of a scenario event type.
    pub fn producer_of(&self, ty: &EventTypeId) -> ActorId {
        ty_producer(&self.orgs, ty)
    }
}

fn ty_producer(orgs: &Orgs, ty: &EventTypeId) -> ActorId {
    match ty.code() {
        "blood-test" | "radiology-report" | "hospital-discharge" => orgs.hospital,
        "home-care-service-event" | "telecare-alarm" => orgs.telecare,
        "autonomy-assessment" => orgs.welfare,
        "meal-delivery" => orgs.municipality,
        other => panic!("unknown scenario event type {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds() {
        let s = Scenario::build(ScenarioConfig::default()).unwrap();
        assert_eq!(s.persons.len(), 50);
        assert_eq!(s.orgs.family_doctors.len(), 3);
        // All event classes declared.
        let consumer = s.platform.consumer(s.orgs.governance).unwrap();
        assert_eq!(consumer.browse_catalog().len(), 7);
    }

    #[test]
    fn person_generation_is_deterministic() {
        let a = Scenario::build(ScenarioConfig {
            seed: 1,
            ..Default::default()
        })
        .unwrap();
        let b = Scenario::build(ScenarioConfig {
            seed: 1,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(a.persons, b.persons);
        let c = Scenario::build(ScenarioConfig {
            seed: 2,
            ..Default::default()
        })
        .unwrap();
        assert_ne!(a.persons, c.persons);
    }

    #[test]
    fn doctors_can_subscribe_to_clinical_events() {
        let s = Scenario::build(ScenarioConfig::default()).unwrap();
        let doctor = s.platform.consumer(s.orgs.family_doctors[0]).unwrap();
        assert!(doctor.subscribe(&types::blood_test()).is_ok());
        assert!(doctor.subscribe(&types::telecare_alarm()).is_ok());
        // But not to autonomy assessments (welfare internal).
        assert!(doctor.subscribe(&types::autonomy()).is_err());
    }

    #[test]
    fn governance_limited_to_statistics_fields() {
        let s = Scenario::build(ScenarioConfig::default()).unwrap();
        let gov = s.platform.consumer(s.orgs.governance).unwrap();
        assert!(gov.subscribe(&types::autonomy()).is_ok());
        // Governance cannot subscribe to blood tests at all.
        assert!(gov.subscribe(&types::blood_test()).is_err());
    }
}
