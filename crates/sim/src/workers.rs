//! Competing-consumer worker fleets over the Trentino scenario.
//!
//! A family-doctor practice rarely has one reader: a triage nurse, an
//! assistant and the doctor all work the same inbox. This module
//! simulates that operational shape on the platform's delivery groups —
//! N workers of one consumer organization split a notification stream
//! via [`css_core::ConsumerHandle::subscribe_grouped`], transient
//! failures are nacked and picked up by a peer, and the fleet as a
//! whole still processes every notification exactly once.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use css_types::{Clock, CssResult};

use crate::generator::synth_details;
use crate::scenario::{types, Scenario};

/// Sizing and failure-injection knobs for a worker-fleet run.
#[derive(Debug, Clone, Copy)]
pub struct WorkerFleetConfig {
    /// Competing workers sharing the group.
    pub workers: usize,
    /// Blood-test events published into the fleet.
    pub events: usize,
    /// Percent of first-touch deliveries a worker fails transiently
    /// (nacked, then redelivered to a peer).
    pub transient_failure_pct: u8,
    /// RNG seed for failure injection and person selection.
    pub seed: u64,
}

impl Default for WorkerFleetConfig {
    fn default() -> Self {
        WorkerFleetConfig {
            workers: 4,
            events: 200,
            transient_failure_pct: 10,
            seed: 7,
        }
    }
}

/// What the fleet did with the stream.
#[derive(Debug, Clone, Default)]
pub struct WorkerFleetReport {
    /// Notifications each worker acked.
    pub processed_per_worker: Vec<u64>,
    /// Deliveries that arrived on attempt > 1 (handed over by a peer's
    /// nack).
    pub redeliveries: u64,
    /// Total notifications acked across the fleet.
    pub total_processed: u64,
    /// Notifications seen by more than one worker's *ack* — always zero
    /// if the group contract holds.
    pub duplicates: u64,
}

/// Publish `config.events` blood tests and work them off with
/// `config.workers` competing subscribers of the first family doctor.
///
/// Workers poll round-robin without acknowledging; a seeded fraction of
/// first-touch deliveries is nacked (a worker mid-shift-change, a
/// transient EHR hiccup) and must be completed by a peer. The report's
/// invariants — `total_processed == events`, `duplicates == 0` — are
/// what the paper's "many entities can subscribe to the same type of
/// event" becomes when one entity is operationally many workers.
pub fn run_worker_fleet(
    scenario: &Scenario,
    config: WorkerFleetConfig,
) -> CssResult<WorkerFleetReport> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let doctor = scenario.orgs.family_doctors[0];
    let consumer = scenario.platform.consumer(doctor)?;
    let subs: Vec<_> = (0..config.workers.max(1))
        .map(|_| consumer.subscribe_grouped(&types::blood_test(), "triage"))
        .collect::<CssResult<_>>()?;

    let hospital = scenario.platform.producer(scenario.orgs.hospital)?;
    for _ in 0..config.events {
        let person = &scenario.persons[rng.gen_range(0..scenario.persons.len())];
        let details = synth_details(&types::blood_test(), person.id, &mut rng);
        hospital.publish(
            person.clone(),
            "blood test completed",
            details,
            scenario.clock.now(),
        )?;
    }

    let mut report = WorkerFleetReport {
        processed_per_worker: vec![0; subs.len()],
        ..Default::default()
    };
    let mut acked = HashSet::new();
    loop {
        let mut progressed = false;
        for (worker, sub) in subs.iter().enumerate() {
            let Some(delivery) = sub.next_unacked()? else {
                continue;
            };
            progressed = true;
            if delivery.attempt == 1 && rng.gen_range(0..100) < config.transient_failure_pct {
                sub.nack(delivery.delivery_id)?;
                continue;
            }
            if delivery.attempt > 1 {
                report.redeliveries += 1;
            }
            sub.ack(delivery.delivery_id)?;
            if !acked.insert(delivery.message.global_id) {
                report.duplicates += 1;
            }
            report.processed_per_worker[worker] += 1;
        }
        if !progressed {
            break;
        }
    }
    report.total_processed = report.processed_per_worker.iter().sum();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn fleet_processes_every_event_exactly_once() {
        let scenario = Scenario::build(ScenarioConfig::default()).unwrap();
        let report = run_worker_fleet(&scenario, WorkerFleetConfig::default()).unwrap();
        assert_eq!(report.total_processed, 200);
        assert_eq!(report.duplicates, 0);
        // Round-robin polling over a shared queue: everyone worked.
        assert!(report.processed_per_worker.iter().all(|&n| n > 0));
    }

    #[test]
    fn transient_failures_are_absorbed_by_peers() {
        let scenario = Scenario::build(ScenarioConfig::default()).unwrap();
        let report = run_worker_fleet(
            &scenario,
            WorkerFleetConfig {
                transient_failure_pct: 40,
                ..Default::default()
            },
        )
        .unwrap();
        // Failures were injected, redeliveries happened, nothing lost.
        assert!(report.redeliveries > 0);
        assert_eq!(report.total_processed, 200);
        assert_eq!(report.duplicates, 0);
    }

    #[test]
    fn single_worker_fleet_degenerates_to_a_solo_subscription() {
        let scenario = Scenario::build(ScenarioConfig::default()).unwrap();
        let report = run_worker_fleet(
            &scenario,
            WorkerFleetConfig {
                workers: 1,
                events: 50,
                transient_failure_pct: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.processed_per_worker, vec![50]);
        assert_eq!(report.redeliveries, 0);
    }
}
