//! The elderly care pathway.
//!
//! The processes the paper monitors "span multiple institutions": a
//! hospital discharge triggers a welfare assessment, which starts a home
//! care plan with meal deliveries and telecare monitoring. This module
//! generates that correlated sequence for one citizen, exercising the
//! multi-producer composition the paper calls the person's "social and
//! health profile ... composition of data events on the same person
//! produced by different sources".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use css_types::{Clock, CssResult, Duration, GlobalEventId, PersonIdentity};

use crate::generator::synth_details;
use crate::scenario::{types, Scenario};

/// Events generated for one person's pathway.
#[derive(Debug, Clone, Default)]
pub struct PathwayReport {
    /// Global ids in causal order.
    pub events: Vec<GlobalEventId>,
    /// Simulated days the pathway spanned.
    pub span_days: u64,
}

/// Run the pathway for one person: discharge → autonomy assessment →
/// `weeks` weeks of home care + meals, with occasional telecare alarms.
pub fn run_pathway(
    scenario: &Scenario,
    person: &PersonIdentity,
    weeks: usize,
    seed: u64,
) -> CssResult<PathwayReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = PathwayReport::default();
    let start = scenario.clock.now();

    let hospital = scenario.platform.producer(scenario.orgs.hospital)?;
    let welfare = scenario.platform.producer(scenario.orgs.welfare)?;
    let telecare = scenario.platform.producer(scenario.orgs.telecare)?;
    let municipality = scenario.platform.producer(scenario.orgs.municipality)?;

    let publish = |producer: &css_core::ProducerHandle<css_core::MemoryProvider>,
                   ty: &css_types::EventTypeId,
                   desc: &str,
                   rng: &mut StdRng|
     -> CssResult<GlobalEventId> {
        let details = synth_details(ty, person.id, rng);
        let receipt = producer.publish(person.clone(), desc, details, scenario.clock.now())?;
        Ok(receipt.global_id)
    };

    // 1. Discharge from hospital.
    report.events.push(publish(
        &hospital,
        &types::discharge(),
        "discharged after hip surgery",
        &mut rng,
    )?);

    // 2. Welfare assesses autonomy within a few days.
    scenario.clock.advance(Duration::days(rng.gen_range(2..5)));
    report.events.push(publish(
        &welfare,
        &types::autonomy(),
        "autonomy assessed at home",
        &mut rng,
    )?);

    // 3. Weekly care: 3 home-care visits + 5 meals, occasional alarms.
    for _ in 0..weeks {
        for _ in 0..3 {
            scenario.clock.advance(Duration::days(2));
            report.events.push(publish(
                &telecare,
                &types::home_care(),
                "home care visit",
                &mut rng,
            )?);
        }
        for _ in 0..5 {
            scenario.clock.advance(Duration::hours(24));
            report.events.push(publish(
                &municipality,
                &types::meal_delivery(),
                "meal delivered",
                &mut rng,
            )?);
        }
        if rng.gen_bool(0.2) {
            report.events.push(publish(
                &telecare,
                &types::telecare_alarm(),
                "telecare alarm",
                &mut rng,
            )?);
        }
    }

    report.span_days =
        scenario.clock.now().since(start).as_millis() / Duration::days(1).as_millis();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn pathway_produces_correlated_sequence() {
        let scenario = Scenario::build(ScenarioConfig {
            persons: 3,
            family_doctors: 1,
            seed: 1,
        })
        .unwrap();
        let person = scenario.persons[0].clone();
        let report = run_pathway(&scenario, &person, 2, 42).unwrap();
        // discharge + assessment + 2*(3 home care + 5 meals) [+ alarms]
        assert!(report.events.len() >= 18);
        assert!(report.span_days >= 14);
        // All events are about the same person, discoverable via the
        // index by an authorized consumer (welfare sees the social
        // profile).
        let welfare = scenario.platform.consumer(scenario.orgs.welfare).unwrap();
        let profile = welfare.inquire_by_person(person.id).unwrap();
        assert!(profile.len() >= 10);
        assert!(profile.iter().all(|n| n.person.id == person.id));
    }

    #[test]
    fn pathway_events_are_ordered_in_time() {
        let scenario = Scenario::build(ScenarioConfig {
            persons: 3,
            family_doctors: 1,
            seed: 1,
        })
        .unwrap();
        let person = scenario.persons[1].clone();
        run_pathway(&scenario, &person, 1, 7).unwrap();
        let welfare = scenario.platform.consumer(scenario.orgs.welfare).unwrap();
        let profile = welfare.inquire_by_person(person.id).unwrap();
        let times: Vec<_> = profile.iter().map(|n| n.occurred_at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "profile should read as a timeline");
    }
}
