//! Property: a log written with [`RecordLog::append_batch`] is
//! byte-identical to one written with per-record [`RecordLog::append`]
//! calls, so recovery replays both the same way — including after a
//! crash that tears the final batch.

use css_storage::{KvStore, LogBackend, MemBackend, RecordLog};
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary record payloads (sizes include empty records).
fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(any::<u8>(), 0..64usize), 1..20usize)
}

proptest! {
    #[test]
    fn batched_log_replays_like_sequential(
        records in payloads(),
        split in 0..100usize,
        tear in 0..32usize,
    ) {
        // Write the same records once record-at-a-time and once with an
        // append/append_batch mix (split picks the batch boundary).
        let mut sequential = RecordLog::new(MemBackend::new());
        for r in &records {
            sequential.append(r).unwrap();
        }
        let mut batched = RecordLog::new(MemBackend::new());
        let cut = split % records.len();
        for r in &records[..cut] {
            batched.append(r).unwrap();
        }
        let tail: Vec<&[u8]> = records[cut..].iter().map(Vec::as_slice).collect();
        batched.append_batch(&tail).unwrap();
        prop_assert_eq!(sequential.byte_len(), batched.byte_len());

        // Crash: tear an arbitrary number of bytes off both logs.
        let mut seq_backend = sequential.into_backend();
        let mut batch_backend = batched.into_backend();
        let tear = (tear as u64).min(seq_backend.len());
        seq_backend.truncate(seq_backend.len() - tear).unwrap();
        batch_backend.truncate(batch_backend.len() - tear).unwrap();

        let (seq_log, seq_outcome) = RecordLog::recover(seq_backend).unwrap();
        let (batch_log, batch_outcome) = RecordLog::recover(batch_backend).unwrap();
        prop_assert_eq!(&seq_outcome, &batch_outcome);
        for ptr in &seq_outcome.records {
            prop_assert_eq!(seq_log.read(*ptr).unwrap(), batch_log.read(*ptr).unwrap());
        }
    }

    #[test]
    fn batched_kv_replays_like_sequential(
        entries in vec((vec(any::<u8>(), 0..8usize), vec(any::<u8>(), 0..16usize)), 1..16usize),
    ) {
        let mut sequential = KvStore::open(MemBackend::new()).unwrap().0;
        for (k, v) in &entries {
            sequential.put(k, v).unwrap();
        }
        let mut batched = KvStore::open(MemBackend::new()).unwrap().0;
        let pairs: Vec<(&[u8], &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        batched.put_batch(&pairs).unwrap();
        prop_assert_eq!(sequential.len(), batched.len());
        prop_assert_eq!(sequential.log_bytes(), batched.log_bytes());
        for (k, _) in &entries {
            prop_assert_eq!(sequential.get(k).unwrap(), batched.get(k).unwrap());
        }
    }
}
