//! A keyed store over the record log.
//!
//! Every mutation is appended to the log (`put` / `delete` records); an
//! in-memory index maps live keys to the log offset of their latest
//! value. Opening a store replays the log to rebuild the index, which
//! is the crash-recovery story: anything appended (and synced) before a
//! crash is recovered, a torn final append is dropped.

use std::collections::HashMap;

use crate::backend::LogBackend;
use crate::log::{RecordLog, RecordPtr};

use css_types::{CssError, CssResult};

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;

/// Keyed store with log-structured persistence.
pub struct KvStore<B: LogBackend> {
    log: RecordLog<B>,
    index: HashMap<Vec<u8>, RecordPtr>,
    /// Records (live + dead) appended since the store was opened or
    /// compacted; drives the compaction heuristic.
    dead_records: usize,
    live_records: usize,
}

impl<B: LogBackend> KvStore<B> {
    /// Open a store over a backend, replaying any existing log.
    ///
    /// Returns the store plus the number of torn-tail bytes dropped
    /// during recovery (0 on a clean open).
    pub fn open(backend: B) -> CssResult<(Self, u64)> {
        let (log, outcome) = RecordLog::recover(backend)?;
        let mut index = HashMap::new();
        let mut dead = 0usize;
        for ptr in &outcome.records {
            let payload = log.read(*ptr)?;
            let (op, key, _) = decode(&payload)?;
            match op {
                OP_PUT => {
                    if index.insert(key, *ptr).is_some() {
                        dead += 1;
                    }
                }
                OP_DELETE => {
                    if index.remove(&key).is_some() {
                        dead += 1;
                    }
                    dead += 1; // the delete record itself is dead weight
                }
                other => {
                    return Err(CssError::Storage(format!("unknown kv opcode {other}")));
                }
            }
        }
        let live = index.len();
        Ok((
            KvStore {
                log,
                index,
                dead_records: dead,
                live_records: live,
            },
            outcome.truncated_bytes,
        ))
    }

    /// Insert or replace a value.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> CssResult<()> {
        let record = encode(OP_PUT, key, value);
        let ptr = self.log.append(&record)?;
        if self.index.insert(key.to_vec(), ptr).is_some() {
            self.dead_records += 1;
        } else {
            self.live_records += 1;
        }
        Ok(())
    }

    /// Insert or replace several values as one group commit.
    ///
    /// All records are framed into a single backend write (see
    /// [`RecordLog::append_batch`]); callers that need durability sync
    /// once at the batch boundary instead of once per key. Later pairs
    /// win when the batch repeats a key, matching sequential `put`s.
    pub fn put_batch(&mut self, pairs: &[(&[u8], &[u8])]) -> CssResult<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        let records: Vec<Vec<u8>> = pairs
            .iter()
            .map(|(key, value)| encode(OP_PUT, key, value))
            .collect();
        let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
        let ptrs = self.log.append_batch(&refs)?;
        for ((key, _), ptr) in pairs.iter().zip(ptrs) {
            if self.index.insert(key.to_vec(), ptr).is_some() {
                self.dead_records += 1;
            } else {
                self.live_records += 1;
            }
        }
        Ok(())
    }

    /// Fetch a value.
    pub fn get(&self, key: &[u8]) -> CssResult<Option<Vec<u8>>> {
        match self.index.get(key) {
            None => Ok(None),
            Some(ptr) => {
                let payload = self.log.read(*ptr)?;
                let (_, _, value) = decode(&payload)?;
                Ok(Some(value))
            }
        }
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Remove a key. Returns whether it was present.
    pub fn delete(&mut self, key: &[u8]) -> CssResult<bool> {
        if !self.index.contains_key(key) {
            return Ok(false);
        }
        let record = encode(OP_DELETE, key, b"");
        self.log.append(&record)?;
        self.index.remove(key);
        self.live_records -= 1;
        self.dead_records += 2;
        Ok(true)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store has no live keys.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Iterate over live keys (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = &[u8]> {
        self.index.keys().map(Vec::as_slice)
    }

    /// Flush the log to stable storage.
    pub fn sync(&mut self) -> CssResult<()> {
        self.log.sync()
    }

    /// Bytes currently occupied by the log (live + garbage).
    pub fn log_bytes(&self) -> u64 {
        self.log.byte_len()
    }

    /// Fraction of records that are dead weight (0.0 when fully compact).
    pub fn garbage_ratio(&self) -> f64 {
        let total = self.live_records + self.dead_records;
        if total == 0 {
            0.0
        } else {
            self.dead_records as f64 / total as f64
        }
    }

    /// Rewrite only live entries into a fresh backend, returning the
    /// compacted store. The old backend is discarded.
    pub fn compact_into(self, backend: B) -> CssResult<Self> {
        let mut fresh = RecordLog::new(backend);
        let mut new_index = HashMap::with_capacity(self.index.len());
        for (key, ptr) in &self.index {
            let payload = self.log.read(*ptr)?;
            let new_ptr = fresh.append(&payload)?;
            new_index.insert(key.clone(), new_ptr);
        }
        fresh.sync()?;
        let live = new_index.len();
        Ok(KvStore {
            log: fresh,
            index: new_index,
            dead_records: 0,
            live_records: live,
        })
    }
}

fn encode(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + key.len() + value.len());
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
    out
}

fn decode(payload: &[u8]) -> CssResult<(u8, Vec<u8>, Vec<u8>)> {
    let err = || CssError::Storage("malformed kv record".into());
    if payload.len() < 9 {
        return Err(err());
    }
    let op = payload[0];
    let klen = crate::le_u32(&payload[1..5]).ok_or_else(err)? as usize;
    if payload.len() < 5 + klen + 4 {
        return Err(err());
    }
    let key = payload[5..5 + klen].to_vec();
    let vstart = 5 + klen + 4;
    let vlen = crate::le_u32(&payload[5 + klen..vstart]).ok_or_else(err)? as usize;
    if payload.len() != vstart + vlen {
        return Err(err());
    }
    let value = payload[vstart..].to_vec();
    Ok((op, key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FileBackend, MemBackend};

    fn mem() -> KvStore<MemBackend> {
        KvStore::open(MemBackend::new()).unwrap().0
    }

    #[test]
    fn put_get_delete() {
        let mut kv = mem();
        kv.put(b"k1", b"v1").unwrap();
        kv.put(b"k2", b"v2").unwrap();
        assert_eq!(kv.get(b"k1").unwrap().unwrap(), b"v1");
        assert_eq!(kv.len(), 2);
        assert!(kv.delete(b"k1").unwrap());
        assert!(!kv.delete(b"k1").unwrap());
        assert_eq!(kv.get(b"k1").unwrap(), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut kv = mem();
        kv.put(b"k", b"old").unwrap();
        kv.put(b"k", b"new").unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"new");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn replay_rebuilds_index() {
        let mut kv = mem();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.put(b"a", b"3").unwrap();
        kv.delete(b"b").unwrap();
        kv.put(b"c", b"4").unwrap();
        let backend = kv.log.into_backend();
        let (kv, torn) = KvStore::open(backend).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"3");
        assert_eq!(kv.get(b"b").unwrap(), None);
        assert_eq!(kv.get(b"c").unwrap().unwrap(), b"4");
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn torn_tail_dropped_on_open() {
        let mut kv = mem();
        kv.put(b"safe", b"value").unwrap();
        kv.put(b"torn", b"lost").unwrap();
        let mut backend = kv.log.into_backend();
        let len = LogBackend::len(&backend);
        backend.truncate(len - 3).unwrap();
        let (kv, torn) = KvStore::open(backend).unwrap();
        assert!(torn > 0);
        assert_eq!(kv.get(b"safe").unwrap().unwrap(), b"value");
        assert_eq!(kv.get(b"torn").unwrap(), None);
    }

    #[test]
    fn compaction_preserves_live_data_and_shrinks_log() {
        let mut kv = mem();
        for i in 0..100u32 {
            kv.put(b"hot", format!("version-{i}").as_bytes()).unwrap();
        }
        kv.put(b"cold", b"stable").unwrap();
        kv.put(b"gone", b"bye").unwrap();
        kv.delete(b"gone").unwrap();
        let before = kv.log_bytes();
        assert!(kv.garbage_ratio() > 0.9);
        let kv = kv.compact_into(MemBackend::new()).unwrap();
        assert!(kv.log_bytes() < before / 10);
        assert_eq!(kv.garbage_ratio(), 0.0);
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), b"version-99");
        assert_eq!(kv.get(b"cold").unwrap().unwrap(), b"stable");
        assert_eq!(kv.get(b"gone").unwrap(), None);
    }

    #[test]
    fn put_batch_matches_sequential_puts() {
        let mut seq = mem();
        seq.put(b"a", b"1").unwrap();
        seq.put(b"b", b"2").unwrap();
        seq.put(b"a", b"3").unwrap();
        let mut batched = mem();
        batched
            .put_batch(&[(b"a", b"1"), (b"b", b"2"), (b"a", b"3")])
            .unwrap();
        assert_eq!(batched.log_bytes(), seq.log_bytes());
        assert_eq!(batched.get(b"a").unwrap().unwrap(), b"3");
        assert_eq!(batched.get(b"b").unwrap().unwrap(), b"2");
        assert_eq!(batched.len(), 2);
        assert_eq!(batched.garbage_ratio(), seq.garbage_ratio());
        // Replay sees the same live set.
        let (reopened, torn) = KvStore::open(batched.log.into_backend()).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(reopened.get(b"a").unwrap().unwrap(), b"3");
        assert_eq!(reopened.len(), 2);
    }

    #[test]
    fn file_backed_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("css-kv-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kv.log");
        let _ = std::fs::remove_file(&path);
        {
            let (mut kv, _) = KvStore::open(FileBackend::open(&path).unwrap()).unwrap();
            kv.put(b"detail:src-1", b"<BloodTest>...</BloodTest>")
                .unwrap();
            kv.sync().unwrap();
        }
        let (kv, torn) = KvStore::open(FileBackend::open(&path).unwrap()).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(
            kv.get(b"detail:src-1").unwrap().unwrap(),
            b"<BloodTest>...</BloodTest>"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_keys_and_values_are_legal() {
        let mut kv = mem();
        kv.put(b"", b"empty key").unwrap();
        kv.put(b"empty value", b"").unwrap();
        assert_eq!(kv.get(b"").unwrap().unwrap(), b"empty key");
        assert_eq!(kv.get(b"empty value").unwrap().unwrap(), b"");
    }

    #[test]
    fn keys_iterates_live_set() {
        let mut kv = mem();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.delete(b"a").unwrap();
        let keys: Vec<&[u8]> = kv.keys().collect();
        assert_eq!(keys, vec![b"b".as_slice()]);
    }
}
