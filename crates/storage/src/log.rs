//! Append-only record log with checksums and torn-tail recovery.
//!
//! Record layout: `MAGIC (1) | len (4, LE) | crc32 (4, LE) | payload`.
//! The CRC covers the payload only; the magic byte catches gross
//! misalignment early.

use crate::backend::LogBackend;
use crate::crc::crc32;

use css_types::{CssError, CssResult};

const MAGIC: u8 = 0xC5;
const HEADER_LEN: usize = 9;

/// Stable pointer to a record inside the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordPtr(pub u64);

/// Result of a recovery scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Pointers to every intact record, in append order.
    pub records: Vec<RecordPtr>,
    /// Bytes of torn tail dropped (crash artifact), if any.
    pub truncated_bytes: u64,
}

/// An append-only log of checksummed records over a [`LogBackend`].
pub struct RecordLog<B: LogBackend> {
    backend: B,
}

impl<B: LogBackend> RecordLog<B> {
    /// Wrap a backend **without** scanning it. Use [`RecordLog::recover`]
    /// for logs that may contain existing data.
    pub fn new(backend: B) -> Self {
        RecordLog { backend }
    }

    /// Open a log over a backend, validating existing content.
    ///
    /// A torn final record (e.g. after a crash mid-append) is truncated
    /// away; corruption *before* the tail is an error because silently
    /// dropping acknowledged records would violate durability.
    pub fn recover(mut backend: B) -> CssResult<(Self, ScanOutcome)> {
        let mut records = Vec::new();
        let mut pos = 0u64;
        let total = backend.len();
        let mut torn_at: Option<u64> = None;
        while pos < total {
            match Self::read_header(&backend, pos, total) {
                Ok((payload_len, stored_crc)) => {
                    let payload_at = pos + HEADER_LEN as u64;
                    if payload_at + payload_len as u64 > total {
                        torn_at = Some(pos);
                        break;
                    }
                    let payload = backend.read_at(payload_at, payload_len)?;
                    if crc32(&payload) != stored_crc {
                        // A bad checksum on the *last* record is a torn
                        // write; anywhere else it is corruption.
                        if payload_at + payload_len as u64 == total {
                            torn_at = Some(pos);
                            break;
                        }
                        return Err(CssError::Storage(format!("corrupt record at offset {pos}")));
                    }
                    records.push(RecordPtr(pos));
                    pos = payload_at + payload_len as u64;
                }
                Err(HeaderIssue::Torn) => {
                    torn_at = Some(pos);
                    break;
                }
                Err(HeaderIssue::BadMagic) => {
                    return Err(CssError::Storage(format!(
                        "bad record magic at offset {pos}"
                    )));
                }
            }
        }
        let truncated_bytes = match torn_at {
            Some(at) => {
                let dropped = total - at;
                backend.truncate(at)?;
                dropped
            }
            None => 0,
        };
        Ok((
            RecordLog { backend },
            ScanOutcome {
                records,
                truncated_bytes,
            },
        ))
    }

    fn read_header(backend: &B, pos: u64, total: u64) -> Result<(usize, u32), HeaderIssue> {
        if pos + HEADER_LEN as u64 > total {
            return Err(HeaderIssue::Torn);
        }
        let header = backend
            .read_at(pos, HEADER_LEN)
            .map_err(|_| HeaderIssue::Torn)?;
        if header.len() < HEADER_LEN {
            return Err(HeaderIssue::Torn);
        }
        if header[0] != MAGIC {
            return Err(HeaderIssue::BadMagic);
        }
        let len = crate::le_u32(&header[1..5]).ok_or(HeaderIssue::Torn)? as usize;
        let crc = crate::le_u32(&header[5..9]).ok_or(HeaderIssue::Torn)?;
        Ok((len, crc))
    }

    /// Append a record, returning its pointer.
    pub fn append(&mut self, payload: &[u8]) -> CssResult<RecordPtr> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        frame_into(&mut buf, payload);
        let offset = self.backend.append(&buf)?;
        Ok(RecordPtr(offset))
    }

    /// Append several records as one group commit: all frames are
    /// buffered and handed to the backend in a single write, so the
    /// per-write overhead (and, for instrumented backends, the
    /// `storage.append` count) is paid once per batch instead of once
    /// per record.
    ///
    /// The on-disk format is byte-identical to the same sequence of
    /// [`RecordLog::append`] calls, so recovery replays a batched log
    /// exactly like a per-record one; a crash mid-batch leaves a torn
    /// tail that truncates back to the last complete record.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> CssResult<Vec<RecordPtr>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        let total: usize = payloads.iter().map(|p| HEADER_LEN + p.len()).sum();
        let mut buf = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(payloads.len());
        for payload in payloads {
            offsets.push(buf.len() as u64);
            frame_into(&mut buf, payload);
        }
        let base = self.backend.append(&buf)?;
        Ok(offsets.into_iter().map(|o| RecordPtr(base + o)).collect())
    }

    /// Read the record at `ptr`, verifying its checksum.
    pub fn read(&self, ptr: RecordPtr) -> CssResult<Vec<u8>> {
        let total = self.backend.len();
        let (len, stored_crc) = Self::read_header(&self.backend, ptr.0, total)
            .map_err(|_| CssError::Storage(format!("invalid record pointer {ptr:?}")))?;
        let payload = self.backend.read_at(ptr.0 + HEADER_LEN as u64, len)?;
        if crc32(&payload) != stored_crc {
            return Err(CssError::Storage(format!("checksum mismatch at {ptr:?}")));
        }
        Ok(payload)
    }

    /// Flush to stable storage.
    pub fn sync(&mut self) -> CssResult<()> {
        self.backend.sync()
    }

    /// Total bytes in the underlying backend.
    pub fn byte_len(&self) -> u64 {
        self.backend.len()
    }

    /// Consume the log and return the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

fn frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.push(MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

enum HeaderIssue {
    Torn,
    BadMagic,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LogBackend, MemBackend};

    #[test]
    fn append_read_roundtrip() {
        let mut log = RecordLog::new(MemBackend::new());
        let a = log.append(b"first").unwrap();
        let b = log.append(b"second record").unwrap();
        let c = log.append(b"").unwrap();
        assert_eq!(log.read(a).unwrap(), b"first");
        assert_eq!(log.read(b).unwrap(), b"second record");
        assert_eq!(log.read(c).unwrap(), b"");
    }

    #[test]
    fn recover_scans_all_records() {
        let mut log = RecordLog::new(MemBackend::new());
        for i in 0..20u32 {
            log.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        let backend = log.into_backend();
        let (log, outcome) = RecordLog::recover(backend).unwrap();
        assert_eq!(outcome.records.len(), 20);
        assert_eq!(outcome.truncated_bytes, 0);
        assert_eq!(log.read(outcome.records[7]).unwrap(), b"rec-7");
    }

    #[test]
    fn recover_truncates_torn_tail() {
        let mut log = RecordLog::new(MemBackend::new());
        log.append(b"complete").unwrap();
        log.append(b"will be torn").unwrap();
        let mut backend = log.into_backend();
        // Chop 5 bytes off the final record to simulate a crash.
        let new_len = backend.len() - 5;
        backend.truncate(new_len).unwrap();
        let (log, outcome) = RecordLog::recover(backend).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert!(outcome.truncated_bytes > 0);
        assert_eq!(log.read(outcome.records[0]).unwrap(), b"complete");
        // Log is usable after truncation.
        let mut log = log;
        let p = log.append(b"after recovery").unwrap();
        assert_eq!(log.read(p).unwrap(), b"after recovery");
    }

    #[test]
    fn recover_truncates_header_only_tail() {
        let mut log = RecordLog::new(MemBackend::new());
        log.append(b"ok").unwrap();
        let mut backend = log.into_backend();
        backend.append(&[MAGIC, 9, 0]).unwrap(); // partial header
        let (_, outcome) = RecordLog::recover(backend).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.truncated_bytes, 3);
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let mut log = RecordLog::new(MemBackend::new());
        let first = log.append(b"aaaa").unwrap();
        log.append(b"bbbb").unwrap();
        let backend = log.into_backend();
        // Flip a payload byte of the FIRST record.
        let raw = backend.read_at(0, backend.len() as usize).unwrap();
        let mut raw = raw;
        raw[(first.0 as usize) + HEADER_LEN] ^= 0xFF;
        let mut corrupted = MemBackend::new();
        corrupted.append(&raw).unwrap();
        assert!(RecordLog::recover(corrupted).is_err());
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut backend = MemBackend::new();
        backend.append(&[0x00; 32]).unwrap();
        assert!(RecordLog::recover(backend).is_err());
    }

    #[test]
    fn read_with_bogus_pointer_fails() {
        let mut log = RecordLog::new(MemBackend::new());
        log.append(b"data").unwrap();
        assert!(log.read(RecordPtr(3)).is_err());
        assert!(log.read(RecordPtr(1_000)).is_err());
    }

    #[test]
    fn append_batch_matches_sequential_appends() {
        let payloads: Vec<&[u8]> = vec![b"one", b"", b"three-three"];
        let mut sequential = RecordLog::new(MemBackend::new());
        let seq_ptrs: Vec<RecordPtr> = payloads
            .iter()
            .map(|p| sequential.append(p).unwrap())
            .collect();
        let mut batched = RecordLog::new(MemBackend::new());
        let batch_ptrs = batched.append_batch(&payloads).unwrap();
        assert_eq!(seq_ptrs, batch_ptrs);
        // Byte-identical logs → identical recovery.
        let seq_bytes = sequential.byte_len();
        assert_eq!(batched.byte_len(), seq_bytes);
        for (ptr, payload) in batch_ptrs.iter().zip(&payloads) {
            assert_eq!(&batched.read(*ptr).unwrap(), payload);
        }
        let (_, outcome) = RecordLog::recover(batched.into_backend()).unwrap();
        assert_eq!(outcome.records, seq_ptrs);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut log = RecordLog::new(MemBackend::new());
        assert!(log.append_batch(&[]).unwrap().is_empty());
        assert_eq!(log.byte_len(), 0);
    }

    #[test]
    fn torn_batch_tail_recovers_complete_prefix() {
        let mut log = RecordLog::new(MemBackend::new());
        log.append(b"before").unwrap();
        log.append_batch(&[b"batch-a", b"batch-b", b"batch-c"])
            .unwrap();
        let mut backend = log.into_backend();
        // Crash mid-batch: tear into the last record of the batch.
        let new_len = backend.len() - 3;
        backend.truncate(new_len).unwrap();
        let (log, outcome) = RecordLog::recover(backend).unwrap();
        assert_eq!(outcome.records.len(), 3); // before, batch-a, batch-b
        assert!(outcome.truncated_bytes > 0);
        assert_eq!(log.read(outcome.records[2]).unwrap(), b"batch-b");
    }

    #[test]
    fn empty_log_recovers_clean() {
        let (log, outcome) = RecordLog::recover(MemBackend::new()).unwrap();
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.truncated_bytes, 0);
        assert_eq!(log.byte_len(), 0);
    }
}
