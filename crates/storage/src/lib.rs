//! Durable storage substrate for the CSS platform.
//!
//! The Local Cooperation Gateway "persists each detail message notified
//! so that they can be retrieved even when the source systems are
//! un-accessible", and detail requests "may arrive ... even months
//! after the publication of the notification" (Section 4). That demands
//! a small, crash-safe store:
//!
//! - [`RecordLog`]: an append-only log of checksummed records over a
//!   pluggable backend (file or memory). Recovery scans tolerate a torn
//!   tail (partial final record after a crash) and surface genuine
//!   corruption as errors.
//! - [`KvStore`]: a keyed store layered on the log — puts and deletes
//!   are appended, an in-memory index maps keys to log offsets, recovery
//!   replays the log, and compaction rewrites only live entries.
//!
//! This is the persistence layer under the gateway's detail store, the
//! policy repository, and the audit log.

pub mod backend;
pub mod crc;
pub mod instrument;
pub mod kv;
pub mod log;

pub use backend::{FileBackend, LogBackend, MemBackend};
pub use instrument::InstrumentedBackend;
pub use kv::KvStore;
pub use log::{RecordLog, RecordPtr, ScanOutcome};

/// Little-endian `u32` from a 4-byte slice; `None` when the slice has
/// the wrong length. Frame decoding uses this so malformed lengths
/// surface as recoverable errors, never as a panic mid-replay.
pub(crate) fn le_u32(bytes: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = bytes.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}
