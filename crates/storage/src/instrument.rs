//! Telemetry wrapper for [`LogBackend`] implementations.

use css_telemetry::{Counter, Histogram, MetricsRegistry};

use crate::backend::LogBackend;
use css_types::CssResult;
use std::time::Instant;

/// Decorates any [`LogBackend`] with latency histograms and byte
/// counters under `storage.*` names:
///
/// - `storage.append` / `storage.sync` / `storage.read` histograms;
/// - `storage.appended_bytes` / `storage.read_bytes` counters.
///
/// Several stores can share one registry: the instruments are shared
/// handles, so the metrics aggregate across every wrapped backend.
#[derive(Debug)]
pub struct InstrumentedBackend<B> {
    inner: B,
    append_latency: Histogram,
    sync_latency: Histogram,
    read_latency: Histogram,
    appended_bytes: Counter,
    read_bytes: Counter,
}

impl<B: LogBackend> InstrumentedBackend<B> {
    /// Wrap `inner`, recording into `registry`.
    pub fn new(inner: B, registry: &MetricsRegistry) -> Self {
        InstrumentedBackend {
            inner,
            append_latency: registry.histogram("storage.append"),
            sync_latency: registry.histogram("storage.sync"),
            read_latency: registry.histogram("storage.read"),
            appended_bytes: registry.counter("storage.appended_bytes"),
            read_bytes: registry.counter("storage.read_bytes"),
        }
    }

    /// The wrapped backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: LogBackend> LogBackend for InstrumentedBackend<B> {
    fn append(&mut self, data: &[u8]) -> CssResult<u64> {
        let started = Instant::now();
        let out = self.inner.append(data);
        self.append_latency.record_duration(started.elapsed());
        if out.is_ok() {
            self.appended_bytes.add(data.len() as u64);
        }
        out
    }

    fn read_at(&self, offset: u64, len: usize) -> CssResult<Vec<u8>> {
        let started = Instant::now();
        let out = self.inner.read_at(offset, len);
        self.read_latency.record_duration(started.elapsed());
        if out.is_ok() {
            self.read_bytes.add(len as u64);
        }
        out
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn sync(&mut self) -> CssResult<()> {
        let started = Instant::now();
        let out = self.inner.sync();
        self.sync_latency.record_duration(started.elapsed());
        out
    }

    fn truncate(&mut self, len: u64) -> CssResult<()> {
        self.inner.truncate(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    #[test]
    fn records_latencies_and_byte_counts() {
        let registry = MetricsRegistry::new();
        let mut b = InstrumentedBackend::new(MemBackend::new(), &registry);
        b.append(b"hello").unwrap();
        b.append(b" world").unwrap();
        b.sync().unwrap();
        assert_eq!(b.read_at(0, 5).unwrap(), b"hello");

        let snap = registry.snapshot();
        assert_eq!(snap.histogram("storage.append").unwrap().count, 2);
        assert_eq!(snap.histogram("storage.sync").unwrap().count, 1);
        assert_eq!(snap.histogram("storage.read").unwrap().count, 1);
        assert_eq!(snap.counter("storage.appended_bytes"), 11);
        assert_eq!(snap.counter("storage.read_bytes"), 5);
    }

    #[test]
    fn failed_operations_do_not_count_bytes() {
        let registry = MetricsRegistry::new();
        let b = InstrumentedBackend::new(MemBackend::new(), &registry);
        assert!(b.read_at(10, 5).is_err());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.read_bytes"), 0);
        // The attempt itself is still timed.
        assert_eq!(snap.histogram("storage.read").unwrap().count, 1);
    }

    #[test]
    fn passes_the_backend_contract_through() {
        let registry = MetricsRegistry::new();
        let mut b = InstrumentedBackend::new(MemBackend::new(), &registry);
        assert!(b.is_empty());
        b.append(b"abcdef").unwrap();
        assert_eq!(b.len(), 6);
        b.truncate(3).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.into_inner().len(), 3);
    }

    #[test]
    fn shared_registry_aggregates_across_stores() {
        let registry = MetricsRegistry::new();
        let mut a = InstrumentedBackend::new(MemBackend::new(), &registry);
        let mut b = InstrumentedBackend::new(MemBackend::new(), &registry);
        a.append(b"xx").unwrap();
        b.append(b"yyy").unwrap();
        assert_eq!(registry.snapshot().counter("storage.appended_bytes"), 5);
    }
}
