//! Pluggable byte-log backends.
//!
//! A backend is an append-only byte vector with positional reads. The
//! platform runs on [`FileBackend`] (one file per store); tests and
//! benchmarks that don't care about durability use [`MemBackend`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use css_types::{CssError, CssResult};

/// An append-only byte log with positional reads.
pub trait LogBackend: Send {
    /// Append bytes, returning the offset they were written at.
    fn append(&mut self, data: &[u8]) -> CssResult<u64>;

    /// Read exactly `len` bytes starting at `offset`.
    fn read_at(&self, offset: u64, len: usize) -> CssResult<Vec<u8>>;

    /// Total bytes in the log.
    fn len(&self) -> u64;

    /// Whether the log is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush to stable storage (no-op for memory).
    fn sync(&mut self) -> CssResult<()>;

    /// Truncate the log to `len` bytes (used to drop a torn tail).
    fn truncate(&mut self, len: u64) -> CssResult<()>;
}

/// In-memory backend.
#[derive(Debug, Default)]
pub struct MemBackend {
    data: Vec<u8>,
}

impl MemBackend {
    /// An empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogBackend for MemBackend {
    fn append(&mut self, data: &[u8]) -> CssResult<u64> {
        let offset = self.data.len() as u64;
        self.data.extend_from_slice(data);
        Ok(offset)
    }

    fn read_at(&self, offset: u64, len: usize) -> CssResult<Vec<u8>> {
        let start = offset as usize;
        let end = start
            .checked_add(len)
            .ok_or_else(|| CssError::Storage("read range overflow".into()))?;
        if end > self.data.len() {
            return Err(CssError::Storage(format!(
                "read past end: {end} > {}",
                self.data.len()
            )));
        }
        Ok(self.data[start..end].to_vec())
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn sync(&mut self) -> CssResult<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> CssResult<()> {
        if len as usize > self.data.len() {
            return Err(CssError::Storage("truncate beyond end".into()));
        }
        self.data.truncate(len as usize);
        Ok(())
    }
}

/// File-backed backend. Appends go through a single owned handle;
/// reads reopen at the requested offset via a cloned handle.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    len: u64,
}

impl FileBackend {
    /// Open (creating if needed) the log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> CssResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path.as_ref())?;
        let len = file.metadata()?.len();
        Ok(FileBackend { file, len })
    }
}

impl LogBackend for FileBackend {
    fn append(&mut self, data: &[u8]) -> CssResult<u64> {
        let offset = self.len;
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        Ok(offset)
    }

    fn read_at(&self, offset: u64, len: usize) -> CssResult<Vec<u8>> {
        if offset + len as u64 > self.len {
            return Err(CssError::Storage(format!(
                "read past end: {} > {}",
                offset + len as u64,
                self.len
            )));
        }
        let mut handle = self.file.try_clone()?;
        handle.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        handle.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn sync(&mut self) -> CssResult<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> CssResult<()> {
        if len > self.len {
            return Err(CssError::Storage("truncate beyond end".into()));
        }
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.len = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut b: impl LogBackend) {
        assert!(b.is_empty());
        let o1 = b.append(b"hello").unwrap();
        let o2 = b.append(b" world").unwrap();
        assert_eq!(o1, 0);
        assert_eq!(o2, 5);
        assert_eq!(b.len(), 11);
        assert_eq!(b.read_at(0, 5).unwrap(), b"hello");
        assert_eq!(b.read_at(5, 6).unwrap(), b" world");
        assert!(b.read_at(7, 10).is_err());
        b.sync().unwrap();
        b.truncate(5).unwrap();
        assert_eq!(b.len(), 5);
        assert!(b.truncate(100).is_err());
        let o3 = b.append(b"!").unwrap();
        assert_eq!(o3, 5);
        assert_eq!(b.read_at(0, 6).unwrap(), b"hello!");
    }

    #[test]
    fn mem_backend_contract() {
        exercise(MemBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let dir = std::env::temp_dir().join(format!("css-storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contract.log");
        let _ = std::fs::remove_file(&path);
        exercise(FileBackend::open(&path).unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("css-storage-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reopen.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(b"durable").unwrap();
            b.sync().unwrap();
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 7);
        assert_eq!(b.read_at(0, 7).unwrap(), b"durable");
        let _ = std::fs::remove_file(&path);
    }
}
