//! E21 — flight-recorder overhead on the E15 mixed workload.
//!
//! The css-blackbox recorder (DESIGN.md §15) rides the ops sampler: on
//! every tick it diffs the telemetry snapshot, appends frames to its
//! bounded ring, and checks the SLO table for trigger edges. Like the
//! sampler itself (E17), the only cost the *workload* can feel is lock
//! contention on the registry plus the recorder's own ring mutex — the
//! frame assembly runs on the sampler thread. This bench drives the
//! E16/E15 mix (70% detail requests, 20% inquiries, 10% publishes)
//! against two identical worlds — both sampled every `SAMPLE_MS`, one
//! bare and one with a recorder fed by the sampler's observer hook —
//! using the same paired alternating-batch timing as E16/E17.
//! Target: < 2% per-op delta at this stress cadence.
//! Both series are printed in the harness result format so
//! `scripts/bench.sh` folds them into `BENCH_e21_blackbox_overhead.json`.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{blood_test_details, micro_world, person, print_header, MicroWorld, HOSPITAL};
use css_blackbox::{FlightRecorder, Severity, SloSample};
use css_controller::{DataController, SharedGateway};
use css_health::{AlertLevel, Sampler, Slo, SloEngine};
use css_storage::MemBackend;
use css_types::{Clock, EventTypeId, GlobalEventId, PersonId, Purpose, SourceEventId, Timestamp};

const EVENTS: u64 = 200;
/// Sampling period for both lanes: 50× the production default, so the
/// recorder's per-tick work lands dozens of times in a smoke window.
const SAMPLE_MS: u64 = 5;
/// Ops per alternating batch (see E16: pairing cancels machine noise).
const BATCH: u64 = 100;
/// Ring capacity, as the `.blackbox(512)` production default.
const RING: usize = 512;

/// One step of the E15 mix, identical across both lanes.
fn mixed_op(
    controller: &mut DataController<MemBackend>,
    gateway: &SharedGateway<MemBackend>,
    consumer: css_types::ActorId,
    event_ids: &[GlobalEventId],
    i: u64,
    publish_src: &mut u64,
) {
    let ty = EventTypeId::v1("blood-test");
    match i % 10 {
        0..=6 => {
            let id = event_ids[(i % event_ids.len() as u64) as usize];
            controller
                .request_details(consumer, ty, id, Purpose::HealthcareTreatment)
                .unwrap();
        }
        7 | 8 => {
            controller
                .inquire_by_person(consumer, PersonId(i % EVENTS + 1))
                .unwrap();
        }
        _ => {
            *publish_src += 1;
            let src = *publish_src;
            gateway
                .lock()
                .persist(&css_event::DetailMessage {
                    src_event_id: SourceEventId(src),
                    producer: HOSPITAL,
                    details: blood_test_details(src),
                })
                .unwrap();
            controller
                .publish(
                    HOSPITAL,
                    person(EVENTS + 1 + src % 10_000),
                    "blood test completed".into(),
                    ty,
                    Timestamp(1_000_000),
                    SourceEventId(src),
                    None,
                )
                .unwrap();
        }
    }
}

/// Corpus published, consumers drained, live queues dropped.
fn prepared_world() -> (MicroWorld, Vec<GlobalEventId>) {
    let mut world = micro_world(2);
    let ty = EventTypeId::v1("blood-test");
    let subs: Vec<_> = world
        .consumers
        .iter()
        .map(|c| world.controller.subscribe(*c, &ty).unwrap())
        .collect();
    let mut event_ids = Vec::new();
    for src in 1..=EVENTS {
        event_ids.push(world.publish_one(src));
    }
    for sub in subs {
        while let Some(d) = sub.poll().unwrap() {
            sub.ack(d.delivery_id).unwrap();
        }
        world.controller.unsubscribe(sub).unwrap();
    }
    (world, event_ids)
}

/// The production SLO shape, with a latency target lenient enough that
/// this single-core bench world never trips it: the bench measures
/// steady-state recording overhead, so a capture mid-run would both
/// perturb the timing and fail the no-spurious-incident assertion.
/// (The trigger path itself is exercised by tests/blackbox_integration.rs
/// and scripts/obs.sh.)
fn slo_engine() -> SloEngine {
    let mut engine = SloEngine::new();
    engine.register(Slo::latency_p99(
        "detail_request_p99",
        "stage.total",
        10_000_000,
    ));
    engine.register(Slo::error_ratio(
        "publish_errors",
        "controller.publish_denied",
        &["controller.published", "controller.publish_denied"],
        0.001,
    ));
    engine
}

struct Lane {
    world: MicroWorld,
    event_ids: Vec<GlobalEventId>,
    /// Keeps the lane's background thread alive for the whole run.
    sampler: Option<(Sampler, Option<Arc<FlightRecorder>>)>,
    i: u64,
    src: u64,
    total_ns: u128,
    ops: u64,
}

impl Lane {
    fn new(recorded: bool) -> Lane {
        let (world, event_ids) = prepared_world();
        let registry = world.controller.telemetry().clone();
        let engine = Arc::new(Mutex::new(slo_engine()));
        let clock: Arc<dyn Clock> = Arc::new(world.clock.clone());
        let interval = Duration::from_millis(SAMPLE_MS);
        let sampler = if recorded {
            let incident_dir = std::env::temp_dir().join("css-e21-bench");
            let _ = std::fs::remove_dir_all(&incident_dir);
            let recorder = Arc::new(FlightRecorder::new(RING, incident_dir, &registry));
            let observed = recorder.clone();
            let snapshot_registry = registry.clone();
            let sampler = Sampler::spawn_observed(
                move || snapshot_registry.snapshot(),
                clock,
                engine,
                interval,
                move |snapshot, now, table| {
                    // The same per-tick feed css-core wires up (minus
                    // health probes: this world runs no check registry).
                    observed.observe_telemetry(snapshot, now.0);
                    let samples: Vec<SloSample> = table
                        .iter()
                        .map(|s| SloSample {
                            name: s.name.clone(),
                            fast_burn: s.fast_burn,
                            slow_burn: s.slow_burn,
                            severity: match s.alert {
                                AlertLevel::Ok => Severity::Ok,
                                AlertLevel::Warning => Severity::Warning,
                                AlertLevel::Critical => Severity::Critical,
                            },
                        })
                        .collect();
                    for trigger in observed.observe_slos(&samples, now.0) {
                        observed.capture(trigger, snapshot, &[], now.0);
                    }
                },
            );
            (sampler, Some(recorder))
        } else {
            (Sampler::spawn(registry, clock, engine, interval), None)
        };
        Lane {
            world,
            event_ids,
            sampler: Some(sampler),
            i: 0,
            src: 10_000_000,
            total_ns: 0,
            ops: 0,
        }
    }

    fn run_batch(&mut self, timed: bool) {
        let consumers = self.world.consumers.clone();
        let gateway = self.world.gateway.clone();
        let started = Instant::now();
        for _ in 0..BATCH {
            self.i += 1;
            mixed_op(
                &mut self.world.controller,
                &gateway,
                consumers[(self.i % 2) as usize],
                &self.event_ids,
                self.i,
                &mut self.src,
            );
        }
        if timed {
            self.total_ns += started.elapsed().as_nanos();
            self.ops += BATCH;
        }
    }
}

fn bench(_c: &mut Criterion) {
    print_header("E21", "flight-recorder overhead (recorder off vs on)");

    let mut lanes = [
        ("recorder_off", Lane::new(false)),
        ("recorder_on", Lane::new(true)),
    ];

    let budget_ms: u64 = std::env::var("CSS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    for (_, lane) in lanes.iter_mut() {
        for _ in 0..3 {
            lane.run_batch(false);
        }
    }
    let started = Instant::now();
    while started.elapsed().as_millis() < 2 * budget_ms as u128 {
        for (_, lane) in lanes.iter_mut() {
            lane.run_batch(true);
        }
    }
    for (label, lane) in &lanes {
        let ns_per_op = lane.total_ns as f64 / lane.ops as f64;
        let id = format!("e21_blackbox_overhead/{label}");
        eprintln!("{id:<45} time: {ns_per_op:>10.3} ns/iter (n={})", lane.ops);
    }
    let off = lanes[0].1.total_ns as f64 / lanes[0].1.ops as f64;
    let on = lanes[1].1.total_ns as f64 / lanes[1].1.ops as f64;
    let pct = 100.0 * (on - off) / off;
    let stress = 250 / SAMPLE_MS;
    eprintln!(
        "paired batches: recording every {SAMPLE_MS}ms costs {:+.0} ns/op ({pct:+.1}%); \
         at the 250ms production default that is ~{:+.2}% (target < 2%)",
        on - off,
        pct / stress as f64
    );

    // ---- the recorder actually watched the run: frames in the ring,
    // none lost, and a healthy workload captured no incidents.
    let (sampler, recorder) = lanes[1].1.sampler.take().expect("on-lane sampler");
    let ticks = sampler.ticks();
    drop(sampler);
    let recorder = recorder.expect("on-lane recorder");
    assert!(ticks >= 2, "sampler must tick during the run (got {ticks})");
    assert!(
        recorder.occupancy() > 0,
        "recorder saw no frames in {ticks} ticks"
    );
    let snapshot = lanes[1].1.world.controller.telemetry().snapshot();
    assert_eq!(
        snapshot.counter("blackbox.frames_dropped"),
        0,
        "a {RING}-frame ring must not overrun at this cadence"
    );
    assert!(
        recorder.incidents().is_empty(),
        "healthy workload captured an incident: {:?}",
        recorder.incidents()
    );
    eprintln!(
        "recorder: {ticks} snapshots, {} frames ringed, 0 dropped",
        snapshot.counter("blackbox.frames_recorded")
    );

    // Telemetry-format line for scripts/bench.sh → BENCH JSON.
    for (name, h) in &snapshot.histograms {
        if name == "stage.total" {
            eprintln!(
                "stage.total: count={} p50={}ns p99={}ns",
                h.count, h.p50_ns, h.p99_ns
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
