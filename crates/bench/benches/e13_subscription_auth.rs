//! E13 — §5.2: subscription authorization (policy-gated, deny by
//! default) and index inquiry under mixed authorization.

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{micro_world, print_header};
use css_types::{EventTypeId, PersonId};

fn bench(c: &mut Criterion) {
    print_header("E13", "subscription grant/deny and filtered index inquiry");
    let mut group = c.benchmark_group("e13_subscription");
    group.sample_size(30);

    // Grant path: consumer 0 has a policy.
    {
        let world = micro_world(2);
        let granted = world.consumers[0];
        group.bench_function("subscribe_granted", |b| {
            b.iter(|| {
                let h = world
                    .controller
                    .subscribe(granted, &EventTypeId::v1("blood-test"))
                    .unwrap();
                world.controller.unsubscribe(h).unwrap();
            })
        });
    }

    // Deny path: a consumer with a contract but no policy.
    {
        let world = micro_world(1);
        let stranger = css_types::ActorId(900);
        world
            .controller
            .register_actor(css_types::Actor::organization(stranger, "Stranger"))
            .unwrap();
        world
            .controller
            .sign_contract(stranger, css_controller::ParticipantRole::Consumer)
            .unwrap();
        group.bench_function("subscribe_denied", |b| {
            b.iter(|| {
                world
                    .controller
                    .subscribe(stranger, &EventTypeId::v1("blood-test"))
                    .unwrap_err()
            })
        });
    }

    // Index inquiry with mixed authorization: 1000 indexed events, the
    // consumer is authorized for the class, inquiry decrypts + filters.
    {
        let mut world = micro_world(1);
        for src in 1..=1_000u64 {
            world.publish_one(src);
        }
        let consumer = world.consumers[0];
        group.bench_function("inquire_by_person_authorized", |b| {
            let mut p = 0u64;
            b.iter(|| {
                p = p % 900 + 1;
                world
                    .controller
                    .inquire_by_person(consumer, PersonId(p))
                    .unwrap()
            })
        });
        eprintln!(
            "index size {} events; audit log {} records after inquiry storm",
            world.controller.index_len(),
            world.controller.audit_len()
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
