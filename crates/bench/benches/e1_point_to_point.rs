//! E1 — Fig. 1 (§2): integration cost of the pre-CSS point-to-point
//! world vs the CSS event bus, sweeping the number of organizations.
//!
//! Series printed: channels, messages, sensitive bytes and unnecessary
//! disclosures per architecture. Timed: bus fan-out publish vs a
//! simulated point-to-point send loop at equal delivery counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_bench::print_header;
use css_bus::{Broker, SubscriptionConfig};
use css_sim::baseline::FlowParams;
use css_sim::{
    full_push_exposure, over_constrained_exposure, point_to_point_exposure, two_phase_exposure,
};

fn print_series() {
    print_header("E1", "point-to-point vs bus integration cost (Fig. 1)");
    eprintln!(
        "{:>6} {:>22} {:>14} {:>18} {:>16} {:>14}",
        "orgs", "architecture", "channels", "sensitive-bytes", "needless-discl.", "unserved"
    );
    for n in [2usize, 5, 10, 20, 40] {
        let p = FlowParams {
            producers: n,
            consumers: n,
            ..Default::default()
        };
        for (name, report) in [
            ("point-to-point", point_to_point_exposure(&p)),
            ("full-push bus", full_push_exposure(&p)),
            ("over-constrained", over_constrained_exposure(&p)),
            ("CSS two-phase", two_phase_exposure(&p)),
        ] {
            eprintln!(
                "{:>6} {:>22} {:>14} {:>18} {:>16} {:>14}",
                2 * n,
                name,
                report.channels,
                report.sensitive_bytes,
                report.unnecessary_disclosures,
                report.unserved_needs
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e1_delivery");
    for consumers in [1usize, 5, 10, 25] {
        // Bus fan-out: one publish reaches all subscribers.
        let broker: Broker<String> = Broker::new();
        broker.create_topic("t");
        let subs: Vec<_> = (0..consumers)
            .map(|_| {
                broker
                    .subscribe(
                        "t",
                        SubscriptionConfig {
                            capacity: 1 << 20,
                            ..Default::default()
                        },
                    )
                    .unwrap()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("bus_publish_fanout", consumers),
            &consumers,
            |b, _| {
                b.iter(|| {
                    broker.publish("t", "notification".to_string()).unwrap();
                    for s in &subs {
                        while let Some(d) = s.poll().unwrap() {
                            s.ack(d.delivery_id).unwrap();
                        }
                    }
                })
            },
        );
        // Point-to-point: one send loop per consumer channel, full
        // document each time.
        let document = "x".repeat(2_000);
        group.bench_with_input(
            BenchmarkId::new("point_to_point_send", consumers),
            &consumers,
            |b, &n| {
                b.iter(|| {
                    let mut inboxes: Vec<Vec<String>> = vec![Vec::new(); n];
                    for inbox in &mut inboxes {
                        inbox.push(document.clone());
                    }
                    inboxes
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
