//! E2 — Fig. 2 (§4): end-to-end notification flow through the data
//! controller — validate, consent-check, seal + index, route, deliver —
//! sweeping the number of subscribers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_bench::{micro_world, print_header};
use css_types::EventTypeId;

fn bench(c: &mut Criterion) {
    print_header("E2", "publish → index → route → deliver (Fig. 2)");
    let mut group = c.benchmark_group("e2_event_flow");
    group.sample_size(20);
    for subscribers in [0usize, 1, 5, 10, 25] {
        let mut world = micro_world(subscribers.max(1));
        let handles: Vec<_> = world
            .consumers
            .iter()
            .take(subscribers)
            .map(|actor| {
                world
                    .controller
                    .subscribe(*actor, &EventTypeId::v1("blood-test"))
                    .unwrap()
            })
            .collect();
        let mut src = 0u64;
        group.bench_with_input(
            BenchmarkId::new("publish_and_deliver", subscribers),
            &subscribers,
            |b, _| {
                b.iter(|| {
                    src += 1;
                    let id = world.publish_one(src);
                    for h in &handles {
                        while let Some(d) = h.poll().unwrap() {
                            h.ack(d.delivery_id).unwrap();
                        }
                    }
                    id
                })
            },
        );
        let stats = world.controller.bus_stats();
        eprintln!(
            "subscribers={subscribers:>3}  published={:>7}  fanned_out={:>8}",
            stats.published, stats.fanned_out
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
