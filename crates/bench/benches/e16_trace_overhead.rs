//! E16 — causal-tracing overhead and ring-buffer behavior.
//!
//! The same 70/20/10 detail-request/inquiry/publish mix as E15, driven
//! against two identical worlds: one with the tracer disabled (every
//! span a no-op) and one with an enabled tracer whose ring holds only
//! `CAPACITY` spans, so a measured run is guaranteed to lap it many
//! times over. Timing is *paired*: batches alternate off/on so machine
//! noise and any residual state drift hit both configurations equally
//! — two back-to-back single-config runs were observed to disagree by
//! more than the ~µs delta being measured. The per-op delta is the
//! cost of tracing the full enforcement path (~10 spans per permitted
//! detail request); the drop counters prove the ring sheds the oldest
//! spans instead of blocking or growing. Both series are printed in
//! the harness result format so `scripts/bench.sh` folds them (and the
//! trace.* counters) into `BENCH_e16_trace_overhead.json`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{
    blood_test_details, micro_world_traced, person, print_header, MicroWorld, HOSPITAL,
};
use css_controller::{DataController, SharedGateway};
use css_storage::MemBackend;
use css_trace::Tracer;
use css_types::{EventTypeId, GlobalEventId, PersonId, Purpose, SourceEventId, Timestamp};

const EVENTS: u64 = 200;
/// Deliberately small: a smoke run records thousands of spans, so the
/// ring must overwrite and account for the overflow.
const CAPACITY: usize = 1_024;
/// Ops per alternating batch; small enough that dozens of off/on
/// pairs fit even in a smoke run.
const BATCH: u64 = 100;

/// One step of the E15 mix (70% detail requests, 20% inquiries, 10%
/// publishes), kept identical across the traced and untraced worlds.
fn mixed_op(
    controller: &mut DataController<MemBackend>,
    gateway: &SharedGateway<MemBackend>,
    consumer: css_types::ActorId,
    event_ids: &[GlobalEventId],
    i: u64,
    publish_src: &mut u64,
) {
    let ty = EventTypeId::v1("blood-test");
    match i % 10 {
        0..=6 => {
            let id = event_ids[(i % event_ids.len() as u64) as usize];
            controller
                .request_details(consumer, ty, id, Purpose::HealthcareTreatment)
                .unwrap();
        }
        7 | 8 => {
            controller
                .inquire_by_person(consumer, PersonId(i % EVENTS + 1))
                .unwrap();
        }
        _ => {
            *publish_src += 1;
            let src = *publish_src;
            gateway
                .lock()
                .persist(&css_event::DetailMessage {
                    src_event_id: SourceEventId(src),
                    producer: HOSPITAL,
                    details: blood_test_details(src),
                })
                .unwrap();
            // Publish to persons *outside* the inquiry range so the
            // measured inquiries stay fixed-cost: otherwise every
            // publish grows a queried person's event list and the
            // drift swamps the ~µs tracing delta being measured.
            controller
                .publish(
                    HOSPITAL,
                    person(EVENTS + 1 + src % 10_000),
                    "blood test completed".into(),
                    ty,
                    Timestamp(1_000_000),
                    SourceEventId(src),
                    None,
                )
                .unwrap();
        }
    }
}

/// A world with the corpus published, consumers notified, and the live
/// queues dropped so measured publishes never back up.
fn prepared_world(tracer: Tracer) -> (MicroWorld, Vec<GlobalEventId>) {
    let mut world = micro_world_traced(2, tracer);
    let ty = EventTypeId::v1("blood-test");
    let subs: Vec<_> = world
        .consumers
        .iter()
        .map(|c| world.controller.subscribe(*c, &ty).unwrap())
        .collect();
    let mut event_ids = Vec::new();
    for src in 1..=EVENTS {
        event_ids.push(world.publish_one(src));
    }
    for sub in subs {
        while let Some(d) = sub.poll().unwrap() {
            sub.ack(d.delivery_id).unwrap();
        }
        world.controller.unsubscribe(sub).unwrap();
    }
    (world, event_ids)
}

struct Lane {
    world: MicroWorld,
    event_ids: Vec<GlobalEventId>,
    i: u64,
    src: u64,
    total_ns: u128,
    ops: u64,
}

impl Lane {
    fn run_batch(&mut self, timed: bool) {
        let consumers = self.world.consumers.clone();
        let gateway = self.world.gateway.clone();
        let started = Instant::now();
        for _ in 0..BATCH {
            self.i += 1;
            mixed_op(
                &mut self.world.controller,
                &gateway,
                consumers[(self.i % 2) as usize],
                &self.event_ids,
                self.i,
                &mut self.src,
            );
        }
        if timed {
            self.total_ns += started.elapsed().as_nanos();
            self.ops += BATCH;
        }
    }
}

fn bench(_c: &mut Criterion) {
    print_header("E16", "causal-tracing overhead (collector off vs on)");

    let tracer = Tracer::new(CAPACITY);
    let mut lanes = [
        ("collector_off", {
            let (world, event_ids) = prepared_world(Tracer::disabled());
            Lane {
                world,
                event_ids,
                i: 0,
                src: 10_000_000,
                total_ns: 0,
                ops: 0,
            }
        }),
        ("collector_on", {
            let (world, event_ids) = prepared_world(tracer.clone());
            Lane {
                world,
                event_ids,
                i: 0,
                src: 10_000_000,
                total_ns: 0,
                ops: 0,
            }
        }),
    ];

    // Warm both lanes, then alternate timed batches until the budget
    // (per lane) is spent — the same CSS_BENCH_MS knob the criterion
    // shim honors.
    let budget_ms: u64 = std::env::var("CSS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    for (_, lane) in lanes.iter_mut() {
        for _ in 0..3 {
            lane.run_batch(false);
        }
    }
    let started = Instant::now();
    while started.elapsed().as_millis() < 2 * budget_ms as u128 {
        for (_, lane) in lanes.iter_mut() {
            lane.run_batch(true);
        }
    }
    for (label, lane) in &lanes {
        let ns_per_op = lane.total_ns as f64 / lane.ops as f64;
        let id = format!("e16_trace_overhead/{label}");
        eprintln!("{id:<45} time: {ns_per_op:>10.3} ns/iter (n={})", lane.ops);
    }
    let off = lanes[0].1.total_ns as f64 / lanes[0].1.ops as f64;
    let on = lanes[1].1.total_ns as f64 / lanes[1].1.ops as f64;
    eprintln!(
        "paired batches: tracing costs {:+.0} ns/op ({:+.1}%)",
        on - off,
        100.0 * (on - off) / off
    );

    // ---- ring accounting: the enabled lane overflowed CAPACITY.
    let retained = tracer.finished_spans();
    let recorded = tracer.recorded();
    let dropped = tracer.dropped();
    assert_eq!(retained.len(), CAPACITY.min(recorded as usize));
    assert_eq!(recorded, dropped + retained.len() as u64);
    // Drop-oldest proof: the ring holds the last CAPACITY spans
    // *finished*. Ids are minted in start order and a root finishes
    // after its children, so the minimum retained id trails
    // `dropped + 1` by at most one op tree (~12 spans in flight); the
    // newest id is always retained.
    let min_id = retained.iter().map(|s| s.id.value()).min().unwrap();
    let max_id = retained.iter().map(|s| s.id.value()).max().unwrap();
    assert!(
        min_id <= dropped + 1 && min_id + 32 > dropped,
        "oldest spans evicted first (min retained id {min_id}, {dropped} dropped)"
    );
    assert_eq!(max_id, recorded, "newest span retained");
    // Telemetry-format lines for scripts/bench.sh → BENCH JSON.
    eprintln!("trace.spans_recorded: count={recorded} p50=0ns p99=0ns");
    eprintln!("trace.spans_dropped: count={dropped} p50=0ns p99=0ns");
    eprintln!(
        "ring capacity {CAPACITY}: retained span ids {min_id}..={max_id} \
         ({dropped} oldest evicted, drop-oldest verified)"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
