//! E10 — §4 claim: every access request is logged for audit. Cost of
//! the hash-chained append on the hot path, and chain verification as
//! the log grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_audit::{AuditAction, AuditLog, AuditQuery, AuditRecord};
use css_bench::print_header;
use css_storage::MemBackend;
use css_types::{ActorId, GlobalEventId, PersonId, Purpose, Timestamp};

fn record(i: u64) -> AuditRecord {
    AuditRecord::new(Timestamp(i), ActorId(i % 7 + 1), AuditAction::DetailRequest)
        .event(GlobalEventId(i))
        .person(PersonId(i % 100))
        .purpose(Purpose::HealthcareTreatment)
}

fn bench(c: &mut Criterion) {
    print_header("E10", "audit append overhead & verification vs log length");
    let mut group = c.benchmark_group("e10_audit");

    group.bench_function("append_in_memory", |b| {
        let mut log = AuditLog::<MemBackend>::in_memory();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            log.append(record(i)).unwrap()
        })
    });
    group.bench_function("append_persisted", |b| {
        let mut log = AuditLog::open(MemBackend::new()).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            log.append(record(i)).unwrap()
        })
    });

    for &len in &[1_000usize, 10_000, 100_000] {
        let mut log = AuditLog::<MemBackend>::in_memory();
        for i in 0..len as u64 {
            log.append(record(i)).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("verify_chain", len), &log, |b, log| {
            b.iter(|| log.verify().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("query_by_person", len), &log, |b, log| {
            let q = AuditQuery::new().person(PersonId(17));
            b.iter(|| log.query(&q).len())
        });
    }
    group.finish();

    // Print the series once: verification time scales linearly.
    for &len in &[1_000usize, 10_000, 100_000] {
        let mut log = AuditLog::<MemBackend>::in_memory();
        for i in 0..len as u64 {
            log.append(record(i)).unwrap();
        }
        let t0 = std::time::Instant::now();
        log.verify().unwrap();
        eprintln!("verify({len:>7} records) = {:?}", t0.elapsed());
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
