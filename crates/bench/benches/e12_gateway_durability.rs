//! E12 — §4 claim: detail requests "may arrive even months after the
//! publication" and must be served "even when the source systems are
//! un-accessible". Gateway retrieval latency vs store size, and
//! recovery (reopen + replay) time after a restart.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_bench::{blood_test_details, blood_test_schema, HOSPITAL};
use css_event::DetailMessage;
use css_gateway::LocalCooperationGateway;
use css_storage::{FileBackend, MemBackend};
use css_types::SourceEventId;

use css_bench::print_header;

fn filled_gateway(n: u64) -> LocalCooperationGateway<MemBackend> {
    let mut gw = LocalCooperationGateway::open(HOSPITAL, MemBackend::new()).unwrap();
    gw.register_schema(blood_test_schema()).unwrap();
    for src in 1..=n {
        gw.persist(&DetailMessage {
            src_event_id: SourceEventId(src),
            producer: HOSPITAL,
            details: blood_test_details(src),
        })
        .unwrap();
    }
    gw
}

fn bench(c: &mut Criterion) {
    print_header(
        "E12",
        "gateway retrieval vs store size; recovery after restart",
    );
    let allowed: BTreeSet<String> = ["PatientId", "CollectedAt", "Result"]
        .map(String::from)
        .into();

    let mut group = c.benchmark_group("e12_gateway");
    for &n in &[100u64, 1_000, 10_000] {
        let gw = filled_gateway(n);
        group.bench_with_input(BenchmarkId::new("get_response", n), &n, |b, &n| {
            let mut src = 0u64;
            b.iter(|| {
                src = src % n + 1;
                gw.get_response(SourceEventId(src), &allowed, None).unwrap()
            })
        });
    }

    // Disk-backed recovery: reopen + replay of the on-disk log.
    let dir = std::env::temp_dir().join(format!("css-bench-e12-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for &n in &[100u64, 1_000, 5_000] {
        let path = dir.join(format!("gw-{n}.log"));
        let _ = std::fs::remove_file(&path);
        {
            let mut gw =
                LocalCooperationGateway::open(HOSPITAL, FileBackend::open(&path).unwrap()).unwrap();
            gw.register_schema(blood_test_schema()).unwrap();
            for src in 1..=n {
                gw.persist(&DetailMessage {
                    src_event_id: SourceEventId(src),
                    producer: HOSPITAL,
                    details: blood_test_details(src),
                })
                .unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("recover_reopen", n), &n, |b, _| {
            b.iter(|| {
                LocalCooperationGateway::open(HOSPITAL, FileBackend::open(&path).unwrap())
                    .unwrap()
                    .stored_count()
            })
        });
        let t0 = std::time::Instant::now();
        let gw =
            LocalCooperationGateway::open(HOSPITAL, FileBackend::open(&path).unwrap()).unwrap();
        eprintln!(
            "recover {n:>6} records ({} KiB) in {:?}",
            std::fs::metadata(&path).unwrap().len() / 1024,
            t0.elapsed()
        );
        drop(gw);
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
