//! E11 — §5 claim: policy storage and matching must scale with the
//! catalog. PDP evaluation latency sweeping the number of installed
//! policies, including the deny-by-default worst case (no policy
//! matches, all candidates inspected).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_bench::print_header;
use css_policy::{DetailRequest, PolicyDecisionPoint, PrivacyPolicy};
use css_types::{
    Actor, ActorId, ActorRegistry, EventTypeId, GlobalEventId, PolicyId, Purpose, RequestId,
    Timestamp,
};

fn build(policies: usize, same_type: bool) -> (PolicyDecisionPoint, ActorRegistry) {
    let mut actors = ActorRegistry::new();
    let mut pdp = PolicyDecisionPoint::new();
    for i in 0..policies as u64 {
        let actor = ActorId(i + 10);
        actors
            .register(Actor::organization(actor, format!("C{i}")))
            .unwrap();
        let ty = if same_type {
            EventTypeId::v1("hot-type")
        } else {
            EventTypeId::v1(format!("type-{i}"))
        };
        pdp.install(PrivacyPolicy::new(
            PolicyId(i + 1),
            ActorId(1),
            actor,
            ty,
            [Purpose::Administration],
            [format!("Field{i}")],
        ));
    }
    actors
        .register(Actor::organization(ActorId(5), "Requester"))
        .unwrap();
    (pdp, actors)
}

fn bench(c: &mut Criterion) {
    print_header("E11", "PDP latency vs number of installed policies");
    let mut group = c.benchmark_group("e11_policy_scaling");
    for &n in &[10usize, 100, 1_000, 10_000] {
        // Typical case: policies spread over distinct event types — the
        // per-type index keeps candidate lists short.
        let (pdp, actors) = build(n, false);
        let hit = DetailRequest::new(
            RequestId(1),
            ActorId(10), // owner of policy 0
            EventTypeId::v1("type-0"),
            GlobalEventId(1),
            Purpose::Administration,
        );
        group.bench_with_input(BenchmarkId::new("indexed_hit", n), &n, |b, _| {
            b.iter(|| pdp.evaluate(&hit, &actors, Timestamp(0)))
        });

        // Worst case: every policy guards the same event type and none
        // matches the requester (deny-by-default scan).
        let (pdp_hot, actors_hot) = build(n, true);
        let miss = DetailRequest::new(
            RequestId(1),
            ActorId(5), // no policy for this actor
            EventTypeId::v1("hot-type"),
            GlobalEventId(1),
            Purpose::Administration,
        );
        group.bench_with_input(BenchmarkId::new("hot_type_deny_scan", n), &n, |b, _| {
            b.iter(|| pdp_hot.evaluate(&miss, &actors_hot, Timestamp(0)))
        });
    }
    group.finish();

    // Series print: per-request latency at each scale (measured crudely
    // outside criterion for the table).
    for &n in &[10usize, 100, 1_000, 10_000] {
        let (pdp, actors) = build(n, true);
        let miss = DetailRequest::new(
            RequestId(1),
            ActorId(5),
            EventTypeId::v1("hot-type"),
            GlobalEventId(1),
            Purpose::Administration,
        );
        let iters = 2_000;
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            let _ = pdp.evaluate(&miss, &actors, Timestamp(0));
        }
        eprintln!(
            "deny-scan over {n:>6} same-type policies: {:>10.1} ns/request",
            t0.elapsed().as_nanos() as f64 / iters as f64
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
