//! E9 — §4 claim: "the identifying information of the person ... is
//! stored in encrypted form". Cost of sealing on insert and of
//! decryption on inquiry, against a no-crypto strawman.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{person, print_header, HOSPITAL};
use css_controller::EventsIndex;
use css_crypto::SealedBox;
use css_event::NotificationMessage;
use css_types::{EventTypeId, GlobalEventId, PersonId, SourceEventId, Timestamp};

fn notification(i: u64) -> NotificationMessage {
    NotificationMessage {
        global_id: GlobalEventId(i),
        event_type: EventTypeId::v1("blood-test"),
        person: person(i % 500),
        description: "blood test completed at the laboratory".into(),
        occurred_at: Timestamp(i),
        producer: HOSPITAL,
    }
}

fn bench(c: &mut Criterion) {
    print_header("E9", "encrypted events index: insert & inquiry overhead");
    let mut group = c.benchmark_group("e9_encrypted_index");

    // Insert path: seal + index vs plain map insert of the same data.
    group.bench_function("index_insert_sealed", |b| {
        let mut i = 0u64;
        let mut index = EventsIndex::<css_storage::MemBackend>::new(b"bench-key");
        b.iter(|| {
            i += 1;
            index
                .insert(&notification(i), SourceEventId(i), HashSet::new())
                .unwrap()
        })
    });
    group.bench_function("plain_map_insert_strawman", |b| {
        let mut i = 0u64;
        let mut map = std::collections::HashMap::new();
        b.iter(|| {
            i += 1;
            map.insert(i, notification(i))
        })
    });

    // Inquiry path: per-person lookup + decryption.
    let mut index = EventsIndex::<css_storage::MemBackend>::new(b"bench-key");
    for i in 1..=20_000u64 {
        index
            .insert(&notification(i), SourceEventId(i), HashSet::new())
            .unwrap();
    }
    group.bench_function("person_lookup_tagged", |b| {
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 500;
            index.events_of_person(PersonId(p))
        })
    });
    group.bench_function("decrypt_one_notification", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i % 20_000 + 1;
            index.decrypt_notification(GlobalEventId(i)).unwrap()
        })
    });
    // Time-window inquiry: a 1% window over the 20k-event index. The
    // BTreeMap time index makes this a range scan over ~200 entries
    // instead of a filter over all 20 000.
    group.bench_function("time_window_1pct_of_20k", |b| {
        let mut start = 0u64;
        b.iter(|| {
            start = (start + 97) % 19_800;
            index.events_between(Timestamp(start), Timestamp(start + 199))
        })
    });

    // The raw crypto primitives for reference.
    let sealer = SealedBox::new(b"bench-key");
    let identity = person(1).to_bytes();
    group.bench_function("seal_identity_only", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sealer.seal(i, &identity)
        })
    });
    let sealed = sealer.seal(1, &identity);
    group.bench_function("open_identity_only", |b| {
        b.iter(|| sealer.open(&sealed).unwrap())
    });
    group.finish();

    eprintln!(
        "sealed identity blob: {} bytes (identity {} bytes + {} overhead)",
        sealed.len(),
        identity.len(),
        SealedBox::OVERHEAD
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
