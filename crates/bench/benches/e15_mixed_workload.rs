//! E15 — multi-threaded mixed workload against one controller.
//!
//! Several consumer threads interleave the three hot operations of the
//! integration platform — detail requests (Algorithm 1), person
//! inquiries over the encrypted index, and publishes — against a single
//! shared `DataController`. The controller is internally synchronized
//! (sharded index, segmented decision cache, read-write registries), so
//! the threads drive a plain `Arc<DataController>` with no outer lock:
//! what is measured is the platform's real concurrency, not a
//! test-harness mutex. The single-threaded mix is registered as a
//! Criterion timing; the threaded runs are timed manually (the harness
//! is single-threaded) and printed in the same machine-readable format,
//! plus aggregate ops/s and the PDP cache hit rate at the end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{blood_test_details, micro_world_sharded, print_header, HOSPITAL};
use css_controller::{DataController, SharedGateway};
use css_storage::MemBackend;
use css_types::{EventTypeId, GlobalEventId, PersonId, Purpose, SourceEventId, Timestamp};

const EVENTS: u64 = 500;
const OPS_PER_THREAD: u64 = 2_000;
/// Shards for the threaded runs: matches the widest thread count.
const SHARDS: usize = 8;

/// One step of the 70/20/10 request/inquiry/publish mix.
fn mixed_op(
    controller: &DataController<MemBackend>,
    gateway: &SharedGateway<MemBackend>,
    consumer: css_types::ActorId,
    event_ids: &[GlobalEventId],
    i: u64,
    publish_src: &mut u64,
) {
    let ty = EventTypeId::v1("blood-test");
    match i % 10 {
        0..=6 => {
            let id = event_ids[(i % event_ids.len() as u64) as usize];
            controller
                .request_details(consumer, ty, id, Purpose::HealthcareTreatment)
                .unwrap();
        }
        7 | 8 => {
            controller
                .inquire_by_person(consumer, PersonId(i % EVENTS + 1))
                .unwrap();
        }
        _ => {
            *publish_src += 1;
            let src = *publish_src;
            gateway
                .lock()
                .persist(&css_event::DetailMessage {
                    src_event_id: SourceEventId(src),
                    producer: HOSPITAL,
                    details: blood_test_details(src),
                })
                .unwrap();
            controller
                .publish(
                    HOSPITAL,
                    css_bench::person(src % EVENTS + 1),
                    "blood test completed".into(),
                    ty,
                    Timestamp(1_000_000),
                    SourceEventId(src),
                    None,
                )
                .unwrap();
        }
    }
}

fn bench(c: &mut Criterion) {
    print_header("E15", "multi-threaded mixed workload (1 controller)");

    // World: four consumer organizations, each subscribed and granted a
    // policy; a corpus of published events to request against; the data
    // plane split into SHARDS citizen-hashed shards.
    let mut world = micro_world_sharded(4, SHARDS);
    let ty = EventTypeId::v1("blood-test");
    let subs: Vec<_> = world
        .consumers
        .iter()
        .map(|c| world.controller.subscribe(*c, &ty).unwrap())
        .collect();
    let mut event_ids = Vec::new();
    for src in 1..=EVENTS {
        event_ids.push(world.publish_one(src));
    }
    for sub in subs {
        while let Some(d) = sub.poll().unwrap() {
            sub.ack(d.delivery_id).unwrap();
        }
        // Drop the live queues: nothing drains during the measured run,
        // and a full queue would reject the workload's publishes. The
        // notified-set of the corpus is already recorded.
        world.controller.unsubscribe(sub).unwrap();
    }

    // Single-threaded mix, registered with the harness.
    let consumers = world.consumers.clone();
    let gateway = world.gateway.clone();
    let mut group = c.benchmark_group("e15_mixed_workload");
    {
        let controller = &world.controller;
        let mut i = 0u64;
        let mut src = 10_000_000u64;
        group.bench_function("mixed_op_single_thread", |b| {
            b.iter(|| {
                i += 1;
                mixed_op(
                    controller,
                    &gateway,
                    consumers[(i % 4) as usize],
                    &event_ids,
                    i,
                    &mut src,
                );
            })
        });
    }
    group.finish();

    // Threaded runs: N threads drive the shared controller directly —
    // shard contention (not a global lock) is what is measured.
    let controller = Arc::new(world.controller);
    let event_ids = Arc::new(event_ids);
    for threads in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let controller = Arc::clone(&controller);
                let gateway = gateway.clone();
                let event_ids = Arc::clone(&event_ids);
                let consumer = consumers[t % consumers.len()];
                // Disjoint src blocks so publishes never collide at the
                // gateway, across threads and across rounds.
                static NEXT_BLOCK: AtomicU64 = AtomicU64::new(20_000_000);
                let base = NEXT_BLOCK.fetch_add(1_000_000, Ordering::Relaxed);
                std::thread::spawn(move || {
                    let mut src = base;
                    for i in 0..OPS_PER_THREAD {
                        mixed_op(&controller, &gateway, consumer, &event_ids, i, &mut src);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = started.elapsed();
        let total_ops = OPS_PER_THREAD * threads as u64;
        let ns_per_op = elapsed.as_nanos() as f64 / total_ops as f64;
        let ops_per_s = total_ops as f64 / elapsed.as_secs_f64();
        let id = format!("threads_{threads}");
        eprintln!("e15_mixed_workload/{id:<40} time: {ns_per_op:>10.3} ns/iter (n={total_ops})");
        eprintln!("  {total_ops} ops across {threads} thread(s): {ops_per_s:.0} ops/s");
    }

    let snapshot = controller.telemetry().snapshot();
    let hits = snapshot.counter("pdp.cache_hit");
    let misses = snapshot.counter("pdp.cache_miss");
    eprintln!(
        "PDP cache: {hits} hits / {misses} misses ({:.1}% hit rate)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    eprintln!(
        "shard balance (index events per shard): {:?}",
        controller.index_shard_lens()
    );
    for (name, h) in &snapshot.histograms {
        if name == "stage.pdp_evaluate" {
            eprintln!(
                "stage.pdp_evaluate: count={} p50={}ns p99={}ns",
                h.count, h.p50_ns, h.p99_ns
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
