//! E22 — metrics-chronicle overhead on the E15 mixed workload.
//!
//! The css-chronicle store (DESIGN.md §16) rides the ops sampler: on
//! every tick it diffs the telemetry snapshot into per-tick points,
//! folds them into the minute/hour rings, and feeds the anomaly
//! detector one value. Like the recorder (E21), the only cost the
//! *workload* can feel is lock contention on the registry plus the
//! chronicle's own store mutex — the fold runs on the sampler thread.
//! This bench drives the E16/E15 mix (70% detail requests, 20%
//! inquiries, 10% publishes) against two identical worlds — both
//! sampled every `SAMPLE_MS`, one bare and one with a chronicle fed by
//! the sampler's observer hook — using the same paired
//! alternating-batch timing as E16/E17/E21.
//! Target: < 2% per-op delta at this stress cadence.
//! Both series are printed in the harness result format so
//! `scripts/bench.sh` folds them into `BENCH_e22_chronicle_overhead.json`.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{blood_test_details, micro_world, person, print_header, MicroWorld, HOSPITAL};
use css_chronicle::{AnomalyConfig, AnomalyDetector, Chronicle, Retention};
use css_controller::{DataController, SharedGateway};
use css_health::{Sampler, Slo, SloEngine};
use css_storage::MemBackend;
use css_types::{Clock, EventTypeId, GlobalEventId, PersonId, Purpose, SourceEventId, Timestamp};

const EVENTS: u64 = 200;
/// Sampling period for both lanes: 50× the production default, so the
/// chronicle's per-tick fold lands dozens of times in a smoke window.
const SAMPLE_MS: u64 = 5;
/// Ops per alternating batch (see E16: pairing cancels machine noise).
const BATCH: u64 = 100;

/// One step of the E15 mix, identical across both lanes.
fn mixed_op(
    controller: &mut DataController<MemBackend>,
    gateway: &SharedGateway<MemBackend>,
    consumer: css_types::ActorId,
    event_ids: &[GlobalEventId],
    i: u64,
    publish_src: &mut u64,
) {
    let ty = EventTypeId::v1("blood-test");
    match i % 10 {
        0..=6 => {
            let id = event_ids[(i % event_ids.len() as u64) as usize];
            controller
                .request_details(consumer, ty, id, Purpose::HealthcareTreatment)
                .unwrap();
        }
        7 | 8 => {
            controller
                .inquire_by_person(consumer, PersonId(i % EVENTS + 1))
                .unwrap();
        }
        _ => {
            *publish_src += 1;
            let src = *publish_src;
            gateway
                .lock()
                .persist(&css_event::DetailMessage {
                    src_event_id: SourceEventId(src),
                    producer: HOSPITAL,
                    details: blood_test_details(src),
                })
                .unwrap();
            controller
                .publish(
                    HOSPITAL,
                    person(EVENTS + 1 + src % 10_000),
                    "blood test completed".into(),
                    ty,
                    Timestamp(1_000_000),
                    SourceEventId(src),
                    None,
                )
                .unwrap();
        }
    }
}

/// Corpus published, consumers drained, live queues dropped.
fn prepared_world() -> (MicroWorld, Vec<GlobalEventId>) {
    let mut world = micro_world(2);
    let ty = EventTypeId::v1("blood-test");
    let subs: Vec<_> = world
        .consumers
        .iter()
        .map(|c| world.controller.subscribe(*c, &ty).unwrap())
        .collect();
    let mut event_ids = Vec::new();
    for src in 1..=EVENTS {
        event_ids.push(world.publish_one(src));
    }
    for sub in subs {
        while let Some(d) = sub.poll().unwrap() {
            sub.ack(d.delivery_id).unwrap();
        }
        world.controller.unsubscribe(sub).unwrap();
    }
    (world, event_ids)
}

/// The production SLO shape (lenient, as in E21: this bench measures
/// steady-state append overhead, not the trigger path).
fn slo_engine() -> SloEngine {
    let mut engine = SloEngine::new();
    engine.register(Slo::latency_p99(
        "detail_request_p99",
        "stage.total",
        10_000_000,
    ));
    engine.register(Slo::error_ratio(
        "publish_errors",
        "controller.publish_denied",
        &["controller.published", "controller.publish_denied"],
        0.001,
    ));
    engine
}

struct Lane {
    world: MicroWorld,
    event_ids: Vec<GlobalEventId>,
    /// Keeps the lane's background thread alive for the whole run.
    sampler: Option<(Sampler, Option<Arc<Chronicle>>)>,
    i: u64,
    src: u64,
    total_ns: u128,
    ops: u64,
}

impl Lane {
    fn new(chronicled: bool) -> Lane {
        let (world, event_ids) = prepared_world();
        let registry = world.controller.telemetry().clone();
        let engine = Arc::new(Mutex::new(slo_engine()));
        let clock: Arc<dyn Clock> = Arc::new(world.clock.clone());
        let interval = Duration::from_millis(SAMPLE_MS);
        let sampler = if chronicled {
            let chronicle = Arc::new(Chronicle::new(Retention::default(), &registry));
            let detector = Arc::new(AnomalyDetector::new(AnomalyConfig::new("stage.total")));
            let observed = chronicle.clone();
            let snapshot_registry = registry.clone();
            let sampler = Sampler::spawn_observed(
                move || snapshot_registry.snapshot(),
                clock,
                engine,
                interval,
                move |snapshot, now, _table| {
                    // The same per-tick feed css-core wires up: append
                    // the snapshot, then judge the fresh point.
                    observed.append(snapshot, now);
                    if let Some(point) = observed.latest(detector.metric()) {
                        if point.to_ms == now.0 {
                            detector.observe(point.last);
                        }
                    }
                },
            );
            (sampler, Some(chronicle))
        } else {
            (Sampler::spawn(registry, clock, engine, interval), None)
        };
        Lane {
            world,
            event_ids,
            sampler: Some(sampler),
            i: 0,
            src: 10_000_000,
            total_ns: 0,
            ops: 0,
        }
    }

    fn run_batch(&mut self, timed: bool) {
        let consumers = self.world.consumers.clone();
        let gateway = self.world.gateway.clone();
        let started = Instant::now();
        for _ in 0..BATCH {
            self.i += 1;
            mixed_op(
                &mut self.world.controller,
                &gateway,
                consumers[(self.i % 2) as usize],
                &self.event_ids,
                self.i,
                &mut self.src,
            );
        }
        if timed {
            self.total_ns += started.elapsed().as_nanos();
            self.ops += BATCH;
        }
    }
}

fn bench(_c: &mut Criterion) {
    print_header("E22", "metrics-chronicle overhead (chronicle off vs on)");

    let mut lanes = [
        ("chronicle_off", Lane::new(false)),
        ("chronicle_on", Lane::new(true)),
    ];

    let budget_ms: u64 = std::env::var("CSS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    for (_, lane) in lanes.iter_mut() {
        for _ in 0..3 {
            lane.run_batch(false);
        }
    }
    let started = Instant::now();
    while started.elapsed().as_millis() < 2 * budget_ms as u128 {
        for (_, lane) in lanes.iter_mut() {
            lane.run_batch(true);
        }
    }
    for (label, lane) in &lanes {
        let ns_per_op = lane.total_ns as f64 / lane.ops as f64;
        let id = format!("e22_chronicle_overhead/{label}");
        eprintln!("{id:<45} time: {ns_per_op:>10.3} ns/iter (n={})", lane.ops);
    }
    let off = lanes[0].1.total_ns as f64 / lanes[0].1.ops as f64;
    let on = lanes[1].1.total_ns as f64 / lanes[1].1.ops as f64;
    let pct = 100.0 * (on - off) / off;
    let stress = 250 / SAMPLE_MS;
    eprintln!(
        "paired batches: chronicling every {SAMPLE_MS}ms costs {:+.0} ns/op ({pct:+.1}%); \
         at the 250ms production default that is ~{:+.2}% (target < 2%)",
        on - off,
        pct / stress as f64
    );

    // ---- the chronicle actually watched the run: points retained,
    // every tick appended, and a monotonic clock refused nothing.
    let (sampler, chronicle) = lanes[1].1.sampler.take().expect("on-lane sampler");
    let ticks = sampler.ticks();
    drop(sampler);
    let chronicle = chronicle.expect("on-lane chronicle");
    assert!(ticks >= 2, "sampler must tick during the run (got {ticks})");
    assert!(
        chronicle.latest("stage.total").is_some(),
        "chronicle retained no stage.total history in {ticks} ticks"
    );
    let snapshot = lanes[1].1.world.controller.telemetry().snapshot();
    assert!(
        snapshot.counter("chronicle.appends") >= ticks,
        "appends lag the sampler: {} < {ticks}",
        snapshot.counter("chronicle.appends")
    );
    assert_eq!(
        snapshot.counter("chronicle.appends_skipped"),
        0,
        "a monotonic clock must never skip an append"
    );
    eprintln!(
        "chronicle: {ticks} snapshots, {} points retained, 0 skipped",
        snapshot.gauge("chronicle.points")
    );

    // Telemetry-format line for scripts/bench.sh → BENCH JSON.
    for (name, h) in &snapshot.histograms {
        if name == "stage.total" {
            eprintln!(
                "stage.total: count={} p50={}ns p99={}ns",
                h.count, h.p50_ns, h.p99_ns
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
