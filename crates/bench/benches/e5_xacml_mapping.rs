//! E5 — Fig. 5 (§5.2): the enforcement architecture is independent of
//! the policy notation. Cost of evaluating natively vs going through the
//! XACML document mapping on every request.

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{doctor_policy, print_header};
use css_policy::xacml::{from_xacml, to_xacml};
use css_policy::{DetailRequest, PolicyDecisionPoint};
use css_types::{
    Actor, ActorId, ActorRegistry, EventTypeId, GlobalEventId, Purpose, RequestId, Timestamp,
};

fn bench(c: &mut Criterion) {
    print_header(
        "E5",
        "native evaluation vs per-request XACML mapping (Fig. 5)",
    );
    let mut actors = ActorRegistry::new();
    actors
        .register(Actor::organization(ActorId(1), "C"))
        .unwrap();
    let policy = doctor_policy(1, ActorId(1));
    let request = DetailRequest::new(
        RequestId(1),
        ActorId(1),
        EventTypeId::v1("blood-test"),
        GlobalEventId(1),
        Purpose::HealthcareTreatment,
    );

    let mut native = PolicyDecisionPoint::new();
    native.install(policy.clone());

    let mut group = c.benchmark_group("e5_xacml_mapping");
    group.bench_function("native_evaluate", |b| {
        b.iter(|| native.evaluate(&request, &actors, Timestamp(0)))
    });
    group.bench_function("xacml_mapped_evaluate", |b| {
        // Worst case: the policy is rehydrated from its XACML document
        // for every request (no caching).
        let doc_text = css_xml::to_string(&to_xacml(&policy));
        b.iter(|| {
            let parsed = from_xacml(&css_xml::parse(&doc_text).unwrap()).unwrap();
            let mut pdp = PolicyDecisionPoint::new();
            pdp.install(parsed);
            pdp.evaluate(&request, &actors, Timestamp(0))
        })
    });
    group.bench_function("xacml_serialize_only", |b| {
        b.iter(|| css_xml::to_string(&to_xacml(&policy)))
    });
    group.bench_function("xacml_parse_only", |b| {
        let doc_text = css_xml::to_string(&to_xacml(&policy));
        b.iter(|| from_xacml(&css_xml::parse(&doc_text).unwrap()).unwrap())
    });
    // Fig. 5 also maps the consumer's request to an XACML Request
    // context; measure that mapping too.
    group.bench_function("request_context_roundtrip", |b| {
        b.iter(|| {
            let doc = css_policy::xacml::to_xacml_request(&request);
            css_policy::xacml::from_xacml_request(&doc).unwrap()
        })
    });
    group.finish();

    let doc = css_xml::to_string_pretty(&to_xacml(&policy));
    eprintln!(
        "XACML document size for the Fig. 8-style policy: {} bytes",
        doc.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
