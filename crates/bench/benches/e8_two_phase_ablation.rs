//! E8 — §1/§4 claim: the two-phase (summary-then-request) protocol
//! minimizes sensitive disclosure. Ablation against full-push, sweeping
//! the detail-request rate; measured platform numbers next to the
//! analytic model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_bench::print_header;
use css_sim::baseline::FlowParams;
use css_sim::{
    full_push_exposure, run_workload, two_phase_exposure, Scenario, ScenarioConfig, WorkloadConfig,
};

fn print_series() {
    print_header(
        "E8",
        "two-phase vs full-push: sensitive exposure vs request rate",
    );
    eprintln!(
        "{:>8} {:>16} {:>16} {:>18} {:>18}",
        "p(req)", "2p sens-bytes", "push sens-bytes", "2p msgs", "push msgs"
    );
    for prob in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let params = FlowParams {
            detail_request_prob: prob,
            ..Default::default()
        };
        let css = two_phase_exposure(&params);
        let push = full_push_exposure(&params);
        eprintln!(
            "{prob:>8.2} {:>16} {:>16} {:>18} {:>18}",
            css.sensitive_bytes, push.sensitive_bytes, css.messages, push.messages
        );
    }

    eprintln!("\nmeasured on the platform (100 events, scenario policies):");
    eprintln!(
        "{:>8} {:>12} {:>14} {:>18} {:>20}",
        "p(req)", "permits", "denies", "released-bytes", "sensitive-released"
    );
    for prob in [0.0, 0.25, 0.5, 1.0] {
        let scenario = Scenario::build(ScenarioConfig {
            persons: 15,
            family_doctors: 2,
            seed: 11,
        })
        .unwrap();
        let report = run_workload(
            &scenario,
            WorkloadConfig {
                events: 100,
                detail_request_prob: prob,
                wrong_purpose_prob: 0.0,
                seed: 23,
            },
        );
        eprintln!(
            "{prob:>8.2} {:>12} {:>14} {:>18} {:>20}",
            report.detail_permits,
            report.detail_denies,
            report.released_bytes,
            report.sensitive_released_bytes
        );
    }
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("e8_workload");
    group.sample_size(10);
    for prob in [0.0f64, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("workload_100_events", format!("{prob:.1}")),
            &prob,
            |b, &prob| {
                b.iter_batched(
                    || {
                        Scenario::build(ScenarioConfig {
                            persons: 10,
                            family_doctors: 1,
                            seed: 3,
                        })
                        .unwrap()
                    },
                    |scenario| {
                        run_workload(
                            &scenario,
                            WorkloadConfig {
                                events: 100,
                                detail_request_prob: prob,
                                wrong_purpose_prob: 0.0,
                                seed: 5,
                            },
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
