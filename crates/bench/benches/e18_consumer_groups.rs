//! E18 — competing-consumer throughput vs delivery-group size.
//!
//! One topic, one delivery group, N worker threads splitting the stream
//! (the pluggable broker's consumer groups). Each delivery carries a
//! fixed simulated processing cost, so adding members to the group
//! should raise aggregate throughput until polling contention on the
//! broker lock catches up. The solo roundtrip is registered as a
//! Criterion timing; the pool runs are timed manually (the harness is
//! single-threaded) and printed in the same machine-readable format.
//! The run ends with a poison-message demonstration: a message every
//! member rejects dead-letters within the bounded attempt budget with
//! the original publish trace id intact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::print_header;
use css_bus::{spawn_worker_pool, Bus, PublishOptions, SubscriptionConfig};
use css_trace::Tracer;
use css_types::Timestamp;

const MESSAGES: u64 = 1_000;

/// Fixed per-message handling cost: the downstream EHR / case-file API
/// call a real worker *waits on* per notification. It is a wait, not a
/// spin, because that is what delivery groups parallelize — N workers
/// overlap N in-flight downstream calls even on a single core. Without
/// it every group size would bottleneck on the broker lock and the
/// scaling the experiment measures would be invisible.
fn simulated_downstream_call() {
    std::thread::sleep(Duration::from_micros(200));
}

/// Publish `MESSAGES` jobs into a fresh group of `workers` members and
/// time wall-clock to full drain; returns ns/message.
fn drain_with_pool(workers: usize) -> f64 {
    let bus: Bus<u64> = Bus::in_memory();
    bus.create_topic("jobs");
    let processed = Arc::new(AtomicU64::new(0));
    let sink = processed.clone();
    // The whole stream is published up-front, so the queue must hold it
    // (the default 1024-cap Reject policy would bounce the publisher).
    let cfg = SubscriptionConfig {
        capacity: MESSAGES as usize,
        ..Default::default()
    };
    let pool = spawn_worker_pool(
        &bus,
        "jobs",
        "workers",
        cfg,
        workers,
        move |_worker, _m: u64| {
            simulated_downstream_call();
            sink.fetch_add(1, Ordering::SeqCst);
            Ok(())
        },
    )
    .expect("subscribe pool");

    let started = Instant::now();
    for i in 0..MESSAGES {
        bus.publish("jobs", i, None).expect("publish");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while processed.load(Ordering::SeqCst) < MESSAGES && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = started.elapsed();

    let total: u64 = pool.into_iter().map(|d| d.stop()).sum();
    assert_eq!(total, MESSAGES, "pool must drain the stream exactly once");
    assert!(bus.dead_letters().is_empty());
    elapsed.as_nanos() as f64 / MESSAGES as f64
}

fn bench(c: &mut Criterion) {
    print_header(
        "E18",
        "competing-consumer groups (throughput vs group size)",
    );

    // Solo publish → poll → ack roundtrip, registered with the harness:
    // the per-message floor all group sizes share.
    let bus: Bus<u64> = Bus::in_memory();
    bus.create_topic("jobs");
    let solo = bus
        .subscribe_group("jobs", "solo", SubscriptionConfig::default())
        .expect("subscribe");
    let mut group = c.benchmark_group("e18_consumer_groups");
    let mut i = 0u64;
    group.bench_function("publish_ack_roundtrip", |b| {
        b.iter(|| {
            i += 1;
            bus.publish("jobs", i, None).expect("publish");
            let d = solo.poll().expect("poll").expect("delivered");
            simulated_downstream_call();
            solo.ack(criterion::black_box(d).delivery_id).expect("ack");
        })
    });
    group.finish();

    // Pool runs: same stream, growing group. ops/s should rise with the
    // member count and size 1 must not regress against the roundtrip.
    let mut baseline_ops = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let ns_per_msg = drain_with_pool(workers);
        let ops_per_s = 1e9 / ns_per_msg;
        if workers == 1 {
            baseline_ops = ops_per_s;
        }
        let id = format!("group_size_{workers}");
        eprintln!("e18_consumer_groups/{id:<40} time: {ns_per_msg:>10.3} ns/iter (n={MESSAGES})");
        eprintln!(
            "  {MESSAGES} messages across {workers} worker(s): {ops_per_s:.0} ops/s \
             ({:.2}x of group_size_1)",
            ops_per_s / baseline_ops.max(1.0)
        );
    }

    // Poison message: every member rejects it; it must dead-letter after
    // exactly max_attempts tries with the publish trace id preserved.
    let bus: Bus<u64> = Bus::in_memory();
    bus.create_topic("jobs");
    let cfg = SubscriptionConfig {
        max_attempts: 3,
        ..Default::default()
    };
    const POISON: u64 = u64::MAX;
    let pool = spawn_worker_pool(&bus, "jobs", "workers", cfg, 2, |_worker, m: u64| {
        if m == POISON {
            Err(())
        } else {
            Ok(())
        }
    })
    .expect("subscribe pool");
    let tracer = Tracer::new(64);
    let root = tracer.root("publish", Timestamp(1));
    let ctx = root.context();
    bus.publish_opts("jobs", POISON, PublishOptions::new().traced(&ctx))
        .expect("publish poison");
    root.finish();
    for m in 0..50u64 {
        bus.publish("jobs", m, None).expect("publish");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while bus.dead_letters().is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    pool.into_iter().for_each(|d| {
        d.stop();
    });
    let dlq = bus.dead_letters();
    assert_eq!(dlq.len(), 1, "poison message must dead-letter");
    assert_eq!(dlq[0].attempts, 3);
    assert_eq!(dlq[0].trace, ctx.trace_id());
    eprintln!(
        "poison dead-lettered: attempts={} group={:?} trace_preserved={}",
        dlq[0].attempts,
        dlq[0].group.as_deref().unwrap_or("-"),
        dlq[0].trace == ctx.trace_id()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
