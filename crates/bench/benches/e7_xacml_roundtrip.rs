//! E7 — Fig. 8 (§6): XACML serialization fidelity and cost as the
//! policy grows (#fields, #purposes). Prints document sizes; times the
//! serialize / parse / full round-trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_bench::print_header;
use css_policy::xacml::{from_xacml, to_xacml};
use css_policy::PrivacyPolicy;
use css_types::{ActorId, EventTypeId, PolicyId, Purpose};

fn policy(fields: usize, purposes: usize) -> PrivacyPolicy {
    PrivacyPolicy::new(
        PolicyId(1),
        ActorId(9),
        ActorId(1),
        EventTypeId::v1("home-care-service-event"),
        (0..purposes).map(|i| Purpose::Custom(format!("purpose-{i}"))),
        (0..fields).map(|i| format!("Field{i}")),
    )
    .labeled("fig8", "scaling test")
}

fn bench(c: &mut Criterion) {
    print_header(
        "E7",
        "XACML round-trip fidelity & cost vs policy size (Fig. 8)",
    );
    eprintln!("{:>8} {:>9} {:>12}", "fields", "purposes", "doc bytes");
    for &fields in &[3usize, 10, 25, 50] {
        for &purposes in &[1usize, 4] {
            let p = policy(fields, purposes);
            let text = css_xml::to_string_pretty(&to_xacml(&p));
            // fidelity gate: every benched size must round-trip exactly
            assert_eq!(from_xacml(&css_xml::parse(&text).unwrap()).unwrap(), p);
            eprintln!("{fields:>8} {purposes:>9} {:>12}", text.len());
        }
    }

    let mut group = c.benchmark_group("e7_xacml_roundtrip");
    for &fields in &[3usize, 10, 25, 50] {
        let p = policy(fields, 2);
        let text = css_xml::to_string(&to_xacml(&p));
        group.bench_with_input(BenchmarkId::new("serialize", fields), &p, |b, p| {
            b.iter(|| css_xml::to_string(&to_xacml(p)))
        });
        group.bench_with_input(BenchmarkId::new("parse", fields), &text, |b, text| {
            b.iter(|| from_xacml(&css_xml::parse(text).unwrap()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", fields), &p, |b, p| {
            b.iter(|| {
                let text = css_xml::to_string(&to_xacml(p));
                from_xacml(&css_xml::parse(&text).unwrap()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
