//! E4 — Fig. 4 (§5.2): latency breakdown of Algorithm 1 — PIP id
//! mapping, PDP match+evaluate, gateway retrieval + obligation filter,
//! and the full PEP path including audit.

use std::collections::{BTreeSet, HashSet};

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{blood_test_details, micro_world, person, print_header, HOSPITAL};
use css_controller::{EventsIndex, GatewayClient};
use css_event::NotificationMessage;
use css_policy::{DetailRequest, PolicyDecisionPoint};
use css_types::{
    Actor, ActorId, ActorRegistry, EventTypeId, GlobalEventId, Purpose, RequestId, SourceEventId,
    Timestamp,
};

fn bench(c: &mut Criterion) {
    print_header("E4", "Algorithm 1 stage latencies (Fig. 4)");
    let mut group = c.benchmark_group("e4_detail_request");

    // --- stage: PIP (events index resolve) ---------------------------
    let mut index = EventsIndex::<css_storage::MemBackend>::new(b"bench-key");
    for i in 1..=10_000u64 {
        let n = NotificationMessage {
            global_id: GlobalEventId(i),
            event_type: EventTypeId::v1("blood-test"),
            person: person(i % 100),
            description: "e".into(),
            occurred_at: Timestamp(i),
            producer: HOSPITAL,
        };
        index.insert(&n, SourceEventId(i), HashSet::new()).unwrap();
    }
    group.bench_function("stage1_pip_resolve", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i % 10_000 + 1;
            index.resolve_source(GlobalEventId(i)).unwrap()
        })
    });

    // --- stage: PDP match + evaluate -----------------------------------
    let mut actors = ActorRegistry::new();
    actors
        .register(Actor::organization(ActorId(1), "C"))
        .unwrap();
    let mut pdp = PolicyDecisionPoint::new();
    pdp.install(css_bench::doctor_policy(1, ActorId(1)));
    let request = DetailRequest::new(
        RequestId(1),
        ActorId(1),
        EventTypeId::v1("blood-test"),
        GlobalEventId(1),
        Purpose::HealthcareTreatment,
    );
    group.bench_function("stage2_3_pdp_evaluate", |b| {
        b.iter(|| pdp.evaluate(&request, &actors, Timestamp(0)))
    });

    // --- stage: gateway getResponse (Algorithm 2) -----------------------
    let mut world = micro_world(1);
    for src in 1..=1_000u64 {
        world
            .gateway
            .lock()
            .persist(&css_event::DetailMessage {
                src_event_id: SourceEventId(src),
                producer: HOSPITAL,
                details: blood_test_details(src),
            })
            .unwrap();
    }
    let allowed: BTreeSet<String> = ["PatientId", "CollectedAt", "Result"]
        .map(String::from)
        .into();
    group.bench_function("stage4_gateway_get_response", |b| {
        let mut src = 0u64;
        b.iter(|| {
            src = src % 1_000 + 1;
            world
                .gateway
                .get_response(SourceEventId(src), &allowed, None)
                .unwrap()
        })
    });

    // --- full Algorithm 1 through the controller (incl. audit) ---------
    let consumer = world.consumers[0];
    let sub = world
        .controller
        .subscribe(consumer, &EventTypeId::v1("blood-test"))
        .unwrap();
    let mut event_ids = Vec::new();
    for src in 1_001..=2_000u64 {
        event_ids.push(world.publish_one(src));
    }
    while let Some(d) = sub.poll().unwrap() {
        sub.ack(d.delivery_id).unwrap();
    }
    group.bench_function("full_algorithm1_permit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let id = event_ids[i % event_ids.len()];
            i += 1;
            world
                .controller
                .request_details(
                    consumer,
                    EventTypeId::v1("blood-test"),
                    id,
                    Purpose::HealthcareTreatment,
                )
                .unwrap()
        })
    });
    group.bench_function("full_algorithm1_deny", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let id = event_ids[i % event_ids.len()];
            i += 1;
            world
                .controller
                .request_details(
                    consumer,
                    EventTypeId::v1("blood-test"),
                    id,
                    Purpose::StatisticalAnalysis,
                )
                .unwrap_err()
        })
    });
    group.finish();

    // The controller's own registry timed every Algorithm-1 stage of
    // the full-path runs above; report that breakdown alongside the
    // per-stage micro-benchmarks.
    let snapshot = world.controller.telemetry().snapshot();
    println!("\nAlgorithm 1 stage breakdown (controller telemetry):");
    for (name, h) in &snapshot.histograms {
        if name.starts_with("stage.") {
            println!(
                "  {name:<24} count={:<8} p50={}ns p99={}ns max={}ns",
                h.count, h.p50_ns, h.p99_ns, h.max_ns
            );
        }
    }
    println!(
        "  permits={} denies={} of {} requests",
        snapshot.counter("controller.detail_permits"),
        snapshot.counter("controller.detail_denies"),
        snapshot.counter("controller.detail_requests"),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
