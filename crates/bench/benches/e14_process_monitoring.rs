//! E14 (extension) — §1: "monitor, control and trace the clinical and
//! assistive processes". Monitor feed throughput and KPI computation
//! cost vs the number of tracked pathways.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use css_bench::{person, print_header, HOSPITAL};
use css_event::NotificationMessage;
use css_monitor::{ProcessDefinition, ProcessMonitor};
use css_types::{EventTypeId, GlobalEventId, Timestamp};

fn notif(id: u64, person_id: u64, ty: &str, at: u64) -> NotificationMessage {
    NotificationMessage {
        global_id: GlobalEventId(id),
        event_type: EventTypeId::v1(ty),
        person: person(person_id),
        description: String::new(),
        occurred_at: Timestamp(at),
        producer: HOSPITAL,
    }
}

const DAY: u64 = 86_400_000;

fn feed_pathways(monitor: &mut ProcessMonitor, persons: u64) {
    let mut id = 0;
    for p in 1..=persons {
        for (ty, day) in [
            ("hospital-discharge", 0),
            ("autonomy-assessment", 2),
            ("home-care-service-event", 5),
            ("meal-delivery", 6),
        ] {
            id += 1;
            monitor.feed(&notif(id, p, ty, day * DAY));
        }
    }
}

fn bench(c: &mut Criterion) {
    print_header("E14", "process monitor feed throughput & KPI cost");
    let mut group = c.benchmark_group("e14_monitoring");

    group.bench_function("feed_one_notification", |b| {
        let mut monitor = ProcessMonitor::new();
        monitor.register(ProcessDefinition::elderly_care());
        feed_pathways(&mut monitor, 1_000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // A fresh discharge keeps starting new instances.
            monitor.feed(&notif(1_000_000 + i, 100_000 + i, "hospital-discharge", 0));
        })
    });

    for &persons in &[100u64, 1_000, 10_000] {
        let mut monitor = ProcessMonitor::new();
        monitor.register(ProcessDefinition::elderly_care());
        feed_pathways(&mut monitor, persons);
        group.bench_with_input(BenchmarkId::new("kpis", persons), &persons, |b, _| {
            b.iter(|| monitor.kpis())
        });
        group.bench_with_input(
            BenchmarkId::new("check_deadlines", persons),
            &persons,
            |b, _| {
                b.iter(|| {
                    // All instances completed, so this is the scan cost.
                    let mut m = ProcessMonitor::new();
                    std::mem::swap(&mut m, &mut monitor);
                    let n = m.check_deadlines(Timestamp(30 * DAY));
                    std::mem::swap(&mut m, &mut monitor);
                    n
                })
            },
        );
    }
    group.finish();

    let mut monitor = ProcessMonitor::new();
    monitor.register(ProcessDefinition::elderly_care());
    feed_pathways(&mut monitor, 10_000);
    let kpis = monitor.kpis();
    eprintln!(
        "10k pathways: completed={} running={} violations={} (completion rate {:.0}%)",
        kpis.completed,
        kpis.running,
        kpis.deadline_violations + kpis.regressions,
        kpis.completion_rate() * 100.0
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
