//! E19 — shard scaling of the controller data plane.
//!
//! Two measurements:
//!
//! 1. **Threads × shards grid.** For every (shards, threads) pair the
//!    same person-inquiry workload runs against a freshly populated
//!    controller, and the cell's ns/op and aggregate ops/s are printed
//!    in the harness's machine-readable format. On a multicore host the
//!    8-shard column should scale near-linearly where the 1-shard
//!    column flattens; on a single core the grid measures the sharding
//!    layer's overhead instead (scatter-gather + per-shard locking, no
//!    parallelism to win back).
//!
//! 2. **Large-world inquiry tail.** A regional-scale world built via
//!    `crates/sim` (default 1,000,000 events over 10,000 citizens;
//!    override with `CSS_E19_EVENTS` / `CSS_E19_PERSONS`) is inquired
//!    at, and the per-inquiry latency distribution (p50/p99) is
//!    reported — the "does scatter-gather hold up at paper scale"
//!    number.
//!
//! Criterion is initialized only to keep the harness shape of the other
//! experiments; both measurements are manually timed (the harness is
//! single-threaded and the grid needs its own worlds).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::{micro_world_sharded, print_header};
use css_sim::{synth_details, Scenario, ScenarioConfig};
use css_types::{PersonId, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Events published into each grid world.
const GRID_EVENTS: u64 = 2_000;
/// Total inquiries per grid cell (split across the cell's threads).
const GRID_OPS: u64 = 4_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Percentile over a sorted ns sample.
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The threads × shards grid over the person-inquiry hot path.
fn grid(consumer_slots: usize) {
    for shards in [1usize, 2, 4, 8] {
        let mut world = micro_world_sharded(consumer_slots, shards);
        for src in 1..=GRID_EVENTS {
            world.publish_one(src);
        }
        let consumers = world.consumers.clone();
        let controller = Arc::new(world.controller);
        for threads in [1usize, 2, 4, 8] {
            let ops_per_thread = GRID_OPS / threads as u64;
            let started = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let controller = Arc::clone(&controller);
                    let consumer = consumers[t % consumers.len()];
                    static SALT: AtomicU64 = AtomicU64::new(0);
                    let salt = SALT.fetch_add(7_919, Ordering::Relaxed);
                    std::thread::spawn(move || {
                        for i in 0..ops_per_thread {
                            let person = PersonId((salt + i) % GRID_EVENTS + 1);
                            controller.inquire_by_person(consumer, person).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let elapsed = started.elapsed();
            let total_ops = ops_per_thread * threads as u64;
            let ns_per_op = elapsed.as_nanos() as f64 / total_ops as f64;
            let ops_per_s = total_ops as f64 / elapsed.as_secs_f64();
            let id = format!("shards_{shards}_threads_{threads}");
            eprintln!("e19_shard_scaling/{id:<40} time: {ns_per_op:>10.3} ns/iter (n={total_ops})");
            eprintln!("    [grid] shards={shards} threads={threads} {ops_per_s:.0} inquiries/s");
        }
        eprintln!(
            "    [grid] shards={shards} index balance: {:?}",
            controller.index_shard_lens()
        );
    }
}

/// The large sim-built world and its inquiry latency tail.
fn large_world() {
    let events = env_u64("CSS_E19_EVENTS", 1_000_000);
    let persons = env_u64("CSS_E19_PERSONS", 10_000).max(1);
    let shards = env_u64("CSS_E19_SHARDS", 8).max(1) as usize;
    let scenario = Scenario::build_sharded(
        ScenarioConfig {
            persons: persons as usize,
            family_doctors: 2,
            seed: 7,
        },
        Some(shards),
    )
    .unwrap();
    let ty = css_sim::scenario::types::blood_test();
    let producer = scenario.platform.producer(scenario.orgs.hospital).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let build_started = Instant::now();
    for i in 0..events {
        let person = &scenario.persons[(i % persons) as usize];
        producer
            .publish(
                person.clone(),
                "blood test completed",
                synth_details(&ty, person.id, &mut rng),
                Timestamp(1_262_304_000_000 + i),
            )
            .unwrap();
    }
    let build_s = build_started.elapsed().as_secs_f64();
    eprintln!(
        "1M-world build: {events} events / {persons} persons / {shards} shards in {build_s:.1}s \
         ({:.0} publishes/s)",
        events as f64 / build_s.max(1e-9)
    );

    // Inquire as a family doctor; each person carries events/persons
    // notifications, and every inquiry scatter-gathers all shards.
    let doctor = scenario
        .platform
        .consumer(scenario.orgs.family_doctors[0])
        .unwrap();
    let samples = 2_000.min(events.max(1));
    let mut lat_ns: Vec<u64> = Vec::with_capacity(samples as usize);
    let mut returned = 0usize;
    for i in 0..samples {
        let person = PersonId(i % persons + 1);
        let t = Instant::now();
        let hits = doctor.inquire_by_person(person).unwrap();
        lat_ns.push(t.elapsed().as_nanos() as u64);
        returned += hits.len();
    }
    lat_ns.sort_unstable();
    let p50 = pct(&lat_ns, 0.50);
    let p99 = pct(&lat_ns, 0.99);
    // `1M-world:` is the marker scripts/bench.sh turns into the JSON
    // `world` object — keep the key=value shape if editing.
    eprintln!(
        "1M-world: events={events} persons={persons} shards={shards} \
         inquiries={samples} notifications={returned} p50={p50}ns p99={p99}ns"
    );
}

fn bench(_c: &mut Criterion) {
    print_header(
        "E19",
        "shard scaling (threads x shards grid + sim world tail)",
    );
    grid(4);
    large_world();
}

criterion_group!(benches, bench);
criterion_main!(benches);
