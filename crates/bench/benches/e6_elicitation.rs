//! E6 — Figs. 6–7 (§6): elicitation tool throughput — rules authored,
//! validated and compiled per second, plus the cost of rejecting
//! invalid wizard input (what the UI does on every click).

use criterion::{criterion_group, criterion_main, Criterion};

use css_core::{CssPlatform, Role};
use css_event::{EventSchema, FieldDef, FieldKind};
use css_types::{EventTypeId, Purpose};

use css_bench::print_header;

fn bench(c: &mut Criterion) {
    print_header("E6", "privacy rules manager throughput (Figs. 6-7)");
    let mut platform = CssPlatform::in_memory();
    let hospital = platform.register_organization("Hospital").unwrap();
    let mut consumers = Vec::new();
    for i in 0..10 {
        consumers.push(
            platform
                .register_organization(&format!("Consumer {i}"))
                .unwrap(),
        );
    }
    platform.join(hospital, Role::Producer).unwrap();
    for c in &consumers {
        platform.join(*c, Role::Consumer).unwrap();
    }
    let schema = EventSchema::new(EventTypeId::v1("event"), "Event", hospital)
        .field(FieldDef::required("F1", FieldKind::Integer))
        .field(FieldDef::required("F2", FieldKind::Text).sensitive())
        .field(FieldDef::optional("F3", FieldKind::Text))
        .field(FieldDef::optional("F4", FieldKind::Decimal).sensitive());
    let producer = platform.producer(hospital).unwrap();
    producer.declare(&schema, None).unwrap();

    let mut group = c.benchmark_group("e6_elicitation");
    group.sample_size(50);
    let mut n = 0u64;
    group.bench_function("author_one_rule", |b| {
        b.iter(|| {
            n += 1;
            producer
                .policy_wizard(&EventTypeId::v1("event"))
                .unwrap()
                .select_fields(["F1", "F2"])
                .unwrap()
                .grant_to([consumers[(n % 10) as usize]])
                .unwrap()
                .for_purposes([Purpose::Administration])
                .labeled(format!("rule-{n}"), "bench")
                .save()
                .unwrap()
        })
    });
    group.bench_function("author_rule_ten_consumers", |b| {
        b.iter(|| {
            n += 1;
            producer
                .policy_wizard(&EventTypeId::v1("event"))
                .unwrap()
                .select_all_fields()
                .grant_to(consumers.iter().copied())
                .unwrap()
                .for_purposes([Purpose::Administration, Purpose::Audit])
                .labeled(format!("multi-{n}"), "bench")
                .save()
                .unwrap()
        })
    });
    group.bench_function("reject_unknown_field", |b| {
        b.iter(|| {
            producer
                .policy_wizard(&EventTypeId::v1("event"))
                .unwrap()
                .select_fields(["Bogus"])
                .err()
                .expect("unknown field rejected")
        })
    });
    group.bench_function("reject_incomplete_rule", |b| {
        b.iter(|| {
            producer
                .policy_wizard(&EventTypeId::v1("event"))
                .unwrap()
                .select_fields(["F1"])
                .unwrap()
                .grant_to([consumers[0]])
                .unwrap()
                .labeled("x", "")
                .save()
                .unwrap_err()
        })
    });
    group.finish();
    eprintln!("policies authored during the run: {n}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
