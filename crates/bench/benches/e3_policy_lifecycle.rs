//! E3 — Fig. 3 (§5): the privacy-constraint lifecycle — wizard
//! elicitation → XACML generation → repository store → first match.

use criterion::{criterion_group, criterion_main, Criterion};

use css_bench::print_header;
use css_core::{CssPlatform, Role};
use css_event::{EventSchema, FieldDef, FieldKind};
use css_types::{EventTypeId, Purpose};

fn schema(hospital: css_types::ActorId) -> EventSchema {
    EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive())
        .field(FieldDef::optional("Notes", FieldKind::Text).sensitive())
}

fn bench(c: &mut Criterion) {
    print_header(
        "E3",
        "elicitation → XACML → store → enforceable (Fig. 3 lifecycle)",
    );
    let mut group = c.benchmark_group("e3_policy_lifecycle");
    group.sample_size(30);

    // Full lifecycle: one wizard run producing an enforceable policy.
    group.bench_function("wizard_elicit_compile_store", |b| {
        b.iter_batched(
            || {
                let mut platform = CssPlatform::in_memory();
                let hospital = platform.register_organization("Hospital").unwrap();
                let doctor = platform.register_organization("Doctor").unwrap();
                platform.join(hospital, Role::Producer).unwrap();
                platform.join(doctor, Role::Consumer).unwrap();
                let producer = platform.producer(hospital).unwrap();
                producer.declare(&schema(hospital), None).unwrap();
                (platform, hospital, doctor)
            },
            |(platform, hospital, doctor)| {
                platform
                    .producer(hospital)
                    .unwrap()
                    .policy_wizard(&EventTypeId::v1("blood-test"))
                    .unwrap()
                    .select_fields(["PatientId", "Result"])
                    .unwrap()
                    .grant_to([doctor])
                    .unwrap()
                    .for_purposes([Purpose::HealthcareTreatment])
                    .labeled("bench", "")
                    .save()
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // Lifecycle stage costs, printed once as the experiment series.
    {
        let mut platform = CssPlatform::in_memory();
        let hospital = platform.register_organization("Hospital").unwrap();
        let doctor = platform.register_organization("Doctor").unwrap();
        platform.join(hospital, Role::Producer).unwrap();
        platform.join(doctor, Role::Consumer).unwrap();
        let producer = platform.producer(hospital).unwrap();
        producer.declare(&schema(hospital), None).unwrap();
        let runs = 500;
        let t0 = std::time::Instant::now();
        for i in 0..runs {
            producer
                .policy_wizard(&EventTypeId::v1("blood-test"))
                .unwrap()
                .select_fields(["PatientId", "Result"])
                .unwrap()
                .grant_to([doctor])
                .unwrap()
                .for_purposes([Purpose::HealthcareTreatment])
                .labeled(format!("r{i}"), "")
                .save()
                .unwrap();
        }
        let total = t0.elapsed();
        eprintln!(
            "lifecycle: {runs} wizard runs in {total:?} ({:.1} policies/s); repository now holds {} XACML documents",
            runs as f64 / total.as_secs_f64(),
            platform.policy_repository().lock().len()
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
