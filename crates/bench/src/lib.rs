//! Shared fixtures for the experiment benches.
//!
//! One bench target per experiment in `DESIGN.md` §5 (E1–E13). Each
//! bench prints the experiment's result series (the "table/figure" being
//! regenerated) to stderr once, then registers Criterion timings for the
//! operations the series is built from. `EXPERIMENTS.md` records the
//! expected shapes.

use std::sync::Arc;

use css_controller::{ControllerConfig, DataController, SharedGateway};
use css_core::{CssPlatform, MemoryProvider};
use css_event::{DetailMessage, EventDetails, EventSchema, FieldDef, FieldKind, FieldValue};
use css_gateway::LocalCooperationGateway;
use css_policy::PrivacyPolicy;
use css_sim::{Scenario, ScenarioConfig};
use css_storage::MemBackend;
use css_trace::Tracer;
use css_types::{
    Actor, ActorId, EventTypeId, PersonId, PersonIdentity, PolicyId, Purpose, SimClock,
    SourceEventId, Timestamp,
};
use parking_lot::Mutex;

/// Standard ids used by the micro fixtures.
pub const HOSPITAL: ActorId = ActorId(1);
/// First consumer actor id in micro fixtures.
pub const CONSUMER_BASE: u64 = 100;

/// A benchmark-sized blood-test schema.
pub fn blood_test_schema() -> EventSchema {
    EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", HOSPITAL)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("CollectedAt", FieldKind::DateTime))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive())
        .field(FieldDef::optional("Hemoglobin", FieldKind::Decimal).sensitive())
        .field(FieldDef::optional("Notes", FieldKind::Text).sensitive())
}

/// A schema-valid details instance.
pub fn blood_test_details(person: u64) -> EventDetails {
    EventDetails::new(EventTypeId::v1("blood-test"))
        .with("PatientId", FieldValue::Integer(person as i64))
        .with(
            "CollectedAt",
            FieldValue::DateTime(Timestamp(1_284_379_200_000)),
        )
        .with("Result", FieldValue::Text("negative".into()))
        .with("Hemoglobin", FieldValue::Decimal("13.5".parse().unwrap()))
        .with(
            "Notes",
            FieldValue::Text("fasting sample, morning draw".into()),
        )
}

/// An identifying tuple for a synthetic person.
pub fn person(id: u64) -> PersonIdentity {
    PersonIdentity {
        id: PersonId(id),
        fiscal_code: format!("FC{id:014}"),
        name: "Mario".into(),
        surname: "Rossi".into(),
    }
}

/// A policy granting `consumer` the non-sensitive clinical fields.
pub fn doctor_policy(id: u64, consumer: ActorId) -> PrivacyPolicy {
    PrivacyPolicy::new(
        PolicyId(id),
        HOSPITAL,
        consumer,
        EventTypeId::v1("blood-test"),
        [Purpose::HealthcareTreatment],
        ["PatientId", "CollectedAt", "Result"].map(String::from),
    )
    .labeled(format!("bench-{id}"), "bench fixture")
}

/// A ready in-memory controller with `consumers` contracted consumer
/// organizations (ids `CONSUMER_BASE..`), the blood-test class declared,
/// one policy per consumer, and a wired gateway.
pub struct MicroWorld {
    /// The controller under test.
    pub controller: DataController<MemBackend>,
    /// Gateway shared with the controller.
    pub gateway: SharedGateway<MemBackend>,
    /// Simulated clock.
    pub clock: SimClock,
    /// Consumer actor ids.
    pub consumers: Vec<ActorId>,
}

/// Build a [`MicroWorld`] (tracing off).
pub fn micro_world(consumers: usize) -> MicroWorld {
    micro_world_traced(consumers, Tracer::disabled())
}

/// Build a [`MicroWorld`] whose controller mints spans into `tracer` —
/// the fixture for traced-vs-untraced overhead comparisons (E16).
pub fn micro_world_traced(consumers: usize, tracer: Tracer) -> MicroWorld {
    micro_world_config(consumers, tracer, 1)
}

/// Build a [`MicroWorld`] whose controller partitions its data plane
/// into `shards` citizen-hashed shards — the fixture for the E15/E19
/// multicore-scaling runs.
pub fn micro_world_sharded(consumers: usize, shards: usize) -> MicroWorld {
    micro_world_config(consumers, Tracer::disabled(), shards)
}

fn micro_world_config(consumers: usize, tracer: Tracer, shards: usize) -> MicroWorld {
    let clock = SimClock::starting_at(Timestamp(1_000_000));
    let config = ControllerConfig::with_clock(Arc::new(clock.clone()))
        .with_tracer(tracer)
        .with_shards(shards);
    let controller = DataController::new(config, MemBackend::new()).unwrap();
    controller
        .register_actor(Actor::organization(HOSPITAL, "Hospital"))
        .unwrap();
    controller
        .sign_contract(HOSPITAL, css_controller::ParticipantRole::Producer)
        .unwrap();
    let mut gw = LocalCooperationGateway::open(HOSPITAL, MemBackend::new()).unwrap();
    gw.register_schema(blood_test_schema()).unwrap();
    let gateway: SharedGateway<MemBackend> = Arc::new(Mutex::new(gw));
    controller.register_gateway(HOSPITAL, Box::new(gateway.clone()));
    controller
        .declare_event_class(&blood_test_schema(), Some("health/laboratory"))
        .unwrap();
    let mut ids = Vec::new();
    for i in 0..consumers {
        let actor = ActorId(CONSUMER_BASE + i as u64);
        controller
            .register_actor(Actor::organization(actor, format!("Consumer {i}")))
            .unwrap();
        controller
            .sign_contract(actor, css_controller::ParticipantRole::Consumer)
            .unwrap();
        controller
            .define_policy(doctor_policy(i as u64 + 1, actor))
            .unwrap();
        ids.push(actor);
    }
    MicroWorld {
        controller,
        gateway,
        clock,
        consumers: ids,
    }
}

impl MicroWorld {
    /// Persist details at the gateway and publish the notification;
    /// returns the global event id.
    pub fn publish_one(&mut self, src: u64) -> css_types::GlobalEventId {
        self.gateway
            .lock()
            .persist(&DetailMessage {
                src_event_id: SourceEventId(src),
                producer: HOSPITAL,
                details: blood_test_details(src),
            })
            .unwrap();
        self.controller
            .publish(
                HOSPITAL,
                person(src),
                "blood test completed".into(),
                EventTypeId::v1("blood-test"),
                Timestamp(1_000_000),
                SourceEventId(src),
                None,
            )
            .unwrap()
            .global_id
    }
}

/// A small full-platform scenario for macro benches.
pub fn small_scenario() -> Scenario {
    Scenario::build(ScenarioConfig {
        persons: 20,
        family_doctors: 2,
        seed: 7,
    })
    .unwrap()
}

/// Convenience alias for bench signatures.
pub type Platform = CssPlatform<MemoryProvider>;

/// Print an experiment header so bench output doubles as the
/// experiment's result table.
pub fn print_header(experiment: &str, description: &str) {
    eprintln!("\n=== {experiment}: {description} ===");
}
