//! The sharded audit plane.
//!
//! One audit log serializes every publish, inquiry, and detail request
//! behind a single lock — the same bottleneck the sharded events index
//! removes from the data plane. [`AuditShards`] partitions the log into
//! N shard-local [`AuditLog`]s, each behind its own mutex, routed by
//! the record's data subject (falling back to the acting party for
//! records without a person dimension). A publish group commit carries
//! one person, so the whole batch lands on one shard as a single
//! storage write — group-commit semantics survive sharding.
//!
//! Sequence numbers come from one shared [`AtomicU64`]: the global
//! order of the log is preserved (merge-sort by seq), each shard's
//! stream is strictly increasing, and the tamper-evident hash chain
//! still covers every shard — the combined head binds all shard heads.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::Mutex;

use css_storage::LogBackend;
use css_types::{CssError, CssResult};

use crate::log::AuditLog;
use crate::query::AuditQuery;
use crate::record::AuditRecord;
use crate::report::AuditReport;

/// Fibonacci-hash a routing key onto `n` shards (multiplicative
/// spreading keeps sequential person ids from clustering).
fn spread(key: u64, n: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % n
}

/// N shard-local audit logs sharing one global sequence counter.
pub struct AuditShards<B: LogBackend> {
    shards: Vec<Mutex<AuditLog<B>>>,
    sequencer: Arc<AtomicU64>,
}

impl<B: LogBackend> AuditShards<B> {
    /// `n` purely in-memory shards (n is clamped to at least 1).
    pub fn in_memory(n: usize) -> Self {
        let sequencer = Arc::new(AtomicU64::new(0));
        let shards = (0..n.max(1))
            .map(|_| Mutex::new(AuditLog::in_memory_sequenced(sequencer.clone())))
            .collect();
        AuditShards { shards, sequencer }
    }

    /// Open one disk-backed shard per backend, replaying and verifying
    /// each shard's chain and advancing the shared sequencer past the
    /// highest recovered seq.
    pub fn open(backends: Vec<B>) -> CssResult<Self> {
        if backends.is_empty() {
            return Err(CssError::Invalid(
                "audit shards need at least one backend".into(),
            ));
        }
        let sequencer = Arc::new(AtomicU64::new(0));
        let mut shards = Vec::with_capacity(backends.len());
        for backend in backends {
            shards.push(Mutex::new(AuditLog::open_sequenced(
                backend,
                sequencer.clone(),
            )?));
        }
        Ok(AuditShards { shards, sequencer })
    }

    /// Shard 0 disk-backed on `backend`, shards `1..n` in-memory — the
    /// shape a controller constructed with a single audit backend takes
    /// when asked for an `n`-shard plane. Recovery replays shard 0 and
    /// resumes the shared sequencer past its highest seq.
    pub fn open_padded(backend: B, n: usize) -> CssResult<Self> {
        let sequencer = Arc::new(AtomicU64::new(0));
        let mut shards = vec![Mutex::new(AuditLog::open_sequenced(
            backend,
            sequencer.clone(),
        )?)];
        for _ in 1..n.max(1) {
            shards.push(Mutex::new(AuditLog::in_memory_sequenced(sequencer.clone())));
        }
        Ok(AuditShards { shards, sequencer })
    }

    /// How many shards the plane runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared sequence counter (shard-local logs of the same plane
    /// must allocate from it).
    pub fn sequencer(&self) -> Arc<AtomicU64> {
        self.sequencer.clone()
    }

    /// Which shard a record routes to: by data subject when the record
    /// has a person dimension, by acting party otherwise.
    pub fn shard_of(&self, record: &AuditRecord) -> usize {
        let key = record
            .person
            .map(|p| p.value())
            .unwrap_or_else(|| record.actor.value());
        spread(key, self.shards.len())
    }

    /// Append one record to its shard. Returns the global seq.
    pub fn append(&self, record: AuditRecord) -> CssResult<u64> {
        let mut shard = self.shards[self.shard_of(&record)].lock();
        shard.append(record)
    }

    /// Append a batch as one group commit on the first record's shard
    /// (a publish batch carries a single data subject, so the routing
    /// key is the same for every record in it). Returns the first seq.
    pub fn append_batch(&self, records: Vec<AuditRecord>) -> CssResult<u64> {
        let Some(first) = records.first() else {
            return Ok(self.sequencer.load(std::sync::atomic::Ordering::Acquire));
        };
        let mut shard = self.shards[self.shard_of(first)].lock();
        shard.append_batch(records)
    }

    /// Run an inquiry across every shard, merged into global seq order.
    pub fn query(&self, q: &AuditQuery) -> Vec<AuditRecord> {
        let mut out: Vec<AuditRecord> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            out.extend(shard.query(q).into_iter().cloned());
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Aggregate report over the records matching `q`, all shards.
    pub fn report(&self, q: &AuditQuery) -> AuditReport {
        AuditReport::from_records(self.query(q).iter())
    }

    /// Every record, merged into global seq order.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.query(&AuditQuery::new())
    }

    /// The digest pinning the whole plane's state. With one shard this
    /// is that shard's chain head (identical to an unsharded log); with
    /// several it is the hash over the concatenated shard heads, so any
    /// offline modification of any shard changes the combined head.
    pub fn head(&self) -> [u8; 32] {
        if self.shards.len() == 1 {
            return self.shards[0].lock().head();
        }
        let mut all = Vec::with_capacity(self.shards.len() * 32);
        for shard in &self.shards {
            all.extend_from_slice(&shard.lock().head());
        }
        css_crypto::sha256(&all)
    }

    /// Re-derive and check every chain link of every shard.
    pub fn verify(&self) -> CssResult<()> {
        for shard in &self.shards {
            shard.lock().verify()?;
        }
        Ok(())
    }

    /// Total records across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no shard holds a record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records per shard — the balance picture an operator watches.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }

    /// Flush every shard's persisted records to stable storage.
    pub fn sync(&self) -> CssResult<()> {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AuditAction;
    use css_storage::MemBackend;
    use css_types::{ActorId, PersonId, Timestamp};

    fn rec(i: u64, person: u64) -> AuditRecord {
        AuditRecord::new(Timestamp(i * 10), ActorId(i % 3 + 1), AuditAction::Publish)
            .person(PersonId(person))
    }

    #[test]
    fn appends_route_by_person_and_merge_in_seq_order() {
        let shards = AuditShards::<MemBackend>::in_memory(4);
        for i in 0..32 {
            shards.append(rec(i, i)).unwrap();
        }
        assert_eq!(shards.len(), 32);
        // At least two shards got records (spread hash over 0..32).
        let busy = shards.shard_lens().iter().filter(|&&n| n > 0).count();
        assert!(busy >= 2, "expected spread, got {:?}", shards.shard_lens());
        // Merged view is densely seq-ordered.
        let merged = shards.records();
        let seqs: Vec<u64> = merged.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..32).collect::<Vec<_>>());
        shards.verify().unwrap();
    }

    #[test]
    fn same_person_batch_lands_on_one_shard_contiguously() {
        let shards = AuditShards::<MemBackend>::in_memory(4);
        shards.append(rec(0, 1)).unwrap();
        let first = shards
            .append_batch((0..5).map(|i| rec(i, 7)).collect())
            .unwrap();
        assert_eq!(first, 1);
        let batch = shards.query(&AuditQuery::new().person(PersonId(7)));
        assert_eq!(batch.len(), 5);
        let seqs: Vec<u64> = batch.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_shard_head_matches_unsharded_log() {
        let shards = AuditShards::<MemBackend>::in_memory(1);
        let mut plain = AuditLog::<MemBackend>::in_memory();
        for i in 0..6 {
            shards.append(rec(i, i)).unwrap();
            plain.append(rec(i, i)).unwrap();
        }
        assert_eq!(shards.head(), plain.head());
    }

    #[test]
    fn multi_shard_head_detects_any_shard_change() {
        let a = AuditShards::<MemBackend>::in_memory(4);
        let b = AuditShards::<MemBackend>::in_memory(4);
        for i in 0..8 {
            a.append(rec(i, i)).unwrap();
            b.append(rec(i, i)).unwrap();
        }
        assert_eq!(a.head(), b.head());
        b.append(rec(99, 3)).unwrap();
        assert_ne!(a.head(), b.head());
    }

    #[test]
    fn sharded_logs_reopen_with_gappy_seqs() {
        let shards = AuditShards::open(vec![MemBackend::new(), MemBackend::new()]).unwrap();
        for i in 0..10 {
            shards.append(rec(i, i)).unwrap();
        }
        let head = shards.head();
        // Extract both backends and reopen: each shard's stream is
        // gappy but increasing; the sequencer resumes past the max.
        let backends: Vec<MemBackend> = shards
            .shards
            .into_iter()
            .map(|s| s.into_inner().into_backend().unwrap())
            .collect();
        let reopened = AuditShards::open(backends).unwrap();
        assert_eq!(reopened.len(), 10);
        assert_eq!(reopened.head(), head);
        let next = reopened.append(rec(50, 50)).unwrap();
        assert_eq!(next, 10);
    }

    #[test]
    fn empty_batch_allocates_nothing() {
        let shards = AuditShards::<MemBackend>::in_memory(2);
        shards.append(rec(0, 0)).unwrap();
        shards.append_batch(Vec::new()).unwrap();
        assert_eq!(shards.append(rec(1, 1)).unwrap(), 1);
    }
}
