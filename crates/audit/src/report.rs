//! Aggregate audit reports.
//!
//! The governing body in the scenario uses platform data "to assess the
//! efficiency of the services being delivered"; the privacy guarantor
//! wants denial rates and purpose breakdowns. This module computes
//! those aggregates from a record stream.

use std::collections::BTreeMap;

use crate::record::{AuditAction, AuditRecord};

/// Aggregate view over a set of audit records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Total records considered.
    pub total: usize,
    /// Denied records.
    pub denied: usize,
    /// Records per action code.
    pub by_action: BTreeMap<&'static str, usize>,
    /// Records per purpose code (records with a purpose only).
    pub by_purpose: BTreeMap<String, usize>,
    /// Denials per deny reason.
    pub deny_reasons: BTreeMap<String, usize>,
    /// Records per acting party (rendered actor id).
    pub by_actor: BTreeMap<String, usize>,
}

impl AuditReport {
    /// Build a report from a record iterator.
    pub fn from_records<'a>(records: impl Iterator<Item = &'a AuditRecord>) -> Self {
        let mut report = AuditReport::default();
        for r in records {
            report.total += 1;
            *report.by_action.entry(r.action.code()).or_default() += 1;
            *report.by_actor.entry(r.actor.to_string()).or_default() += 1;
            if let Some(p) = &r.purpose {
                *report.by_purpose.entry(p.code().to_string()).or_default() += 1;
            }
            if let crate::record::AuditOutcome::Denied(reason) = &r.outcome {
                report.denied += 1;
                *report.deny_reasons.entry(reason.clone()).or_default() += 1;
            }
        }
        report
    }

    /// Fraction of records that were denied (0.0 for an empty report).
    pub fn denial_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.denied as f64 / self.total as f64
        }
    }

    /// Count for one action.
    pub fn action_count(&self, action: AuditAction) -> usize {
        self.by_action.get(action.code()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_types::{ActorId, Purpose, Timestamp};

    #[test]
    fn aggregates_actions_purposes_denials() {
        let records = [
            AuditRecord::new(Timestamp(0), ActorId(1), AuditAction::Publish),
            AuditRecord::new(Timestamp(1), ActorId(2), AuditAction::DetailRequest)
                .purpose(Purpose::HealthcareTreatment),
            AuditRecord::new(Timestamp(2), ActorId(2), AuditAction::DetailRequest)
                .purpose(Purpose::HealthcareTreatment)
                .denied("purpose not allowed"),
            AuditRecord::new(Timestamp(3), ActorId(3), AuditAction::DetailRequest)
                .purpose(Purpose::StatisticalAnalysis)
                .denied("no matching policy"),
        ];
        let report = AuditReport::from_records(records.iter());
        assert_eq!(report.total, 4);
        assert_eq!(report.denied, 2);
        assert_eq!(report.denial_rate(), 0.5);
        assert_eq!(report.action_count(AuditAction::DetailRequest), 3);
        assert_eq!(report.action_count(AuditAction::Publish), 1);
        assert_eq!(report.by_purpose["healthcare-treatment"], 2);
        assert_eq!(report.deny_reasons["no matching policy"], 1);
        assert_eq!(report.by_actor["act-00000002"], 2);
        assert_eq!(report.by_actor.len(), 3);
    }

    #[test]
    fn empty_report() {
        let report = AuditReport::from_records(std::iter::empty());
        assert_eq!(report.total, 0);
        assert_eq!(report.denial_rate(), 0.0);
        assert_eq!(report.action_count(AuditAction::Publish), 0);
    }
}
