//! Audit records: one structured entry per platform action.

use css_trace::TraceId;
use css_types::{
    ActorId, CssError, CssResult, EventTypeId, GlobalEventId, PersonId, Purpose, RequestId,
    Timestamp,
};
use css_xml::Element;

/// The kind of action an audit record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditAction {
    /// A producer published a notification.
    Publish,
    /// A consumer subscribed (or tried to) to a class of events.
    Subscribe,
    /// A notification was delivered to a consumer.
    Delivery,
    /// A consumer inquired the events index.
    IndexInquiry,
    /// A consumer requested the details of an event.
    DetailRequest,
    /// A data subject changed their consent.
    ConsentChange,
    /// A producer defined or updated a privacy policy.
    PolicyChange,
    /// A participant joined the platform (signed a contract).
    ContractSigned,
    /// A data subject exercised their right of access (viewed their own
    /// profile or audit trail).
    SubjectAccess,
}

impl AuditAction {
    /// Stable code used in serialization.
    pub fn code(self) -> &'static str {
        match self {
            AuditAction::Publish => "publish",
            AuditAction::Subscribe => "subscribe",
            AuditAction::Delivery => "delivery",
            AuditAction::IndexInquiry => "index-inquiry",
            AuditAction::DetailRequest => "detail-request",
            AuditAction::ConsentChange => "consent-change",
            AuditAction::PolicyChange => "policy-change",
            AuditAction::ContractSigned => "contract-signed",
            AuditAction::SubjectAccess => "subject-access",
        }
    }

    fn from_code(s: &str) -> Option<Self> {
        Some(match s {
            "publish" => AuditAction::Publish,
            "subscribe" => AuditAction::Subscribe,
            "delivery" => AuditAction::Delivery,
            "index-inquiry" => AuditAction::IndexInquiry,
            "detail-request" => AuditAction::DetailRequest,
            "consent-change" => AuditAction::ConsentChange,
            "policy-change" => AuditAction::PolicyChange,
            "contract-signed" => AuditAction::ContractSigned,
            "subject-access" => AuditAction::SubjectAccess,
            _ => return None,
        })
    }
}

/// How the action ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The action succeeded / was permitted.
    Permitted,
    /// The action was denied, with the coarse reason string.
    Denied(String),
}

impl AuditOutcome {
    /// Whether the outcome is a permit.
    pub fn is_permitted(&self) -> bool {
        matches!(self, AuditOutcome::Permitted)
    }
}

/// One audit entry. Optional dimensions are `None` when not applicable
/// (e.g. a contract signing has no event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Position in the log; assigned at append time.
    pub seq: u64,
    /// When the action happened (controller clock).
    pub at: Timestamp,
    /// The acting party.
    pub actor: ActorId,
    /// What kind of action.
    pub action: AuditAction,
    /// The event involved, if any.
    pub event: Option<GlobalEventId>,
    /// The class of event involved, if any.
    pub event_type: Option<EventTypeId>,
    /// The data subject involved, if any.
    pub person: Option<PersonId>,
    /// The stated purpose, if any.
    pub purpose: Option<Purpose>,
    /// The correlated request, if any.
    pub request: Option<RequestId>,
    /// The causal trace this action belongs to, if tracing was enabled
    /// — the join key between the audit log and the span collector.
    pub trace: Option<TraceId>,
    /// Outcome.
    pub outcome: AuditOutcome,
    /// Free-form detail (e.g. matched policy ids).
    pub detail: String,
}

impl AuditRecord {
    /// A permitted record with the mandatory dimensions; extend via the
    /// builder methods.
    pub fn new(at: Timestamp, actor: ActorId, action: AuditAction) -> Self {
        AuditRecord {
            seq: 0,
            at,
            actor,
            action,
            event: None,
            event_type: None,
            person: None,
            purpose: None,
            request: None,
            trace: None,
            outcome: AuditOutcome::Permitted,
            detail: String::new(),
        }
    }

    /// Builder: the event involved.
    pub fn event(mut self, id: GlobalEventId) -> Self {
        self.event = Some(id);
        self
    }

    /// Builder: the event class involved.
    pub fn event_type(mut self, ty: EventTypeId) -> Self {
        self.event_type = Some(ty);
        self
    }

    /// Builder: the data subject involved.
    pub fn person(mut self, id: PersonId) -> Self {
        self.person = Some(id);
        self
    }

    /// Builder: the stated purpose.
    pub fn purpose(mut self, p: Purpose) -> Self {
        self.purpose = Some(p);
        self
    }

    /// Builder: the correlated request id.
    pub fn request(mut self, id: RequestId) -> Self {
        self.request = Some(id);
        self
    }

    /// Builder: the causal trace (absent when the trace id is `None`,
    /// i.e. when tracing is disabled — builders stay one-liners at the
    /// call sites either way).
    pub fn trace(mut self, id: Option<TraceId>) -> Self {
        self.trace = id;
        self
    }

    /// Builder: mark denied with a reason.
    pub fn denied(mut self, reason: impl Into<String>) -> Self {
        self.outcome = AuditOutcome::Denied(reason.into());
        self
    }

    /// Builder: attach free-form detail.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Serialize to the XML persistence form.
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("AuditRecord")
            .attr("seq", self.seq.to_string())
            .attr("at", self.at.as_millis().to_string())
            .attr("actor", self.actor.to_string())
            .attr("action", self.action.code());
        if let Some(id) = self.event {
            e = e.attr("event", id.to_string());
        }
        if let Some(ty) = &self.event_type {
            e = e.attr("eventType", ty.to_string());
        }
        if let Some(p) = self.person {
            e = e.attr("person", p.to_string());
        }
        if let Some(p) = &self.purpose {
            e = e.attr("purpose", p.code());
        }
        if let Some(r) = self.request {
            e = e.attr("request", r.to_string());
        }
        if let Some(t) = self.trace {
            e = e.attr("trace", t.to_string());
        }
        match &self.outcome {
            AuditOutcome::Permitted => e = e.attr("outcome", "permitted"),
            AuditOutcome::Denied(reason) => {
                e = e.attr("outcome", "denied").attr("reason", reason.clone());
            }
        }
        if !self.detail.is_empty() {
            e = e.child(Element::leaf("Detail", self.detail.clone()));
        }
        e
    }

    /// Parse from the XML persistence form.
    pub fn from_xml(e: &Element) -> CssResult<Self> {
        let bad = |msg: String| CssError::Serialization(format!("AuditRecord: {msg}"));
        if e.name != "AuditRecord" {
            return Err(bad(format!("wrong root <{}>", e.name)));
        }
        let req = |attr: &str| {
            e.attribute(attr)
                .ok_or_else(|| bad(format!("missing {attr}")))
        };
        let seq: u64 = req("seq")?
            .parse()
            .map_err(|x| bad(format!("bad seq: {x}")))?;
        let at = Timestamp(
            req("at")?
                .parse()
                .map_err(|x| bad(format!("bad at: {x}")))?,
        );
        let actor: ActorId = req("actor")?
            .parse()
            .map_err(|x| bad(format!("bad actor: {x}")))?;
        let action = AuditAction::from_code(req("action")?)
            .ok_or_else(|| bad(format!("unknown action {:?}", e.attribute("action"))))?;
        let opt = |attr: &str| e.attribute(attr);
        let event = opt("event")
            .map(|s| s.parse::<GlobalEventId>())
            .transpose()
            .map_err(|x| bad(format!("bad event: {x}")))?;
        let event_type = opt("eventType")
            .map(|s| s.parse::<EventTypeId>())
            .transpose()
            .map_err(|x| bad(format!("bad eventType: {x}")))?;
        let person = opt("person")
            .map(|s| s.parse::<PersonId>())
            .transpose()
            .map_err(|x| bad(format!("bad person: {x}")))?;
        let purpose = opt("purpose").map(Purpose::from_code);
        let request = opt("request")
            .map(|s| s.parse::<RequestId>())
            .transpose()
            .map_err(|x| bad(format!("bad request: {x}")))?;
        let trace = opt("trace")
            .map(|s| s.parse::<TraceId>())
            .transpose()
            .map_err(|x| bad(format!("bad trace: {x}")))?;
        let outcome = match req("outcome")? {
            "permitted" => AuditOutcome::Permitted,
            "denied" => AuditOutcome::Denied(opt("reason").unwrap_or("").to_string()),
            other => return Err(bad(format!("unknown outcome {other:?}"))),
        };
        let detail = e.child_text("Detail").unwrap_or_default();
        Ok(AuditRecord {
            seq,
            at,
            actor,
            action,
            event,
            event_type,
            person,
            purpose,
            request,
            trace,
            outcome,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_record() -> AuditRecord {
        let mut r = AuditRecord::new(Timestamp(123), ActorId(4), AuditAction::DetailRequest)
            .event(GlobalEventId(9))
            .event_type(EventTypeId::v1("blood-test"))
            .person(PersonId(2))
            .purpose(Purpose::HealthcareTreatment)
            .request(RequestId(55))
            .trace(Some(TraceId::mint(123, 1)))
            .with_detail("matched pol-00000001");
        r.seq = 17;
        r
    }

    #[test]
    fn xml_roundtrip_full() {
        let r = full_record();
        let text = css_xml::to_string(&r.to_xml());
        let back = AuditRecord::from_xml(&css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn xml_roundtrip_minimal() {
        let r = AuditRecord::new(Timestamp(0), ActorId(1), AuditAction::ContractSigned);
        let back = AuditRecord::from_xml(&r.to_xml()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn xml_roundtrip_denied() {
        let r = AuditRecord::new(Timestamp(5), ActorId(2), AuditAction::Subscribe)
            .denied("no matching policy");
        let back = AuditRecord::from_xml(&r.to_xml()).unwrap();
        assert_eq!(
            back.outcome,
            AuditOutcome::Denied("no matching policy".into())
        );
        assert!(!back.outcome.is_permitted());
    }

    #[test]
    fn action_codes_roundtrip() {
        for a in [
            AuditAction::Publish,
            AuditAction::Subscribe,
            AuditAction::Delivery,
            AuditAction::IndexInquiry,
            AuditAction::DetailRequest,
            AuditAction::ConsentChange,
            AuditAction::PolicyChange,
            AuditAction::ContractSigned,
            AuditAction::SubjectAccess,
        ] {
            assert_eq!(AuditAction::from_code(a.code()), Some(a));
        }
        assert_eq!(AuditAction::from_code("espionage"), None);
    }

    #[test]
    fn from_xml_rejects_malformed() {
        assert!(AuditRecord::from_xml(&Element::new("Wrong")).is_err());
        let missing = Element::new("AuditRecord").attr("seq", "1");
        assert!(AuditRecord::from_xml(&missing).is_err());
        let bad_action = Element::new("AuditRecord")
            .attr("seq", "1")
            .attr("at", "0")
            .attr("actor", "act-00000001")
            .attr("action", "espionage")
            .attr("outcome", "permitted");
        assert!(AuditRecord::from_xml(&bad_action).is_err());
    }
}
