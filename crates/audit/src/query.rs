//! Audit inquiries: "who did the request and why / for which purpose?"

use css_trace::TraceId;
use css_types::{ActorId, GlobalEventId, PersonId, Purpose, Timestamp};

use crate::record::{AuditAction, AuditRecord};

/// A conjunctive filter over audit records. Unset dimensions match
/// everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditQuery {
    actor: Option<ActorId>,
    person: Option<PersonId>,
    event: Option<GlobalEventId>,
    action: Option<AuditAction>,
    purpose: Option<Purpose>,
    from: Option<Timestamp>,
    to: Option<Timestamp>,
    trace: Option<TraceId>,
    only_denied: bool,
}

impl AuditQuery {
    /// A query matching every record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict to one acting party.
    pub fn actor(mut self, id: ActorId) -> Self {
        self.actor = Some(id);
        self
    }

    /// Restrict to records about one data subject — the query a citizen
    /// exercising their access rights triggers.
    pub fn person(mut self, id: PersonId) -> Self {
        self.person = Some(id);
        self
    }

    /// Restrict to one event.
    pub fn event(mut self, id: GlobalEventId) -> Self {
        self.event = Some(id);
        self
    }

    /// Restrict to one action kind.
    pub fn action(mut self, action: AuditAction) -> Self {
        self.action = Some(action);
        self
    }

    /// Restrict to one stated purpose.
    pub fn purpose(mut self, purpose: Purpose) -> Self {
        self.purpose = Some(purpose);
        self
    }

    /// Restrict to records in `[from, to]` (inclusive).
    pub fn between(mut self, from: Timestamp, to: Timestamp) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Restrict to records of one causal trace — the audit side of the
    /// trace ↔ audit join: given a trace id from a span tree, return
    /// every accountable action that request performed.
    pub fn trace(mut self, id: TraceId) -> Self {
        self.trace = Some(id);
        self
    }

    /// Restrict to denials.
    pub fn denied_only(mut self) -> Self {
        self.only_denied = true;
        self
    }

    /// Whether a record matches.
    pub fn matches(&self, r: &AuditRecord) -> bool {
        self.actor.is_none_or(|a| r.actor == a)
            && self.person.is_none_or(|p| r.person == Some(p))
            && self.event.is_none_or(|e| r.event == Some(e))
            && self.action.is_none_or(|a| r.action == a)
            && self
                .purpose
                .as_ref()
                .is_none_or(|p| r.purpose.as_ref() == Some(p))
            && self.from.is_none_or(|t| r.at >= t)
            && self.to.is_none_or(|t| r.at <= t)
            && self.trace.is_none_or(|t| r.trace == Some(t))
            && (!self.only_denied || !r.outcome.is_permitted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> AuditRecord {
        AuditRecord::new(Timestamp(100), ActorId(1), AuditAction::DetailRequest)
            .person(PersonId(7))
            .event(GlobalEventId(3))
            .purpose(Purpose::HealthcareTreatment)
    }

    #[test]
    fn empty_query_matches_all() {
        assert!(AuditQuery::new().matches(&rec()));
    }

    #[test]
    fn each_dimension_filters() {
        let r = rec();
        assert!(AuditQuery::new().actor(ActorId(1)).matches(&r));
        assert!(!AuditQuery::new().actor(ActorId(2)).matches(&r));
        assert!(AuditQuery::new().person(PersonId(7)).matches(&r));
        assert!(!AuditQuery::new().person(PersonId(8)).matches(&r));
        assert!(AuditQuery::new().event(GlobalEventId(3)).matches(&r));
        assert!(!AuditQuery::new().event(GlobalEventId(4)).matches(&r));
        assert!(AuditQuery::new()
            .action(AuditAction::DetailRequest)
            .matches(&r));
        assert!(!AuditQuery::new().action(AuditAction::Publish).matches(&r));
        assert!(AuditQuery::new()
            .purpose(Purpose::HealthcareTreatment)
            .matches(&r));
        assert!(!AuditQuery::new().purpose(Purpose::Audit).matches(&r));
    }

    #[test]
    fn time_window() {
        let r = rec();
        assert!(AuditQuery::new()
            .between(Timestamp(50), Timestamp(150))
            .matches(&r));
        assert!(!AuditQuery::new()
            .between(Timestamp(101), Timestamp(150))
            .matches(&r));
        assert!(AuditQuery::new()
            .between(Timestamp(100), Timestamp(100))
            .matches(&r));
    }

    #[test]
    fn denied_only() {
        let ok = rec();
        let no = rec().denied("no matching policy");
        assert!(!AuditQuery::new().denied_only().matches(&ok));
        assert!(AuditQuery::new().denied_only().matches(&no));
    }

    #[test]
    fn trace_dimension_filters() {
        let traced = rec().trace(Some(TraceId::mint(9, 1)));
        let untraced = rec();
        let q = AuditQuery::new().trace(TraceId::mint(9, 1));
        assert!(q.matches(&traced));
        assert!(!q.matches(&untraced));
        assert!(!AuditQuery::new()
            .trace(TraceId::mint(9, 2))
            .matches(&traced));
    }

    #[test]
    fn dimensions_conjoin() {
        let r = rec();
        let q = AuditQuery::new()
            .actor(ActorId(1))
            .person(PersonId(7))
            .action(AuditAction::DetailRequest);
        assert!(q.matches(&r));
        let q2 = q.purpose(Purpose::Audit);
        assert!(!q2.matches(&r));
    }

    #[test]
    fn record_without_person_fails_person_query() {
        let r = AuditRecord::new(Timestamp(0), ActorId(1), AuditAction::ContractSigned);
        assert!(!AuditQuery::new().person(PersonId(7)).matches(&r));
    }
}
