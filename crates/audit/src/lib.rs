//! The audit subsystem.
//!
//! A central promise of the CSS platform is accountability: the data
//! controller "maintains logs of the access request for auditing
//! purposes" and the architecture exists partly so one can "trace how
//! data is used by whom and for what purpose and ... answer auditing
//! inquiry by the privacy guarantor or the data subject herself"
//! (Sections 2 and 4).
//!
//! - [`AuditRecord`]: one structured entry — who did what, to which
//!   event, about which person, for which purpose, with which outcome.
//! - [`AuditLog`]: an append-only, hash-chained ([`css_crypto::HashChain`])
//!   and optionally disk-backed log; tampering with any past record is
//!   detectable from the chain head.
//! - [`AuditQuery`]: the inquiry interface ("who accessed the data of
//!   person X, and why?").
//! - [`report`]: aggregate summaries (accesses per purpose, denial
//!   rates) of the kind the governing body needs.

pub mod log;
pub mod query;
pub mod record;
pub mod report;
pub mod shards;

pub use log::AuditLog;
pub use query::AuditQuery;
pub use record::{AuditAction, AuditOutcome, AuditRecord};
pub use report::AuditReport;
pub use shards::AuditShards;
