//! The tamper-evident audit log.
//!
//! Records are appended to a [`css_crypto::HashChain`] and, when the log
//! is disk-backed, to a `css-storage` record log. Reloading verifies the
//! whole chain, so any offline modification of the persisted log is
//! detected at open time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use css_crypto::{ChainVerifyError, HashChain};
use css_storage::{LogBackend, RecordLog};
use css_types::{CssError, CssResult};

use crate::query::AuditQuery;
use crate::record::AuditRecord;
use crate::report::AuditReport;

/// Append-only audit log with hash chaining and optional persistence.
///
/// A log numbers its records in one of two modes:
///
/// - **self-sequenced** (the default): seq equals the record's position
///   in this log, so the persisted stream is densely numbered `0, 1,
///   2, …` and recovery rejects any gap.
/// - **globally sequenced** ([`AuditLog::in_memory_sequenced`] /
///   [`AuditLog::open_sequenced`]): seq is drawn from a shared
///   [`AtomicU64`] that several shard-local logs allocate from. Each
///   shard's stream is then strictly increasing but *gappy* (the gaps
///   live on sibling shards), and recovery only enforces monotonicity,
///   advancing the shared counter past the highest recovered seq.
pub struct AuditLog<B: LogBackend> {
    chain: HashChain,
    records: Vec<AuditRecord>,
    storage: Option<RecordLog<B>>,
    sequencer: Option<Arc<AtomicU64>>,
}

impl<B: LogBackend> AuditLog<B> {
    /// A purely in-memory log (benchmarks, short-lived simulations).
    pub fn in_memory() -> Self {
        AuditLog {
            chain: HashChain::new(),
            records: Vec::new(),
            storage: None,
            sequencer: None,
        }
    }

    /// An in-memory log drawing sequence numbers from a shared counter
    /// (one shard of a sharded audit plane).
    pub fn in_memory_sequenced(sequencer: Arc<AtomicU64>) -> Self {
        AuditLog {
            sequencer: Some(sequencer),
            ..Self::in_memory()
        }
    }

    /// Open a disk-backed log, replaying and verifying existing records.
    ///
    /// Fails if any persisted record is malformed or if the rebuilt
    /// chain does not verify (evidence of offline tampering).
    pub fn open(backend: B) -> CssResult<Self> {
        Self::open_inner(backend, None)
    }

    /// Open a disk-backed shard log that numbers records from a shared
    /// counter. Recovery accepts the strictly-increasing (gappy)
    /// sequence a shard produces and advances `sequencer` past the
    /// highest recovered seq so restarts never reuse a number.
    pub fn open_sequenced(backend: B, sequencer: Arc<AtomicU64>) -> CssResult<Self> {
        Self::open_inner(backend, Some(sequencer))
    }

    fn open_inner(backend: B, sequencer: Option<Arc<AtomicU64>>) -> CssResult<Self> {
        let (storage, outcome) = RecordLog::recover(backend)?;
        let mut chain = HashChain::new();
        let mut records: Vec<AuditRecord> = Vec::with_capacity(outcome.records.len());
        for ptr in &outcome.records {
            let payload = storage.read(*ptr)?;
            let text = String::from_utf8(payload.clone())
                .map_err(|e| CssError::Serialization(format!("audit record not UTF-8: {e}")))?;
            let doc = css_xml::parse(&text).map_err(|e| CssError::Serialization(e.to_string()))?;
            let record = AuditRecord::from_xml(&doc)?;
            match &sequencer {
                None => {
                    let expected_seq = records.len() as u64;
                    if record.seq != expected_seq {
                        return Err(CssError::Storage(format!(
                            "audit log sequence gap: expected {expected_seq}, found {}",
                            record.seq
                        )));
                    }
                }
                Some(seq) => {
                    if let Some(prev) = records.last() {
                        if record.seq <= prev.seq {
                            return Err(CssError::Storage(format!(
                                "audit shard sequence not increasing: {} after {}",
                                record.seq, prev.seq
                            )));
                        }
                    }
                    seq.fetch_max(record.seq + 1, Ordering::AcqRel);
                }
            }
            chain.append(payload);
            records.push(record);
        }
        chain
            .verify()
            .map_err(|e: ChainVerifyError| CssError::Crypto(e.to_string()))?;
        Ok(AuditLog {
            chain,
            records,
            storage: Some(storage),
            sequencer,
        })
    }

    /// Allocate `n` consecutive sequence numbers in this log's mode.
    fn alloc_seq(&self, n: u64) -> u64 {
        match &self.sequencer {
            Some(seq) => seq.fetch_add(n, Ordering::AcqRel),
            None => self.records.len() as u64,
        }
    }

    /// Append a record, assigning its sequence number. Returns the seq.
    pub fn append(&mut self, mut record: AuditRecord) -> CssResult<u64> {
        record.seq = self.alloc_seq(1);
        let payload = css_xml::to_string(&record.to_xml()).into_bytes();
        if let Some(storage) = &mut self.storage {
            storage.append(&payload)?;
        }
        self.chain.append(payload);
        let seq = record.seq;
        self.records.push(record);
        Ok(seq)
    }

    /// Append several records as one group commit, assigning their
    /// sequence numbers. Returns the seq of the first record.
    ///
    /// The persisted frames are byte-identical to sequential
    /// [`AuditLog::append`] calls — recovery cannot tell them apart —
    /// but the storage backend sees a single write for the whole batch.
    /// The publish path uses this for the per-consumer Delivery fan-out.
    pub fn append_batch(
        &mut self,
        records: impl IntoIterator<Item = AuditRecord>,
    ) -> CssResult<u64> {
        let records: Vec<AuditRecord> = records.into_iter().collect();
        let first_seq = self.alloc_seq(records.len() as u64);
        let mut assigned = Vec::new();
        let mut payloads = Vec::new();
        for mut record in records {
            record.seq = first_seq + assigned.len() as u64;
            payloads.push(css_xml::to_string(&record.to_xml()).into_bytes());
            assigned.push(record);
        }
        if assigned.is_empty() {
            return Ok(first_seq);
        }
        if let Some(storage) = &mut self.storage {
            let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
            storage.append_batch(&refs)?;
        }
        for (record, payload) in assigned.into_iter().zip(payloads) {
            self.chain.append(payload);
            self.records.push(record);
        }
        Ok(first_seq)
    }

    /// Tear down the log, returning its storage backend (reopen tests,
    /// migrations between shard layouts).
    pub fn into_backend(self) -> Option<B> {
        self.storage.map(RecordLog::into_backend)
    }

    /// Flush persisted records to stable storage.
    pub fn sync(&mut self) -> CssResult<()> {
        if let Some(storage) = &mut self.storage {
            storage.sync()?;
        }
        Ok(())
    }

    /// The chain head covering the whole log — hand this digest to an
    /// external auditor to pin the log's current state.
    pub fn head(&self) -> [u8; 32] {
        self.chain.head()
    }

    /// Re-derive and check every chain link.
    pub fn verify(&self) -> CssResult<()> {
        self.chain
            .verify()
            .map_err(|e| CssError::Crypto(e.to_string()))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Run an inquiry over the log.
    pub fn query(&self, q: &AuditQuery) -> Vec<&AuditRecord> {
        self.records.iter().filter(|r| q.matches(r)).collect()
    }

    /// Aggregate report over the records matching `q`.
    pub fn report(&self, q: &AuditQuery) -> AuditReport {
        AuditReport::from_records(self.query(q).into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AuditAction;
    use css_storage::{FileBackend, MemBackend};
    use css_types::{ActorId, GlobalEventId, Timestamp};

    fn rec(i: u64) -> AuditRecord {
        AuditRecord::new(Timestamp(i * 10), ActorId(i % 3 + 1), AuditAction::Publish)
            .event(GlobalEventId(i))
    }

    #[test]
    fn append_assigns_sequence() {
        let mut log = AuditLog::<MemBackend>::in_memory();
        assert_eq!(log.append(rec(0)).unwrap(), 0);
        assert_eq!(log.append(rec(1)).unwrap(), 1);
        assert_eq!(log.records()[1].seq, 1);
        log.verify().unwrap();
    }

    #[test]
    fn head_changes_with_each_append() {
        let mut log = AuditLog::<MemBackend>::in_memory();
        let h0 = log.head();
        log.append(rec(0)).unwrap();
        let h1 = log.head();
        log.append(rec(1)).unwrap();
        assert_ne!(h0, h1);
        assert_ne!(h1, log.head());
    }

    #[test]
    fn append_batch_matches_sequential_appends() {
        let mut sequential = AuditLog::open(MemBackend::new()).unwrap();
        for i in 0..6 {
            sequential.append(rec(i)).unwrap();
        }
        let mut batched = AuditLog::open(MemBackend::new()).unwrap();
        batched.append(rec(0)).unwrap();
        let first = batched.append_batch((1..6).map(rec)).unwrap();
        assert_eq!(first, 1);
        assert_eq!(batched.len(), 6);
        assert_eq!(batched.head(), sequential.head());
        batched.verify().unwrap();
        // Reopen replays batched frames exactly like sequential ones.
        let backend = batched.storage.unwrap().into_backend();
        let reopened = AuditLog::open(backend).unwrap();
        assert_eq!(reopened.len(), 6);
        assert_eq!(reopened.head(), sequential.head());
        assert_eq!(reopened.records()[4].seq, 4);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut log = AuditLog::<MemBackend>::in_memory();
        log.append(rec(0)).unwrap();
        let head = log.head();
        assert_eq!(log.append_batch(std::iter::empty()).unwrap(), 1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.head(), head);
    }

    #[test]
    fn persisted_log_reloads_and_verifies() {
        let mut log = AuditLog::open(MemBackend::new()).unwrap();
        for i in 0..10 {
            log.append(rec(i)).unwrap();
        }
        let head = log.head();
        // Extract the backend and reopen.
        let backend = log.storage.unwrap().into_backend();
        let reopened = AuditLog::open(backend).unwrap();
        assert_eq!(reopened.len(), 10);
        assert_eq!(reopened.head(), head);
    }

    #[test]
    fn tampered_persistence_detected_at_open() {
        let dir = std::env::temp_dir().join(format!("css-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = AuditLog::open(FileBackend::open(&path).unwrap()).unwrap();
            for i in 0..5 {
                log.append(rec(i)).unwrap();
            }
            log.sync().unwrap();
        }
        // Tamper: change an actor id inside the file, keeping the CRC
        // valid is impossible, so recovery or parse will fail; flip a
        // payload byte that is part of the XML text.
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes
            .windows(4)
            .position(|w| w == b"seq=")
            .expect("record text present");
        bytes[pos + 5] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(AuditLog::open(FileBackend::open(&path).unwrap()).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn query_and_report_integration() {
        let mut log = AuditLog::<MemBackend>::in_memory();
        for i in 0..9 {
            log.append(rec(i)).unwrap();
        }
        let q = AuditQuery::new().actor(ActorId(1));
        let hits = log.query(&q);
        assert_eq!(hits.len(), 3);
        let report = log.report(&AuditQuery::new());
        assert_eq!(report.total, 9);
    }
}
