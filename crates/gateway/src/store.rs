//! Durable storage of detail messages at the producer.

use css_event::{DetailMessage, EventSchema};
use css_storage::{KvStore, LogBackend};
use css_types::{CssError, CssResult, SourceEventId};

/// Keyed, durable store of detail messages (XML at rest), indexed by
/// source event id.
pub struct DetailStore<B: LogBackend> {
    store: KvStore<B>,
}

impl<B: LogBackend> DetailStore<B> {
    /// Open the store over a backend, replaying existing messages.
    pub fn open(backend: B) -> CssResult<Self> {
        let (store, _torn) = KvStore::open(backend)?;
        Ok(DetailStore { store })
    }

    /// Persist a detail message. Fails on duplicate source event ids —
    /// details are immutable once notified.
    pub fn persist(&mut self, schema: &EventSchema, message: &DetailMessage) -> CssResult<()> {
        let k = key(message.src_event_id);
        if self.store.contains(&k) {
            return Err(CssError::AlreadyExists(format!(
                "detail message {} already persisted",
                message.src_event_id
            )));
        }
        let xml = css_xml::to_string(&message.to_xml(schema));
        self.store.put(&k, xml.as_bytes())?;
        self.store.sync()
    }

    /// Retrieve a detail message, parsing it with the given schema.
    pub fn load(
        &self,
        schema: &EventSchema,
        id: SourceEventId,
    ) -> CssResult<Option<DetailMessage>> {
        match self.store.get(&key(id))? {
            None => Ok(None),
            Some(bytes) => {
                let text = String::from_utf8(bytes).map_err(|e| {
                    CssError::Serialization(format!("detail message not UTF-8: {e}"))
                })?;
                let doc =
                    css_xml::parse(&text).map_err(|e| CssError::Serialization(e.to_string()))?;
                Ok(Some(DetailMessage::from_xml(schema, &doc)?))
            }
        }
    }

    /// The raw event-type string stored for an id, read without a schema
    /// (used to select the right schema before a full parse).
    pub fn stored_type(&self, id: SourceEventId) -> CssResult<Option<String>> {
        match self.store.get(&key(id))? {
            None => Ok(None),
            Some(bytes) => {
                let text = String::from_utf8(bytes).map_err(|e| {
                    CssError::Serialization(format!("detail message not UTF-8: {e}"))
                })?;
                let doc =
                    css_xml::parse(&text).map_err(|e| CssError::Serialization(e.to_string()))?;
                let ty = doc
                    .elements()
                    .next()
                    .and_then(|inner| inner.attribute("type"))
                    .map(str::to_string);
                Ok(ty)
            }
        }
    }

    /// Number of persisted messages.
    /// Highest source event id persisted, if any. Used after a restart
    /// to resume id generation past the recovered records.
    pub fn max_src_id(&self) -> Option<SourceEventId> {
        self.store
            .keys()
            .filter_map(|k| {
                std::str::from_utf8(k)
                    .ok()?
                    .strip_prefix("detail:")?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .map(SourceEventId)
    }

    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Bytes occupied on the backing log.
    pub fn log_bytes(&self) -> u64 {
        self.store.log_bytes()
    }
}

fn key(id: SourceEventId) -> Vec<u8> {
    format!("detail:{}", id.value()).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_event::{EventDetails, FieldDef, FieldKind, FieldValue};
    use css_storage::{FileBackend, MemBackend};
    use css_types::{ActorId, EventTypeId};

    fn schema() -> EventSchema {
        EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", ActorId(1))
            .field(FieldDef::required("PatientId", FieldKind::Integer))
            .field(FieldDef::optional("Result", FieldKind::Text).sensitive())
    }

    fn message(src: u64) -> DetailMessage {
        DetailMessage {
            src_event_id: SourceEventId(src),
            producer: ActorId(1),
            details: EventDetails::new(EventTypeId::v1("blood-test"))
                .with("PatientId", FieldValue::Integer(42))
                .with("Result", FieldValue::Text("negative".into())),
        }
    }

    #[test]
    fn persist_load_roundtrip() {
        let mut store = DetailStore::open(MemBackend::new()).unwrap();
        store.persist(&schema(), &message(1)).unwrap();
        let loaded = store.load(&schema(), SourceEventId(1)).unwrap().unwrap();
        assert_eq!(loaded, message(1));
        assert!(store.load(&schema(), SourceEventId(2)).unwrap().is_none());
    }

    #[test]
    fn duplicate_persist_rejected() {
        let mut store = DetailStore::open(MemBackend::new()).unwrap();
        store.persist(&schema(), &message(1)).unwrap();
        assert!(matches!(
            store.persist(&schema(), &message(1)),
            Err(CssError::AlreadyExists(_))
        ));
    }

    #[test]
    fn stored_type_readable_without_schema() {
        let mut store = DetailStore::open(MemBackend::new()).unwrap();
        store.persist(&schema(), &message(1)).unwrap();
        assert_eq!(
            store.stored_type(SourceEventId(1)).unwrap().unwrap(),
            "blood-test@v1"
        );
        assert!(store.stored_type(SourceEventId(9)).unwrap().is_none());
    }

    #[test]
    fn survives_reopen() {
        let dir = std::env::temp_dir().join(format!("css-gw-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("details.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = DetailStore::open(FileBackend::open(&path).unwrap()).unwrap();
            for i in 0..20 {
                store.persist(&schema(), &message(i)).unwrap();
            }
        }
        let store = DetailStore::open(FileBackend::open(&path).unwrap()).unwrap();
        assert_eq!(store.len(), 20);
        assert_eq!(
            store.load(&schema(), SourceEventId(13)).unwrap().unwrap(),
            message(13)
        );
        let _ = std::fs::remove_file(&path);
    }
}
