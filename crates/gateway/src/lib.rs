//! The Local Cooperation Gateway.
//!
//! "These functionalities are encapsulated in the *local cooperation
//! gateway* provided as part of the CSS platform to further facilitate
//! the connection with the existing source systems. This module persists
//! each detail message notified so that they can be retrieved even when
//! the source systems are un-accessible." (Section 4)
//!
//! The gateway is deployed **at the producer** and is the only component
//! that touches full event details during enforcement. It implements
//! Algorithm 2 (`getResponse(src_eID, F)`): retrieve the details from
//! its durable store, then blank every field outside the allowed set
//! `F` before anything crosses the boundary — so "it is never the case
//! that data not accessible by a certain data consumer leaves the data
//! producer".

pub mod gateway;
pub mod store;

pub use gateway::LocalCooperationGateway;
pub use store::DetailStore;
