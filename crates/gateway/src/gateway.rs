//! The gateway proper: schema registry + detail store + Algorithm 2.

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use css_event::{DetailMessage, EventDetails, EventSchema};
use css_storage::LogBackend;
use css_telemetry::{Counter, Histogram, MetricsRegistry};
use css_trace::{SpanStatus, TraceContext};
use css_types::{ActorId, CssError, CssResult, EventTypeId, SourceEventId};

use crate::store::DetailStore;

/// Cached telemetry handles for the gateway's Algorithm 2 path.
struct GatewayInstruments {
    /// `gateway.persist` — schema validation + store append.
    persist_latency: Histogram,
    /// `gateway.retrieve` — repository lookup + record load.
    retrieve_latency: Histogram,
    /// `gateway.filter` — field filtering into the privacy-aware view.
    filter_latency: Histogram,
    /// `gateway.persisted` — detail messages stored.
    persisted: Counter,
    /// `gateway.responses` — successful `getResponse` answers.
    responses: Counter,
}

impl GatewayInstruments {
    fn resolve(registry: &MetricsRegistry) -> Self {
        GatewayInstruments {
            persist_latency: registry.histogram("gateway.persist"),
            retrieve_latency: registry.histogram("gateway.retrieve"),
            filter_latency: registry.histogram("gateway.filter"),
            persisted: registry.counter("gateway.persisted"),
            responses: registry.counter("gateway.responses"),
        }
    }
}

/// The producer-side gateway.
///
/// Holds the producer's declared schemas, persists every detail message
/// at notification time, and answers the data controller's
/// `getResponse(src_eID, F)` calls with field-filtered details —
/// independently of whether the source system behind it is reachable.
pub struct LocalCooperationGateway<B: LogBackend> {
    producer: ActorId,
    schemas: HashMap<EventTypeId, EventSchema>,
    store: DetailStore<B>,
    /// Whether the legacy source system behind the gateway is reachable.
    /// The gateway itself keeps answering when this is `false`; the flag
    /// exists so simulations can show the contrast with direct queries.
    source_online: bool,
    telemetry: Option<GatewayInstruments>,
}

impl<B: LogBackend> LocalCooperationGateway<B> {
    /// Open a gateway for `producer` over a storage backend.
    pub fn open(producer: ActorId, backend: B) -> CssResult<Self> {
        Ok(LocalCooperationGateway {
            producer,
            schemas: HashMap::new(),
            store: DetailStore::open(backend)?,
            source_online: true,
            telemetry: None,
        })
    }

    /// Record persist/retrieve/filter latencies and throughput counters
    /// into `registry` under `gateway.*` names. Several gateways may
    /// share one registry; their metrics aggregate.
    pub fn instrument(&mut self, registry: &MetricsRegistry) {
        self.telemetry = Some(GatewayInstruments::resolve(registry));
    }

    /// The producer this gateway serves.
    pub fn producer(&self) -> ActorId {
        self.producer
    }

    /// Register (or replace) a schema the producer declared.
    pub fn register_schema(&mut self, schema: EventSchema) -> CssResult<()> {
        if schema.producer != self.producer {
            return Err(CssError::Invalid(format!(
                "schema {} belongs to {}, not to this gateway's producer {}",
                schema.id, schema.producer, self.producer
            )));
        }
        self.schemas.insert(schema.id.clone(), schema);
        Ok(())
    }

    /// Schema for an event type, if registered.
    pub fn schema(&self, ty: &EventTypeId) -> Option<&EventSchema> {
        self.schemas.get(ty)
    }

    /// Persist a detail message at notification time. Validates the
    /// payload against the registered schema first.
    pub fn persist(&mut self, message: &DetailMessage) -> CssResult<()> {
        if message.producer != self.producer {
            return Err(CssError::Invalid(format!(
                "detail message from {} routed to gateway of {}",
                message.producer, self.producer
            )));
        }
        let schema = self
            .schemas
            .get(&message.details.event_type)
            .ok_or_else(|| {
                CssError::NotFound(format!(
                    "no schema registered for {}",
                    message.details.event_type
                ))
            })?;
        schema.validate(&message.details)?;
        let started = Instant::now();
        let out = self.store.persist(schema, message);
        if let Some(t) = &self.telemetry {
            t.persist_latency.record_duration(started.elapsed());
            if out.is_ok() {
                t.persisted.inc();
            }
        }
        out
    }

    /// Algorithm 2 — `getResponse(src_eID, F)`:
    ///
    /// 1. retrieve the Event Details from the internal events repository;
    /// 2. parse them to filter out the values of the fields not allowed,
    ///    producing the privacy-aware event to be sent back.
    ///
    /// The returned details are guaranteed privacy-safe for `F`
    /// (Definition 4); this postcondition is asserted.
    ///
    /// When `ctx` is given the call continues the caller's trace with
    /// one child span per Algorithm 2 stage: `gateway.retrieve`
    /// (repository lookup), `gateway.parse` (type/schema resolution +
    /// record load), `gateway.filter` (field filtering + privacy
    /// postcondition).
    pub fn get_response(
        &self,
        src_event_id: SourceEventId,
        allowed: &BTreeSet<String>,
        ctx: Option<&TraceContext>,
    ) -> CssResult<EventDetails> {
        let started = Instant::now();
        let mut retrieve = TraceContext::child_opt(ctx, "gateway.retrieve");
        let ty_text = match self.store.stored_type(src_event_id)? {
            Some(t) => t,
            None => {
                retrieve.set_status(SpanStatus::Error);
                return Err(CssError::NotFound(format!("no details for {src_event_id}")));
            }
        };
        retrieve.finish();
        let mut parse = TraceContext::child_opt(ctx, "gateway.parse");
        let parsed: Result<&EventSchema, CssError> = ty_text
            .parse::<EventTypeId>()
            .map_err(|e| CssError::Serialization(format!("stored type malformed: {e}")))
            .and_then(|ty| {
                self.schemas
                    .get(&ty)
                    .ok_or_else(|| CssError::NotFound(format!("no schema registered for {ty}")))
            });
        let schema = match parsed {
            Ok(s) => s,
            Err(e) => {
                parse.set_status(SpanStatus::Error);
                return Err(e);
            }
        };
        let message = match self.store.load(schema, src_event_id)? {
            Some(m) => m,
            None => {
                parse.set_status(SpanStatus::Error);
                return Err(CssError::NotFound(format!("no details for {src_event_id}")));
            }
        };
        parse.finish();
        let retrieved = Instant::now();
        let filter = TraceContext::child_opt(ctx, "gateway.filter");
        let filtered = message.details.filtered_to(allowed);
        assert!(
            filtered.is_privacy_safe(allowed),
            "gateway postcondition: response must be privacy safe"
        );
        filter.finish();
        if let Some(t) = &self.telemetry {
            t.retrieve_latency
                .record_duration(retrieved.duration_since(started));
            t.filter_latency.record_duration(retrieved.elapsed());
            t.responses.inc();
        }
        Ok(filtered)
    }

    /// [`Self::get_response`] under its pre-consolidation name.
    #[deprecated(note = "use get_response with an optional TraceContext")]
    pub fn get_response_traced(
        &self,
        src_event_id: SourceEventId,
        allowed: &BTreeSet<String>,
        ctx: Option<&TraceContext>,
    ) -> CssResult<EventDetails> {
        self.get_response(src_event_id, allowed, ctx)
    }

    /// Simulate the legacy source system going offline. Gateway answers
    /// are unaffected.
    pub fn set_source_online(&mut self, online: bool) {
        self.source_online = online;
    }

    /// A *direct* query to the legacy source system, bypassing the
    /// gateway store — fails when the source is offline. Exists to
    /// demonstrate (tests, experiment E12) why the gateway's local
    /// persistence is necessary.
    pub fn query_source_directly(&self, src_event_id: SourceEventId) -> CssResult<EventDetails> {
        if !self.source_online {
            return Err(CssError::Storage("source system unreachable".into()));
        }
        // When online, the source holds the same data the gateway does.
        // css-lint: allow(audit-before-release): E12 demo of the legacy source path; real releases audit at the PEP
        self.get_response(src_event_id, &self.all_fields_of(src_event_id)?, None)
    }

    fn all_fields_of(&self, src_event_id: SourceEventId) -> CssResult<BTreeSet<String>> {
        let ty_text = self
            .store
            .stored_type(src_event_id)?
            .ok_or_else(|| CssError::NotFound(format!("no details for {src_event_id}")))?;
        let ty: EventTypeId = ty_text
            .parse()
            .map_err(|e| CssError::Serialization(format!("stored type malformed: {e}")))?;
        let schema = self
            .schemas
            .get(&ty)
            .ok_or_else(|| CssError::NotFound(format!("no schema registered for {ty}")))?;
        Ok(schema.field_names().map(str::to_string).collect())
    }

    /// Number of persisted detail messages.
    /// Highest source event id persisted, if any (restart support).
    pub fn max_src_id(&self) -> Option<SourceEventId> {
        self.store.max_src_id()
    }

    pub fn stored_count(&self) -> usize {
        self.store.len()
    }

    /// Bytes occupied by the detail store's log.
    pub fn store_bytes(&self) -> u64 {
        self.store.log_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_event::{FieldDef, FieldKind, FieldValue};
    use css_storage::{FileBackend, MemBackend};

    fn schema() -> EventSchema {
        EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", ActorId(1))
            .field(FieldDef::required("PatientId", FieldKind::Integer))
            .field(FieldDef::required("Result", FieldKind::Text).sensitive())
            .field(FieldDef::optional("Notes", FieldKind::Text).sensitive())
    }

    fn gateway() -> LocalCooperationGateway<MemBackend> {
        let mut gw = LocalCooperationGateway::open(ActorId(1), MemBackend::new()).unwrap();
        gw.register_schema(schema()).unwrap();
        gw
    }

    fn message(src: u64) -> DetailMessage {
        DetailMessage {
            src_event_id: SourceEventId(src),
            producer: ActorId(1),
            details: css_event::EventDetails::new(EventTypeId::v1("blood-test"))
                .with("PatientId", FieldValue::Integer(42))
                .with("Result", FieldValue::Text("negative".into()))
                .with("Notes", FieldValue::Text("fasting sample".into())),
        }
    }

    fn allowed(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn persist_then_get_response_filters() {
        let mut gw = gateway();
        gw.persist(&message(1)).unwrap();
        let resp = gw
            .get_response(SourceEventId(1), &allowed(&["PatientId"]), None)
            .unwrap();
        assert_eq!(resp.get("PatientId").unwrap(), &FieldValue::Integer(42));
        assert_eq!(resp.get("Result").unwrap(), &FieldValue::Empty);
        assert_eq!(resp.get("Notes").unwrap(), &FieldValue::Empty);
    }

    #[test]
    fn response_is_privacy_safe_even_with_foreign_allowed_names() {
        let mut gw = gateway();
        gw.persist(&message(1)).unwrap();
        // Allowed set naming fields that don't exist: nothing leaks.
        let resp = gw
            .get_response(SourceEventId(1), &allowed(&["DoesNotExist"]), None)
            .unwrap();
        assert_eq!(resp.exposed_bytes(), 0);
    }

    #[test]
    fn unknown_event_not_found() {
        let gw = gateway();
        assert!(matches!(
            gw.get_response(SourceEventId(404), &allowed(&["PatientId"]), None),
            Err(CssError::NotFound(_))
        ));
    }

    #[test]
    fn persist_validates_schema() {
        let mut gw = gateway();
        let mut bad = message(1);
        bad.details.remove("Result"); // required field missing
        assert!(matches!(gw.persist(&bad), Err(CssError::Invalid(_))));
    }

    #[test]
    fn persist_rejects_foreign_producer() {
        let mut gw = gateway();
        let mut foreign = message(1);
        foreign.producer = ActorId(2);
        assert!(gw.persist(&foreign).is_err());
    }

    #[test]
    fn register_schema_rejects_foreign_producer() {
        let mut gw = LocalCooperationGateway::open(ActorId(2), MemBackend::new()).unwrap();
        assert!(gw.register_schema(schema()).is_err());
    }

    #[test]
    fn persist_requires_registered_schema() {
        let mut gw = LocalCooperationGateway::open(ActorId(1), MemBackend::new()).unwrap();
        assert!(matches!(
            gw.persist(&message(1)),
            Err(CssError::NotFound(_))
        ));
    }

    #[test]
    fn gateway_answers_while_source_offline() {
        let mut gw = gateway();
        gw.persist(&message(1)).unwrap();
        gw.set_source_online(false);
        // Direct source query fails...
        assert!(gw.query_source_directly(SourceEventId(1)).is_err());
        // ...but the gateway still serves the details.
        let resp = gw
            .get_response(SourceEventId(1), &allowed(&["PatientId", "Result"]), None)
            .unwrap();
        assert_eq!(
            resp.get("Result").unwrap(),
            &FieldValue::Text("negative".into())
        );
    }

    #[test]
    fn details_survive_gateway_restart() {
        let dir = std::env::temp_dir().join(format!("css-gw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gw.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut gw =
                LocalCooperationGateway::open(ActorId(1), FileBackend::open(&path).unwrap())
                    .unwrap();
            gw.register_schema(schema()).unwrap();
            gw.persist(&message(7)).unwrap();
        }
        let mut gw =
            LocalCooperationGateway::open(ActorId(1), FileBackend::open(&path).unwrap()).unwrap();
        gw.register_schema(schema()).unwrap();
        let resp = gw
            .get_response(SourceEventId(7), &allowed(&["PatientId"]), None)
            .unwrap();
        assert_eq!(resp.get("PatientId").unwrap(), &FieldValue::Integer(42));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn instrumented_gateway_records_algorithm2_metrics() {
        let registry = css_telemetry::MetricsRegistry::new();
        let mut gw = gateway();
        gw.instrument(&registry);
        gw.persist(&message(1)).unwrap();
        gw.persist(&message(2)).unwrap();
        gw.get_response(SourceEventId(1), &allowed(&["PatientId"]), None)
            .unwrap();
        // A failed lookup is not counted as a response.
        assert!(gw
            .get_response(SourceEventId(404), &allowed(&["PatientId"]), None)
            .is_err());

        let snap = registry.snapshot();
        assert_eq!(snap.counter("gateway.persisted"), 2);
        assert_eq!(snap.counter("gateway.responses"), 1);
        assert_eq!(snap.histogram("gateway.persist").unwrap().count, 2);
        assert_eq!(snap.histogram("gateway.retrieve").unwrap().count, 1);
        assert_eq!(snap.histogram("gateway.filter").unwrap().count, 1);
    }

    #[test]
    fn traced_response_emits_algorithm2_stage_spans() {
        use css_trace::Tracer;
        use css_types::Timestamp;

        let mut gw = gateway();
        gw.persist(&message(1)).unwrap();
        let tracer = Tracer::new(64);
        let root = tracer.root("detail_request", Timestamp(5));
        let ctx = root.context();
        gw.get_response(SourceEventId(1), &allowed(&["PatientId"]), Some(&ctx))
            .unwrap();
        root.finish();

        let spans = tracer.finished_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        for expected in ["gateway.retrieve", "gateway.parse", "gateway.filter"] {
            assert!(names.contains(&expected), "{names:?}");
        }
        assert!(spans.iter().all(|s| Some(s.trace) == ctx.trace_id()));
    }

    #[test]
    fn traced_miss_marks_retrieve_span_error() {
        use css_trace::{SpanStatus, Tracer};
        use css_types::Timestamp;

        let gw = gateway();
        let tracer = Tracer::new(64);
        let root = tracer.root("detail_request", Timestamp(5));
        let ctx = root.context();
        assert!(gw
            .get_response(SourceEventId(404), &allowed(&["PatientId"]), Some(&ctx))
            .is_err());
        root.finish();

        let spans = tracer.finished_spans();
        let retrieve = spans.iter().find(|s| s.name == "gateway.retrieve").unwrap();
        assert_eq!(retrieve.status, SpanStatus::Error);
        assert!(!spans.iter().any(|s| s.name == "gateway.parse"));
    }

    #[test]
    fn multiple_event_types_coexist() {
        let mut gw = gateway();
        let discharge = EventSchema::new(
            EventTypeId::v1("hospital-discharge"),
            "Discharge",
            ActorId(1),
        )
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::optional("Ward", FieldKind::Text));
        gw.register_schema(discharge).unwrap();
        gw.persist(&message(1)).unwrap();
        let d2 = DetailMessage {
            src_event_id: SourceEventId(2),
            producer: ActorId(1),
            details: css_event::EventDetails::new(EventTypeId::v1("hospital-discharge"))
                .with("PatientId", FieldValue::Integer(7))
                .with("Ward", FieldValue::Text("geriatrics".into())),
        };
        gw.persist(&d2).unwrap();
        assert_eq!(gw.stored_count(), 2);
        let resp = gw
            .get_response(SourceEventId(2), &allowed(&["Ward"]), None)
            .unwrap();
        assert_eq!(
            resp.get("Ward").unwrap(),
            &FieldValue::Text("geriatrics".into())
        );
        assert_eq!(resp.get("PatientId").unwrap(), &FieldValue::Empty);
    }
}
