//! Classification schemes: taxonomy trees objects are filed under.
//!
//! The CSS catalog classifies event classes by care domain (e.g.
//! `health/laboratory`, `social/home-care`) so consumers can discover
//! the classes relevant to their mission before subscribing.

use std::collections::BTreeSet;

/// A named taxonomy. Nodes are identified by `/`-separated paths from
/// the scheme root, e.g. `"health/laboratory"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationScheme {
    /// Scheme identifier (e.g. `"care-domain"`).
    pub id: String,
    /// Human-readable name.
    pub name: String,
    nodes: BTreeSet<String>,
}

impl ClassificationScheme {
    /// An empty scheme.
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        ClassificationScheme {
            id: id.into(),
            name: name.into(),
            nodes: BTreeSet::new(),
        }
    }

    /// Add a node path. Intermediate nodes are created implicitly, so
    /// adding `"health/laboratory"` also creates `"health"`.
    pub fn add_node(&mut self, path: &str) {
        let mut prefix = String::new();
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(seg);
            self.nodes.insert(prefix.clone());
        }
    }

    /// Builder form of [`add_node`](Self::add_node).
    pub fn with_node(mut self, path: &str) -> Self {
        self.add_node(path);
        self
    }

    /// Whether the exact node exists.
    pub fn has_node(&self, path: &str) -> bool {
        self.nodes.contains(path)
    }

    /// Whether `node` equals `ancestor` or sits below it.
    pub fn is_under(node: &str, ancestor: &str) -> bool {
        node == ancestor
            || node
                .strip_prefix(ancestor)
                .is_some_and(|rest| rest.starts_with('/'))
    }

    /// All node paths, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// Direct children of a node (or of the root for `""`).
    pub fn children(&self, path: &str) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|n| {
                let rel = if path.is_empty() {
                    Some(n.as_str())
                } else {
                    n.strip_prefix(path).and_then(|r| r.strip_prefix('/'))
                };
                rel.is_some_and(|r| !r.is_empty() && !r.contains('/'))
            })
            .map(String::as_str)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> ClassificationScheme {
        ClassificationScheme::new("care-domain", "Care Domain")
            .with_node("health/laboratory")
            .with_node("health/radiology")
            .with_node("social/home-care")
            .with_node("social/telecare")
    }

    #[test]
    fn intermediate_nodes_created() {
        let s = scheme();
        assert!(s.has_node("health"));
        assert!(s.has_node("health/laboratory"));
        assert!(!s.has_node("health/lab"));
    }

    #[test]
    fn is_under_semantics() {
        assert!(ClassificationScheme::is_under(
            "health/laboratory",
            "health"
        ));
        assert!(ClassificationScheme::is_under("health", "health"));
        assert!(!ClassificationScheme::is_under("healthcare", "health"));
        assert!(!ClassificationScheme::is_under(
            "health",
            "health/laboratory"
        ));
    }

    #[test]
    fn children_listing() {
        let s = scheme();
        assert_eq!(s.children(""), vec!["health", "social"]);
        assert_eq!(
            s.children("health"),
            vec!["health/laboratory", "health/radiology"]
        );
        assert!(s.children("health/laboratory").is_empty());
    }

    #[test]
    fn empty_segments_ignored() {
        let mut s = ClassificationScheme::new("x", "X");
        s.add_node("a//b/");
        assert!(s.has_node("a/b"));
    }
}
