//! The event catalog.
//!
//! "The data producer declares the ability to generate a certain type of
//! event (the Event Details). The structure of the event is specified by
//! an XSD that is 'installed' in an event catalog module. The event
//! catalog, as the structure of its events, is visible to any candidate
//! data consumer..." (Section 5).
//!
//! The catalog is a view over the [`Registry`]: every declared class of
//! event details becomes an approved `EventSchema` registry object whose
//! repository content is the schema's XML document, classified under the
//! care-domain taxonomy.

use css_event::EventSchema;
use css_types::{ActorId, CssError, CssResult, EventTypeId};

use crate::classification::ClassificationScheme;
use crate::object::{ObjectStatus, RegistryObject};
use crate::query::Filter;
use crate::registry::Registry;

/// The catalog of event classes, backed by the registry.
#[derive(Debug, Default)]
pub struct EventCatalog {
    registry: Registry,
}

/// Scheme id used to classify event classes by care domain.
pub const CARE_DOMAIN_SCHEME: &str = "care-domain";

impl EventCatalog {
    /// A catalog with the default care-domain taxonomy installed.
    pub fn new() -> Self {
        let mut registry = Registry::new();
        registry.install_scheme(
            ClassificationScheme::new(CARE_DOMAIN_SCHEME, "Care Domain")
                .with_node("health/laboratory")
                .with_node("health/radiology")
                .with_node("health/hospital")
                .with_node("social/home-care")
                .with_node("social/telecare")
                .with_node("social/welfare"),
        );
        EventCatalog { registry }
    }

    fn object_id(event_type: &EventTypeId) -> String {
        format!("urn:css:event:{event_type}")
    }

    /// Declare a class of event details, optionally classifying it under
    /// a care-domain node.
    pub fn declare(&mut self, schema: &EventSchema, domain: Option<&str>) -> CssResult<()> {
        let id = Self::object_id(&schema.id);
        let xml = css_xml::to_string(&schema.to_xml());
        let object = RegistryObject::new(id.clone(), "EventSchema", schema.display_name.clone())
            .slot("producer", schema.producer.to_string())
            .slot("code", schema.id.code())
            .slot("version", schema.id.version().to_string())
            .with_content(xml)
            .with_status(ObjectStatus::Approved);
        self.registry.submit(object)?;
        if let Some(node) = domain {
            self.registry.classify(&id, CARE_DOMAIN_SCHEME, node)?;
        }
        // Link versions: vN supersedes vN-1 when present.
        if schema.id.version() > 1 {
            let prev = EventTypeId::new(schema.id.code(), schema.id.version() - 1);
            let prev_id = Self::object_id(&prev);
            if self.registry.get(&prev_id).is_some() {
                self.registry
                    .associate(crate::association::Association::new(
                        id,
                        prev_id.clone(),
                        "supersedes",
                    ))?;
                self.registry
                    .set_status(&prev_id, ObjectStatus::Deprecated)?;
            }
        }
        Ok(())
    }

    /// Fetch the schema of a declared class.
    pub fn schema(&self, event_type: &EventTypeId) -> CssResult<EventSchema> {
        let id = Self::object_id(event_type);
        let object = self
            .registry
            .get(&id)
            .ok_or_else(|| CssError::NotFound(format!("event class {event_type} not declared")))?;
        let content = object
            .content
            .as_deref()
            .ok_or_else(|| CssError::Storage(format!("catalog entry {id} has no content")))?;
        let doc = css_xml::parse(content).map_err(|e| CssError::Serialization(e.to_string()))?;
        EventSchema::from_xml(&doc)
    }

    /// Whether the class is declared.
    pub fn contains(&self, event_type: &EventTypeId) -> bool {
        self.registry.get(&Self::object_id(event_type)).is_some()
    }

    /// Every class declared by a producer.
    pub fn by_producer(&self, producer: ActorId) -> Vec<EventTypeId> {
        self.types_matching(&Filter::SlotEq("producer".into(), producer.to_string()))
    }

    /// Every class classified under a care-domain node.
    pub fn by_domain(&self, node: &str) -> Vec<EventTypeId> {
        self.types_matching(&Filter::ClassifiedUnder {
            scheme: CARE_DOMAIN_SCHEME.into(),
            node: node.into(),
        })
    }

    /// Every declared class.
    pub fn all_types(&self) -> Vec<EventTypeId> {
        self.types_matching(&Filter::ByType("EventSchema".into()))
    }

    fn types_matching(&self, filter: &Filter) -> Vec<EventTypeId> {
        self.registry
            .query(&Filter::ByType("EventSchema".into()).and(filter.clone()))
            .iter()
            .filter_map(|o| {
                let code = o.get_slot("code")?;
                let version: u32 = o.get_slot("version")?.parse().ok()?;
                Some(EventTypeId::new(code, version))
            })
            .collect()
    }

    /// Direct access to the underlying registry (inquiries, audits).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_event::{FieldDef, FieldKind};

    fn blood_test(version: u32) -> EventSchema {
        EventSchema::new(
            EventTypeId::new("blood-test", version),
            "Blood Test",
            ActorId(1),
        )
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::optional("Result", FieldKind::Text).sensitive())
    }

    #[test]
    fn declare_and_fetch_roundtrip() {
        let mut cat = EventCatalog::new();
        cat.declare(&blood_test(1), Some("health/laboratory"))
            .unwrap();
        assert!(cat.contains(&EventTypeId::v1("blood-test")));
        let schema = cat.schema(&EventTypeId::v1("blood-test")).unwrap();
        assert_eq!(schema, blood_test(1));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let mut cat = EventCatalog::new();
        cat.declare(&blood_test(1), None).unwrap();
        assert!(cat.declare(&blood_test(1), None).is_err());
    }

    #[test]
    fn unknown_type_errors() {
        let cat = EventCatalog::new();
        assert!(cat.schema(&EventTypeId::v1("nope")).is_err());
        assert!(!cat.contains(&EventTypeId::v1("nope")));
    }

    #[test]
    fn producer_listing() {
        let mut cat = EventCatalog::new();
        cat.declare(&blood_test(1), None).unwrap();
        let other = EventSchema::new(EventTypeId::v1("home-care"), "Home Care", ActorId(2));
        cat.declare(&other, Some("social/home-care")).unwrap();
        assert_eq!(
            cat.by_producer(ActorId(1)),
            vec![EventTypeId::v1("blood-test")]
        );
        assert_eq!(
            cat.by_producer(ActorId(2)),
            vec![EventTypeId::v1("home-care")]
        );
        assert!(cat.by_producer(ActorId(3)).is_empty());
        assert_eq!(cat.all_types().len(), 2);
    }

    #[test]
    fn domain_listing() {
        let mut cat = EventCatalog::new();
        cat.declare(&blood_test(1), Some("health/laboratory"))
            .unwrap();
        assert_eq!(cat.by_domain("health").len(), 1);
        assert!(cat.by_domain("social").is_empty());
    }

    #[test]
    fn new_version_supersedes_and_deprecates_old() {
        let mut cat = EventCatalog::new();
        cat.declare(&blood_test(1), None).unwrap();
        cat.declare(&blood_test(2), None).unwrap();
        let old_id = "urn:css:event:blood-test@v1";
        assert_eq!(
            cat.registry().get(old_id).unwrap().status,
            ObjectStatus::Deprecated
        );
        let links: Vec<_> = cat
            .registry()
            .associations_to(old_id)
            .map(|a| a.assoc_type.clone())
            .collect();
        assert_eq!(links, vec!["supersedes"]);
        // Both versions remain fetchable.
        assert!(cat.schema(&EventTypeId::new("blood-test", 1)).is_ok());
        assert!(cat.schema(&EventTypeId::new("blood-test", 2)).is_ok());
    }

    #[test]
    fn declare_with_bad_domain_fails() {
        let mut cat = EventCatalog::new();
        assert!(cat.declare(&blood_test(1), Some("health/surgery")).is_err());
    }
}
