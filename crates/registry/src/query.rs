//! The filter query language (the ebXML "filter query" subset).

use crate::object::{ObjectStatus, RegistryObject};

/// A composable predicate over registry objects.
///
/// Classification predicates are evaluated by the [`crate::Registry`],
/// which holds the object→node mapping; the other predicates are pure
/// functions of the object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// Matches everything.
    All,
    /// Object type equals the given string.
    ByType(String),
    /// Case-insensitive substring match on the name.
    NameLike(String),
    /// Slot `key` exists and equals `value`.
    SlotEq(String, String),
    /// Slot `key` exists (any value).
    HasSlot(String),
    /// Lifecycle status equals.
    ByStatus(ObjectStatus),
    /// Object is classified under the given scheme node (or below it).
    ClassifiedUnder {
        /// Classification scheme id.
        scheme: String,
        /// Node path; descendants match too.
        node: String,
    },
    /// Both sub-filters match.
    And(Box<Filter>, Box<Filter>),
    /// Either sub-filter matches.
    Or(Box<Filter>, Box<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// `self AND other`.
    pub fn and(self, other: Filter) -> Filter {
        Filter::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Filter) -> Filter {
        Filter::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Filter {
        Filter::Not(Box::new(self))
    }

    /// Evaluate the object-local part of the filter.
    /// `classified` answers the `ClassifiedUnder` predicate.
    pub fn matches(
        &self,
        object: &RegistryObject,
        classified: &dyn Fn(&str, &str, &str) -> bool,
    ) -> bool {
        match self {
            Filter::All => true,
            Filter::ByType(t) => &object.object_type == t,
            Filter::NameLike(pat) => object.name.to_lowercase().contains(&pat.to_lowercase()),
            Filter::SlotEq(k, v) => object.get_slot(k) == Some(v.as_str()),
            Filter::HasSlot(k) => object.get_slot(k).is_some(),
            Filter::ByStatus(s) => object.status == *s,
            Filter::ClassifiedUnder { scheme, node } => classified(&object.id, scheme, node),
            Filter::And(a, b) => a.matches(object, classified) && b.matches(object, classified),
            Filter::Or(a, b) => a.matches(object, classified) || b.matches(object, classified),
            Filter::Not(f) => !f.matches(object, classified),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> RegistryObject {
        RegistryObject::new("id-1", "EventSchema", "Blood Test")
            .slot("producer", "act-00000001")
            .with_status(ObjectStatus::Approved)
    }

    fn no_class(_: &str, _: &str, _: &str) -> bool {
        false
    }

    #[test]
    fn leaf_predicates() {
        let o = obj();
        assert!(Filter::All.matches(&o, &no_class));
        assert!(Filter::ByType("EventSchema".into()).matches(&o, &no_class));
        assert!(!Filter::ByType("Other".into()).matches(&o, &no_class));
        assert!(Filter::NameLike("blood".into()).matches(&o, &no_class));
        assert!(!Filter::NameLike("urine".into()).matches(&o, &no_class));
        assert!(Filter::SlotEq("producer".into(), "act-00000001".into()).matches(&o, &no_class));
        assert!(Filter::HasSlot("producer".into()).matches(&o, &no_class));
        assert!(!Filter::HasSlot("version".into()).matches(&o, &no_class));
        assert!(Filter::ByStatus(ObjectStatus::Approved).matches(&o, &no_class));
    }

    #[test]
    fn boolean_composition() {
        let o = obj();
        let f = Filter::ByType("EventSchema".into())
            .and(Filter::NameLike("blood".into()))
            .or(Filter::ByType("Nope".into()));
        assert!(f.matches(&o, &no_class));
        assert!(!f.clone().not().matches(&o, &no_class));
    }

    #[test]
    fn classification_delegates() {
        let o = obj();
        let f = Filter::ClassifiedUnder {
            scheme: "care-domain".into(),
            node: "health".into(),
        };
        let yes = |id: &str, scheme: &str, node: &str| {
            id == "id-1" && scheme == "care-domain" && node == "health"
        };
        assert!(f.matches(&o, &yes));
        assert!(!f.matches(&o, &no_class));
    }
}
