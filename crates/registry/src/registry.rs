//! The registry itself: object store, classifications, associations,
//! queries.

use std::collections::{BTreeSet, HashMap};

use css_types::{CssError, CssResult};

use crate::association::Association;
use crate::classification::ClassificationScheme;
use crate::object::{ObjectStatus, RegistryObject};
use crate::query::Filter;

/// In-memory ebXML-style registry.
#[derive(Debug, Default)]
pub struct Registry {
    objects: HashMap<String, RegistryObject>,
    schemes: HashMap<String, ClassificationScheme>,
    /// object id → set of (scheme id, node path)
    classifications: HashMap<String, BTreeSet<(String, String)>>,
    associations: Vec<Association>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- objects ---------------------------------------------------

    /// Submit a new object. Fails on duplicate id.
    pub fn submit(&mut self, object: RegistryObject) -> CssResult<()> {
        if self.objects.contains_key(&object.id) {
            return Err(CssError::AlreadyExists(format!(
                "registry object {} already submitted",
                object.id
            )));
        }
        self.objects.insert(object.id.clone(), object);
        Ok(())
    }

    /// Replace an existing object (same id).
    pub fn update(&mut self, object: RegistryObject) -> CssResult<()> {
        if !self.objects.contains_key(&object.id) {
            return Err(CssError::NotFound(format!(
                "registry object {} not found",
                object.id
            )));
        }
        self.objects.insert(object.id.clone(), object);
        Ok(())
    }

    /// Fetch an object by id.
    pub fn get(&self, id: &str) -> Option<&RegistryObject> {
        self.objects.get(id)
    }

    /// Change the lifecycle status of an object.
    pub fn set_status(&mut self, id: &str, status: ObjectStatus) -> CssResult<()> {
        match self.objects.get_mut(id) {
            Some(o) => {
                o.status = status;
                Ok(())
            }
            None => Err(CssError::NotFound(format!(
                "registry object {id} not found"
            ))),
        }
    }

    /// Remove an object and its classifications/associations.
    pub fn remove(&mut self, id: &str) -> CssResult<RegistryObject> {
        let obj = self
            .objects
            .remove(id)
            .ok_or_else(|| CssError::NotFound(format!("registry object {id} not found")))?;
        self.classifications.remove(id);
        self.associations
            .retain(|a| a.source != id && a.target != id);
        Ok(obj)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the registry holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    // ---- classification ---------------------------------------------

    /// Install (or replace) a classification scheme.
    pub fn install_scheme(&mut self, scheme: ClassificationScheme) {
        self.schemes.insert(scheme.id.clone(), scheme);
    }

    /// Look up a scheme.
    pub fn scheme(&self, id: &str) -> Option<&ClassificationScheme> {
        self.schemes.get(id)
    }

    /// Classify an object under a scheme node. Both must exist.
    pub fn classify(&mut self, object_id: &str, scheme_id: &str, node: &str) -> CssResult<()> {
        if !self.objects.contains_key(object_id) {
            return Err(CssError::NotFound(format!(
                "registry object {object_id} not found"
            )));
        }
        let scheme = self
            .schemes
            .get(scheme_id)
            .ok_or_else(|| CssError::NotFound(format!("scheme {scheme_id} not found")))?;
        if !scheme.has_node(node) {
            return Err(CssError::NotFound(format!(
                "node {node:?} not in scheme {scheme_id}"
            )));
        }
        self.classifications
            .entry(object_id.to_string())
            .or_default()
            .insert((scheme_id.to_string(), node.to_string()));
        Ok(())
    }

    /// Whether `object_id` is classified at or below `node` in `scheme`.
    pub fn is_classified_under(&self, object_id: &str, scheme_id: &str, node: &str) -> bool {
        self.classifications
            .get(object_id)
            .map(|set| {
                set.iter()
                    .any(|(s, n)| s == scheme_id && ClassificationScheme::is_under(n, node))
            })
            .unwrap_or(false)
    }

    // ---- associations ------------------------------------------------

    /// Associate two existing objects.
    pub fn associate(&mut self, assoc: Association) -> CssResult<()> {
        for id in [&assoc.source, &assoc.target] {
            if !self.objects.contains_key(id) {
                return Err(CssError::NotFound(format!(
                    "registry object {id} not found"
                )));
            }
        }
        self.associations.push(assoc);
        Ok(())
    }

    /// Associations whose source is `id`.
    pub fn associations_from<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a Association> {
        self.associations.iter().filter(move |a| a.source == id)
    }

    /// Associations whose target is `id`.
    pub fn associations_to<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a Association> {
        self.associations.iter().filter(move |a| a.target == id)
    }

    // ---- queries -----------------------------------------------------

    /// All objects matching a filter, sorted by id for determinism.
    pub fn query(&self, filter: &Filter) -> Vec<&RegistryObject> {
        let classified =
            |id: &str, scheme: &str, node: &str| self.is_classified_under(id, scheme, node);
        let mut out: Vec<&RegistryObject> = self
            .objects
            .values()
            .filter(|o| filter.matches(o, &classified))
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Registry {
        let mut reg = Registry::new();
        reg.install_scheme(
            ClassificationScheme::new("care-domain", "Care Domain")
                .with_node("health/laboratory")
                .with_node("social/home-care"),
        );
        reg.submit(
            RegistryObject::new("evt:blood-test@v1", "EventSchema", "Blood Test")
                .slot("producer", "act-00000001"),
        )
        .unwrap();
        reg.submit(
            RegistryObject::new("evt:home-care@v1", "EventSchema", "Home Care Service")
                .slot("producer", "act-00000002"),
        )
        .unwrap();
        reg.classify("evt:blood-test@v1", "care-domain", "health/laboratory")
            .unwrap();
        reg.classify("evt:home-care@v1", "care-domain", "social/home-care")
            .unwrap();
        reg
    }

    #[test]
    fn submit_and_get() {
        let reg = setup();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("evt:blood-test@v1").unwrap().name, "Blood Test");
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn duplicate_submit_rejected() {
        let mut reg = setup();
        let err = reg
            .submit(RegistryObject::new(
                "evt:blood-test@v1",
                "EventSchema",
                "Dup",
            ))
            .unwrap_err();
        assert!(matches!(err, CssError::AlreadyExists(_)));
    }

    #[test]
    fn update_requires_existence() {
        let mut reg = setup();
        assert!(reg
            .update(RegistryObject::new("nope", "EventSchema", "X"))
            .is_err());
        let renamed = RegistryObject::new("evt:blood-test@v1", "EventSchema", "Blood Test v2");
        reg.update(renamed).unwrap();
        assert_eq!(reg.get("evt:blood-test@v1").unwrap().name, "Blood Test v2");
    }

    #[test]
    fn classification_queries() {
        let reg = setup();
        let health = reg.query(&Filter::ClassifiedUnder {
            scheme: "care-domain".into(),
            node: "health".into(),
        });
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].id, "evt:blood-test@v1");
        let all_classified = reg.query(
            &Filter::ClassifiedUnder {
                scheme: "care-domain".into(),
                node: "health".into(),
            }
            .or(Filter::ClassifiedUnder {
                scheme: "care-domain".into(),
                node: "social".into(),
            }),
        );
        assert_eq!(all_classified.len(), 2);
    }

    #[test]
    fn classify_validates_object_scheme_and_node() {
        let mut reg = setup();
        assert!(reg.classify("nope", "care-domain", "health").is_err());
        assert!(reg.classify("evt:blood-test@v1", "nope", "health").is_err());
        assert!(reg
            .classify("evt:blood-test@v1", "care-domain", "health/surgery")
            .is_err());
    }

    #[test]
    fn slot_and_name_queries() {
        let reg = setup();
        let by_producer = reg.query(&Filter::SlotEq("producer".into(), "act-00000002".into()));
        assert_eq!(by_producer.len(), 1);
        let by_name = reg.query(&Filter::NameLike("care".into()));
        assert_eq!(by_name.len(), 1);
        assert_eq!(reg.query(&Filter::All).len(), 2);
    }

    #[test]
    fn associations_lifecycle() {
        let mut reg = setup();
        reg.associate(Association::new(
            "evt:home-care@v1",
            "evt:blood-test@v1",
            "relates-to",
        ))
        .unwrap();
        assert_eq!(reg.associations_from("evt:home-care@v1").count(), 1);
        assert_eq!(reg.associations_to("evt:blood-test@v1").count(), 1);
        assert!(reg
            .associate(Association::new("missing", "evt:blood-test@v1", "x"))
            .is_err());
        // Removing an endpoint removes the association.
        reg.remove("evt:blood-test@v1").unwrap();
        assert_eq!(reg.associations_from("evt:home-care@v1").count(), 0);
    }

    #[test]
    fn remove_cleans_classifications() {
        let mut reg = setup();
        reg.remove("evt:blood-test@v1").unwrap();
        assert!(!reg.is_classified_under("evt:blood-test@v1", "care-domain", "health"));
        assert!(reg.remove("evt:blood-test@v1").is_err());
    }

    #[test]
    fn status_transitions() {
        let mut reg = setup();
        reg.set_status("evt:blood-test@v1", ObjectStatus::Approved)
            .unwrap();
        let approved = reg.query(&Filter::ByStatus(ObjectStatus::Approved));
        assert_eq!(approved.len(), 1);
        assert!(reg.set_status("missing", ObjectStatus::Approved).is_err());
    }
}
