//! Registry objects: the unit of metadata the registry manages.

use std::collections::BTreeMap;
use std::fmt;

use css_types::{CssError, CssResult};
use css_xml::Element;

/// Lifecycle status of a registry object (ebXML registry semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectStatus {
    /// Submitted but not yet approved for general use.
    #[default]
    Submitted,
    /// Approved: visible to all authorized parties.
    Approved,
    /// Deprecated: kept for reference, discouraged for new use.
    Deprecated,
}

impl fmt::Display for ObjectStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectStatus::Submitted => "submitted",
            ObjectStatus::Approved => "approved",
            ObjectStatus::Deprecated => "deprecated",
        };
        f.write_str(s)
    }
}

/// A registry object: identified metadata with named slots and an
/// optional repository content blob (e.g. an event schema document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryObject {
    /// Registry-unique identifier.
    pub id: String,
    /// Object type discriminator (e.g. `"EventSchema"`).
    pub object_type: String,
    /// Human-readable name.
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Extensible metadata slots.
    pub slots: BTreeMap<String, String>,
    /// Lifecycle status.
    pub status: ObjectStatus,
    /// Repository item content (XML text), if any.
    pub content: Option<String>,
}

impl RegistryObject {
    /// A new submitted object with no slots or content.
    pub fn new(
        id: impl Into<String>,
        object_type: impl Into<String>,
        name: impl Into<String>,
    ) -> Self {
        RegistryObject {
            id: id.into(),
            object_type: object_type.into(),
            name: name.into(),
            description: String::new(),
            slots: BTreeMap::new(),
            status: ObjectStatus::Submitted,
            content: None,
        }
    }

    /// Builder: set a slot.
    pub fn slot(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.slots.insert(key.into(), value.into());
        self
    }

    /// Builder: set the description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }

    /// Builder: attach repository content.
    pub fn with_content(mut self, content: impl Into<String>) -> Self {
        self.content = Some(content.into());
        self
    }

    /// Builder: set the status.
    pub fn with_status(mut self, status: ObjectStatus) -> Self {
        self.status = status;
        self
    }

    /// Value of a slot.
    pub fn get_slot(&self, key: &str) -> Option<&str> {
        self.slots.get(key).map(String::as_str)
    }

    /// Serialize to the ebXML-flavoured interchange form (the shape a
    /// `getRegistryObject` response carries).
    pub fn to_xml(&self) -> Element {
        let mut e = Element::new("RegistryObject")
            .attr("id", self.id.clone())
            .attr("objectType", self.object_type.clone())
            .attr("status", self.status.to_string())
            .child(Element::leaf("Name", self.name.clone()));
        if !self.description.is_empty() {
            e = e.child(Element::leaf("Description", self.description.clone()));
        }
        for (k, v) in &self.slots {
            e = e.child(
                Element::new("Slot")
                    .attr("name", k.clone())
                    .child(Element::leaf("Value", v.clone())),
            );
        }
        if let Some(content) = &self.content {
            // Repository content travels as CDATA-safe text.
            e = e.child(Element::leaf("RepositoryItem", content.clone()));
        }
        e
    }

    /// Parse from the interchange form.
    pub fn from_xml(e: &Element) -> CssResult<Self> {
        let bad = |msg: String| CssError::Serialization(format!("RegistryObject: {msg}"));
        if e.name != "RegistryObject" {
            return Err(bad(format!("wrong root <{}>", e.name)));
        }
        let status = match e.attribute("status") {
            Some("submitted") | None => ObjectStatus::Submitted,
            Some("approved") => ObjectStatus::Approved,
            Some("deprecated") => ObjectStatus::Deprecated,
            Some(other) => return Err(bad(format!("unknown status {other:?}"))),
        };
        let mut slots = BTreeMap::new();
        for slot in e.find_all("Slot") {
            let name = slot
                .attribute("name")
                .ok_or_else(|| bad("Slot without name".into()))?;
            let value = slot
                .child_text("Value")
                .ok_or_else(|| bad(format!("Slot {name:?} without Value")))?;
            slots.insert(name.to_string(), value);
        }
        Ok(RegistryObject {
            id: e
                .attribute("id")
                .ok_or_else(|| bad("missing id".into()))?
                .to_string(),
            object_type: e
                .attribute("objectType")
                .ok_or_else(|| bad("missing objectType".into()))?
                .to_string(),
            name: e
                .child_text("Name")
                .ok_or_else(|| bad("missing <Name>".into()))?,
            description: e.child_text("Description").unwrap_or_default(),
            slots,
            status,
            content: e.child_text("RepositoryItem"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_slots() {
        let o = RegistryObject::new("urn:css:event:blood-test", "EventSchema", "Blood Test")
            .slot("producer", "act-00000001")
            .slot("version", "1")
            .describe("laboratory blood test")
            .with_content("<EventSchema/>")
            .with_status(ObjectStatus::Approved);
        assert_eq!(o.get_slot("version"), Some("1"));
        assert_eq!(o.get_slot("missing"), None);
        assert_eq!(o.status, ObjectStatus::Approved);
        assert_eq!(o.content.as_deref(), Some("<EventSchema/>"));
    }

    #[test]
    fn xml_roundtrip() {
        let o = RegistryObject::new("urn:css:event:blood-test@v1", "EventSchema", "Blood Test")
            .slot("producer", "act-00000001")
            .slot("version", "1")
            .describe("laboratory blood test")
            .with_content("<EventSchema id=\"x\"/>")
            .with_status(ObjectStatus::Deprecated);
        let text = css_xml::to_string_pretty(&o.to_xml());
        let back = RegistryObject::from_xml(&css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn xml_roundtrip_minimal() {
        let o = RegistryObject::new("id", "Type", "Name");
        assert_eq!(RegistryObject::from_xml(&o.to_xml()).unwrap(), o);
    }

    #[test]
    fn from_xml_rejects_malformed() {
        assert!(RegistryObject::from_xml(&Element::new("Wrong")).is_err());
        let no_name = Element::new("RegistryObject")
            .attr("id", "x")
            .attr("objectType", "T");
        assert!(RegistryObject::from_xml(&no_name).is_err());
        let bad_status = Element::new("RegistryObject")
            .attr("id", "x")
            .attr("objectType", "T")
            .attr("status", "vaporized")
            .child(Element::leaf("Name", "n"));
        assert!(RegistryObject::from_xml(&bad_status).is_err());
    }

    #[test]
    fn status_display() {
        assert_eq!(ObjectStatus::Submitted.to_string(), "submitted");
        assert_eq!(ObjectStatus::default(), ObjectStatus::Submitted);
    }
}
