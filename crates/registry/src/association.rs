//! Associations: typed links between registry objects.

/// A directed, typed link between two registry objects, e.g.
/// `event:blood-test@v2 --supersedes--> event:blood-test@v1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Association {
    /// Source object id.
    pub source: String,
    /// Target object id.
    pub target: String,
    /// Association type (e.g. `"supersedes"`, `"produced-by"`).
    pub assoc_type: String,
}

impl Association {
    /// Construct an association.
    pub fn new(
        source: impl Into<String>,
        target: impl Into<String>,
        assoc_type: impl Into<String>,
    ) -> Self {
        Association {
            source: source.into(),
            target: target.into(),
            assoc_type: assoc_type.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let a = Association::new("a", "b", "supersedes");
        assert_eq!(a.source, "a");
        assert_eq!(a.assoc_type, "supersedes");
    }
}
