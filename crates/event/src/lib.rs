//! The event model of the CSS platform.
//!
//! "Events are the atomic pieces of information exchanged between data
//! producers and data consumers" (Section 4). An event is carried by two
//! messages at different levels of detail and sensitiveness:
//!
//! - the [`NotificationMessage`] — *who / what / when / where*, no
//!   sensitive payload; it is what travels on the bus and sits in the
//!   events index;
//! - the [`DetailMessage`] — the full payload ([`EventDetails`], a list
//!   of typed fields per Definition 1), kept at the producer and only
//!   released field-by-field through the policy enforcer.
//!
//! [`EventSchema`] plays the role of the XSD "installed" in the event
//! catalog: it declares the fields of a class of event details and
//! validates instances. [`EventDetails::filtered_to`] implements the
//! paper's obligation semantics — "fields that are not authorized are
//! left empty" — and [`EventDetails::is_privacy_safe`] is Definition 4.

pub mod details;
pub mod field;
pub mod message;
pub mod notification;
pub mod schema;

pub use details::EventDetails;
pub use field::{Decimal, FieldDef, FieldKind, FieldValue};
pub use message::{DetailMessage, PrivacyAwareEvent};
pub use notification::NotificationMessage;
pub use schema::EventSchema;
