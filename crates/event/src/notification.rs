//! Notification messages — the *who / what / when / where* of an event.
//!
//! "The notification message contains only the data necessary to
//! identify a person (who), a description of the event occurred (what),
//! the date and time of occurrence (when) and the source of the event
//! (where). It contains the identifying information of a person but not
//! sensitive information." (Section 4)

use css_types::{
    ActorId, CssError, CssResult, EventTypeId, GlobalEventId, PersonId, PersonIdentity, Timestamp,
};
use css_xml::Element;

/// The non-sensitive half of an event, distributed through the bus and
/// stored in the events index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMessage {
    /// Global event identifier minted by the data controller.
    pub global_id: GlobalEventId,
    /// Class of the event (links to the catalog entry / schema).
    pub event_type: EventTypeId,
    /// *Who*: identifying (not sensitive) information of the subject.
    pub person: PersonIdentity,
    /// *What*: a short human-readable description of what occurred.
    pub description: String,
    /// *When*: instant the event occurred at the source.
    pub occurred_at: Timestamp,
    /// *Where*: the producer organization the event originated from.
    pub producer: ActorId,
}

impl NotificationMessage {
    /// Serialize to the XML wire form.
    pub fn to_xml(&self) -> Element {
        Element::new("Notification")
            .attr("eventId", self.global_id.to_string())
            .attr("type", self.event_type.to_string())
            .child(
                Element::new("Who")
                    .attr("personId", self.person.id.to_string())
                    .child(Element::leaf("FiscalCode", self.person.fiscal_code.clone()))
                    .child(Element::leaf("Name", self.person.name.clone()))
                    .child(Element::leaf("Surname", self.person.surname.clone())),
            )
            .child(Element::leaf("What", self.description.clone()))
            .child(Element::leaf("When", self.occurred_at.to_string()))
            .child(Element::new("Where").attr("producer", self.producer.to_string()))
    }

    /// Parse from the XML wire form.
    pub fn from_xml(e: &Element) -> CssResult<Self> {
        let bad = |msg: String| CssError::Serialization(format!("Notification: {msg}"));
        if e.name != "Notification" {
            return Err(bad(format!("wrong root <{}>", e.name)));
        }
        let global_id: GlobalEventId = e
            .attribute("eventId")
            .ok_or_else(|| bad("missing eventId".into()))?
            .parse()
            .map_err(|err| bad(format!("bad eventId: {err}")))?;
        let event_type: EventTypeId = e
            .attribute("type")
            .ok_or_else(|| bad("missing type".into()))?
            .parse()
            .map_err(|err| bad(format!("bad type: {err}")))?;
        let who = e.find("Who").ok_or_else(|| bad("missing <Who>".into()))?;
        let person_id: PersonId = who
            .attribute("personId")
            .ok_or_else(|| bad("missing personId".into()))?
            .parse()
            .map_err(|err| bad(format!("bad personId: {err}")))?;
        let person = PersonIdentity {
            id: person_id,
            fiscal_code: who
                .child_text("FiscalCode")
                .ok_or_else(|| bad("missing <FiscalCode>".into()))?,
            name: who
                .child_text("Name")
                .ok_or_else(|| bad("missing <Name>".into()))?,
            surname: who
                .child_text("Surname")
                .ok_or_else(|| bad("missing <Surname>".into()))?,
        };
        let description = e
            .child_text("What")
            .ok_or_else(|| bad("missing <What>".into()))?;
        let when_text = e
            .child_text("When")
            .ok_or_else(|| bad("missing <When>".into()))?;
        let occurred_at =
            parse_when(&when_text).ok_or_else(|| bad(format!("bad <When> value {when_text:?}")))?;
        let producer: ActorId = e
            .find("Where")
            .and_then(|w| w.attribute("producer"))
            .ok_or_else(|| bad("missing <Where producer>".into()))?
            .parse()
            .map_err(|err| bad(format!("bad producer: {err}")))?;
        Ok(NotificationMessage {
            global_id,
            event_type,
            person,
            description,
            occurred_at,
            producer,
        })
    }
}

fn parse_when(s: &str) -> Option<Timestamp> {
    match crate::field::FieldKind::DateTime.parse_value(s) {
        Ok(crate::field::FieldValue::DateTime(t)) => Some(t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NotificationMessage {
        NotificationMessage {
            global_id: GlobalEventId(101),
            event_type: EventTypeId::v1("blood-test"),
            person: PersonIdentity {
                id: PersonId(42),
                fiscal_code: "RSSMRA45C12L378Y".into(),
                name: "Mario".into(),
                surname: "Rossi".into(),
            },
            description: "blood test completed at the laboratory".into(),
            occurred_at: Timestamp(1_284_379_200_000),
            producer: ActorId(7),
        }
    }

    #[test]
    fn xml_roundtrip() {
        let n = sample();
        let text = css_xml::to_string_pretty(&n.to_xml());
        let back = NotificationMessage::from_xml(&css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn notification_carries_no_detail_fields() {
        // Structural check: the wire form has exactly the 4 W's.
        let xml = sample().to_xml();
        let names: Vec<&str> = xml.elements().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["Who", "What", "When", "Where"]);
    }

    #[test]
    fn from_xml_rejects_missing_pieces() {
        let n = sample();
        let full = n.to_xml();
        // Remove each child in turn and expect failure.
        for skip in 0..full.children.len() {
            let mut doc = Element::new("Notification")
                .attr("eventId", n.global_id.to_string())
                .attr("type", n.event_type.to_string());
            for (i, child) in full.children.iter().enumerate() {
                if i != skip {
                    doc.children.push(child.clone());
                }
            }
            assert!(
                NotificationMessage::from_xml(&doc).is_err(),
                "should fail when child {skip} is missing"
            );
        }
    }

    #[test]
    fn from_xml_rejects_bad_ids() {
        let text = css_xml::to_string(&sample().to_xml());
        let tampered = text.replace("evt-00000101", "garbage");
        assert!(NotificationMessage::from_xml(&css_xml::parse(&tampered).unwrap()).is_err());
    }

    #[test]
    fn from_xml_rejects_wrong_root() {
        let e = Element::new("Detail");
        assert!(NotificationMessage::from_xml(&e).is_err());
    }

    #[test]
    fn unicode_descriptions_roundtrip() {
        let mut n = sample();
        n.description = "visita dermatologica – città di Trento & Co.".into();
        let text = css_xml::to_string(&n.to_xml());
        let back = NotificationMessage::from_xml(&css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back.description, n.description);
    }
}
