//! Event details instances and the field-filtering obligation.

use std::collections::{BTreeMap, BTreeSet};

use css_types::{CssError, CssResult, EventTypeId};
use css_xml::Element;

use crate::field::FieldValue;
use crate::schema::EventSchema;

/// An instance of a class of event details: the sensitive payload that
/// stays at the producer (Definition 1: `e = {f_1, ..., f_k}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDetails {
    /// The class this instance belongs to.
    pub event_type: EventTypeId,
    fields: BTreeMap<String, FieldValue>,
}

impl EventDetails {
    /// An instance with no fields yet.
    pub fn new(event_type: EventTypeId) -> Self {
        EventDetails {
            event_type,
            fields: BTreeMap::new(),
        }
    }

    /// Builder: set a field value.
    pub fn with(mut self, name: impl Into<String>, value: FieldValue) -> Self {
        self.fields.insert(name.into(), value);
        self
    }

    /// Set a field value.
    pub fn set(&mut self, name: impl Into<String>, value: FieldValue) {
        self.fields.insert(name.into(), value);
    }

    /// Remove a field entirely (used by tests; enforcement *blanks*
    /// fields instead, preserving shape).
    pub fn remove(&mut self, name: &str) -> Option<FieldValue> {
        self.fields.remove(name)
    }

    /// The value of a field.
    pub fn get(&self, name: &str) -> Option<&FieldValue> {
        self.fields.get(name)
    }

    /// Names of the fields present, in sorted order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.keys().map(String::as_str)
    }

    /// Name/value pairs, in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FieldValue)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields present (empty or not).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether no fields are present.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Names of fields carrying a non-empty value.
    pub fn non_empty_fields(&self) -> impl Iterator<Item = &str> {
        self.fields
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| k.as_str())
    }

    /// Total bytes of non-empty field values — the measure of exposed
    /// data used by the experiments.
    pub fn exposed_bytes(&self) -> usize {
        self.fields.values().map(FieldValue::byte_size).sum()
    }

    /// The obligation of Algorithm 2, step 2: produce a copy where every
    /// field **not** in `allowed` is blanked ("parses the Event Details
    /// to filter out the values of the fields that are not allowed").
    ///
    /// The shape (set of field names) is preserved so consumers can
    /// still validate the response against the published schema.
    pub fn filtered_to(&self, allowed: &BTreeSet<String>) -> EventDetails {
        let mut out = EventDetails::new(self.event_type.clone());
        for (name, value) in &self.fields {
            let v = if allowed.contains(name) {
                value.clone()
            } else {
                FieldValue::Empty
            };
            out.fields.insert(name.clone(), v);
        }
        out
    }

    /// Definition 4: this instance is *privacy safe* for an allowed set
    /// `F` iff no field outside `F` carries a non-empty value.
    pub fn is_privacy_safe(&self, allowed: &BTreeSet<String>) -> bool {
        self.fields
            .iter()
            .all(|(name, value)| value.is_empty() || allowed.contains(name))
    }

    /// Serialize to XML using the schema's element naming. The optional
    /// `src_event_id` attribute is how detail messages carry their
    /// producer-local identifier.
    pub fn to_xml(&self, schema: &EventSchema, src_event_id: Option<&str>) -> Element {
        let mut root =
            Element::new(schema.root_element()).attr("type", self.event_type.to_string());
        if let Some(id) = src_event_id {
            root = root.attr("srcEventId", id);
        }
        // Serialize in schema declaration order for stable output,
        // including empty fields (they carry the "blanked" signal).
        for def in &schema.fields {
            if let Some(v) = self.fields.get(&def.name) {
                root = root.child(Element::leaf(def.name.clone(), v.render()));
            }
        }
        root
    }

    /// Parse an instance from XML, typing fields via the schema.
    pub fn from_xml(schema: &EventSchema, e: &Element) -> CssResult<Self> {
        if e.name != schema.root_element() {
            return Err(CssError::Serialization(format!(
                "expected <{}>, found <{}>",
                schema.root_element(),
                e.name
            )));
        }
        let declared_type = e
            .attribute("type")
            .ok_or_else(|| CssError::Serialization("details missing type attribute".into()))?;
        if declared_type != schema.id.to_string() {
            return Err(CssError::Serialization(format!(
                "details type {declared_type:?} does not match schema {}",
                schema.id
            )));
        }
        let mut out = EventDetails::new(schema.id.clone());
        for child in e.elements() {
            let def = schema.field_def(&child.name).ok_or_else(|| {
                CssError::Serialization(format!("undeclared field <{}>", child.name))
            })?;
            let value = def
                .kind
                .parse_value(&child.text_content())
                .map_err(CssError::Serialization)?;
            out.fields.insert(def.name.clone(), value);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldDef, FieldKind};
    use css_types::ActorId;

    fn schema() -> EventSchema {
        EventSchema::new(
            EventTypeId::v1("autonomy-test"),
            "Autonomy Test",
            ActorId(9),
        )
        .field(FieldDef::required("Age", FieldKind::Integer))
        .field(FieldDef::required(
            "Sex",
            FieldKind::Code(vec!["m".into(), "f".into()]),
        ))
        .field(FieldDef::required("AutonomyScore", FieldKind::Integer).sensitive())
        .field(FieldDef::optional("Diagnosis", FieldKind::Text).sensitive())
    }

    fn details() -> EventDetails {
        EventDetails::new(EventTypeId::v1("autonomy-test"))
            .with("Age", FieldValue::Integer(81))
            .with("Sex", FieldValue::Code("f".into()))
            .with("AutonomyScore", FieldValue::Integer(3))
            .with("Diagnosis", FieldValue::Text("mild dementia".into()))
    }

    fn allowed(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn filtering_blanks_disallowed_fields() {
        let f = allowed(&["Age", "Sex", "AutonomyScore"]);
        let filtered = details().filtered_to(&f);
        assert_eq!(filtered.get("Age").unwrap(), &FieldValue::Integer(81));
        assert_eq!(filtered.get("Diagnosis").unwrap(), &FieldValue::Empty);
        // Shape preserved.
        assert_eq!(filtered.len(), details().len());
    }

    #[test]
    fn filtered_output_is_privacy_safe() {
        let f = allowed(&["Age"]);
        let filtered = details().filtered_to(&f);
        assert!(filtered.is_privacy_safe(&f));
        assert!(!details().is_privacy_safe(&f));
    }

    #[test]
    fn privacy_safe_with_empty_allowed_set() {
        let none = BTreeSet::new();
        let filtered = details().filtered_to(&none);
        assert!(filtered.is_privacy_safe(&none));
        assert_eq!(filtered.exposed_bytes(), 0);
    }

    #[test]
    fn privacy_safe_accepts_empty_disallowed_fields() {
        let d = details().with("Diagnosis", FieldValue::Empty);
        assert!(d.is_privacy_safe(&allowed(&["Age", "Sex", "AutonomyScore"])));
    }

    #[test]
    fn exposed_bytes_counts_only_values() {
        let d = EventDetails::new(EventTypeId::v1("x"))
            .with("a", FieldValue::Text("1234".into()))
            .with("b", FieldValue::Empty);
        assert_eq!(d.exposed_bytes(), 4);
    }

    #[test]
    fn xml_roundtrip_full_instance() {
        let s = schema();
        let d = details();
        let xml = d.to_xml(&s, Some("src-00000007"));
        assert_eq!(xml.attribute("srcEventId"), Some("src-00000007"));
        let text = css_xml::to_string(&xml);
        let back = EventDetails::from_xml(&s, &css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn xml_roundtrip_preserves_blanked_fields() {
        let s = schema();
        let filtered = details().filtered_to(&allowed(&["Age"]));
        let text = css_xml::to_string(&filtered.to_xml(&s, None));
        let back = EventDetails::from_xml(&s, &css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, filtered);
        assert!(back.is_privacy_safe(&allowed(&["Age"])));
    }

    #[test]
    fn from_xml_rejects_wrong_root_or_type() {
        let s = schema();
        let other = Element::new("BloodTest").attr("type", "autonomy-test@v1");
        assert!(EventDetails::from_xml(&s, &other).is_err());
        let wrong_type = Element::new("AutonomyTest").attr("type", "blood-test@v1");
        assert!(EventDetails::from_xml(&s, &wrong_type).is_err());
    }

    #[test]
    fn from_xml_rejects_undeclared_field() {
        let s = schema();
        let doc = Element::new("AutonomyTest")
            .attr("type", "autonomy-test@v1")
            .child(Element::leaf("Hacked", "1"));
        assert!(EventDetails::from_xml(&s, &doc).is_err());
    }

    #[test]
    fn non_empty_fields_iterator() {
        let d = details().with("Diagnosis", FieldValue::Empty);
        let names: Vec<&str> = d.non_empty_fields().collect();
        assert_eq!(names, vec!["Age", "AutonomyScore", "Sex"]);
    }
}
