//! Typed fields of event details.
//!
//! Definition 1 models an event details as a list of fields
//! `e = {f_1, ..., f_k}`. Here every field carries a declared kind
//! ([`FieldKind`], used for schema validation) and a value
//! ([`FieldValue`]). The dedicated [`FieldValue::Empty`] variant is
//! load-bearing: the enforcement pipeline blanks unauthorized fields
//! rather than removing them, so responses keep the declared shape.

use std::fmt;
use std::str::FromStr;

use css_types::Timestamp;
use css_xml::ValueType;

/// A fixed-point decimal (mantissa × 10^-scale).
///
/// Clinical values (hemoglobin levels, autonomy scores) need exact
/// decimal semantics with `Eq`/`Ord`, which floats cannot give.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    mantissa: i64,
    scale: u8,
}

impl Decimal {
    /// Construct from a mantissa and scale: `Decimal::new(135, 1)` is 13.5.
    pub fn new(mantissa: i64, scale: u8) -> Self {
        Decimal { mantissa, scale }.normalized()
    }

    /// A whole number.
    pub fn whole(n: i64) -> Self {
        Decimal {
            mantissa: n,
            scale: 0,
        }
    }

    fn normalized(mut self) -> Self {
        while self.scale > 0 && self.mantissa % 10 == 0 {
            self.mantissa /= 10;
            self.scale -= 1;
        }
        self
    }

    /// Approximate floating-point value (for metrics only).
    pub fn to_f64(self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.scale as i32)
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Compare by scaling both to the larger scale; mantissas fit in
        // i128 after scaling.
        let max_scale = self.scale.max(other.scale);
        let a = self.mantissa as i128 * 10i128.pow((max_scale - self.scale) as u32);
        let b = other.mantissa as i128 * 10i128.pow((max_scale - other.scale) as u32);
        a.cmp(&b)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let sign = if self.mantissa < 0 { "-" } else { "" };
        let abs = self.mantissa.unsigned_abs();
        let pow = 10u64.pow(self.scale as u32);
        write!(
            f,
            "{sign}{}.{:0width$}",
            abs / pow,
            abs % pow,
            width = self.scale as usize
        )
    }
}

impl FromStr for Decimal {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (-1i64, rest),
            None => (1, s),
        };
        let (int_part, frac_part) = match body.split_once('.') {
            Some((_, "")) => return Err(format!("invalid decimal {s:?}")),
            Some((i, fr)) => (i, fr),
            None => (body, ""),
        };
        if int_part.is_empty()
            || !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
            || frac_part.len() > 18
        {
            return Err(format!("invalid decimal {s:?}"));
        }
        let digits: String = format!("{int_part}{frac_part}");
        let mantissa: i64 = digits
            .parse::<i64>()
            .map_err(|e| format!("decimal out of range {s:?}: {e}"))?;
        Ok(Decimal::new(sign * mantissa, frac_part.len() as u8))
    }
}

/// The declared kind of a field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// Free text.
    Text,
    /// 64-bit signed integer.
    Integer,
    /// Fixed-point decimal.
    Decimal,
    /// Boolean.
    Boolean,
    /// Instant in time.
    DateTime,
    /// One of an enumerated set of codes.
    Code(Vec<String>),
}

impl FieldKind {
    /// The XML schema value type corresponding to this kind.
    pub fn to_value_type(&self) -> ValueType {
        match self {
            FieldKind::Text => ValueType::String,
            FieldKind::Integer => ValueType::Integer,
            FieldKind::Decimal => ValueType::Decimal,
            FieldKind::Boolean => ValueType::Boolean,
            FieldKind::DateTime => ValueType::DateTime,
            FieldKind::Code(allowed) => ValueType::Enumeration(allowed.clone()),
        }
    }

    /// Parse a textual value into a [`FieldValue`] of this kind.
    pub fn parse_value(&self, text: &str) -> Result<FieldValue, String> {
        if text.is_empty() {
            return Ok(FieldValue::Empty);
        }
        match self {
            FieldKind::Text => Ok(FieldValue::Text(text.to_string())),
            FieldKind::Integer => text
                .parse::<i64>()
                .map(FieldValue::Integer)
                .map_err(|e| format!("bad integer {text:?}: {e}")),
            FieldKind::Decimal => text.parse::<Decimal>().map(FieldValue::Decimal),
            FieldKind::Boolean => match text {
                "true" => Ok(FieldValue::Boolean(true)),
                "false" => Ok(FieldValue::Boolean(false)),
                _ => Err(format!("bad boolean {text:?}")),
            },
            FieldKind::DateTime => parse_timestamp(text)
                .map(FieldValue::DateTime)
                .ok_or_else(|| format!("bad datetime {text:?}")),
            FieldKind::Code(allowed) => {
                if allowed.iter().any(|a| a == text) {
                    Ok(FieldValue::Code(text.to_string()))
                } else {
                    Err(format!("code {text:?} not in enumeration"))
                }
            }
        }
    }
}

/// Parse the `YYYY-MM-DDTHH:MM:SS.mmmZ` form emitted by
/// `css_types::Timestamp`'s `Display`.
fn parse_timestamp(s: &str) -> Option<Timestamp> {
    let s = s.strip_suffix('Z')?;
    let (date, time) = s.split_once('T')?;
    let mut dp = date.split('-');
    let (y, mo, d): (i64, u32, u32) = (
        dp.next()?.parse().ok()?,
        dp.next()?.parse().ok()?,
        dp.next()?.parse().ok()?,
    );
    if dp.next().is_some() || !(1..=12).contains(&mo) || !(1..=31).contains(&d) {
        return None;
    }
    let (hms, millis) = match time.split_once('.') {
        Some((a, b)) => (a, b.parse::<u64>().ok()?),
        None => (time, 0),
    };
    let mut tp = hms.split(':');
    let (h, mi, sec): (u64, u64, u64) = (
        tp.next()?.parse().ok()?,
        tp.next()?.parse().ok()?,
        tp.next()?.parse().ok()?,
    );
    if tp.next().is_some() || h > 23 || mi > 59 || sec > 60 {
        return None;
    }
    let days = days_from_civil(y, mo, d);
    if days < 0 {
        return None;
    }
    Some(Timestamp(
        (days as u64) * 86_400_000 + h * 3_600_000 + mi * 60_000 + sec * 1_000 + millis,
    ))
}

/// Howard Hinnant's `days_from_civil`.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = if m > 2 { m - 3 } else { m + 9 } as u64;
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1);
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// A field's value inside an event details instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldValue {
    /// Free text.
    Text(String),
    /// Integer.
    Integer(i64),
    /// Fixed-point decimal.
    Decimal(Decimal),
    /// Boolean.
    Boolean(bool),
    /// Instant.
    DateTime(Timestamp),
    /// Enumerated code.
    Code(String),
    /// No value — either never filled in, or blanked by the policy
    /// enforcer ("fields that are not authorized are left empty").
    Empty,
}

impl FieldValue {
    /// Whether this is the empty value (`e[f]` empty in Definition 4).
    pub fn is_empty(&self) -> bool {
        matches!(self, FieldValue::Empty)
    }

    /// Textual form used in XML serialization. Empty renders as "".
    pub fn render(&self) -> String {
        match self {
            FieldValue::Text(s) => s.clone(),
            FieldValue::Integer(i) => i.to_string(),
            FieldValue::Decimal(d) => d.to_string(),
            FieldValue::Boolean(b) => b.to_string(),
            FieldValue::DateTime(t) => t.to_string(),
            FieldValue::Code(c) => c.clone(),
            FieldValue::Empty => String::new(),
        }
    }

    /// Approximate serialized size in bytes, used by the benchmark
    /// harness to count sensitive bytes crossing boundaries.
    pub fn byte_size(&self) -> usize {
        self.render().len()
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Declaration of a field in an event schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name, unique within the schema.
    pub name: String,
    /// Declared kind.
    pub kind: FieldKind,
    /// Whether instances must carry a non-empty value at the source.
    pub required: bool,
    /// Whether this field is sensitive (health data, test results).
    /// Used by the simulation metrics to count sensitive exposure.
    pub sensitive: bool,
}

impl FieldDef {
    /// A required field.
    pub fn required(name: impl Into<String>, kind: FieldKind) -> Self {
        FieldDef {
            name: name.into(),
            kind,
            required: true,
            sensitive: false,
        }
    }

    /// An optional field.
    pub fn optional(name: impl Into<String>, kind: FieldKind) -> Self {
        FieldDef {
            name: name.into(),
            kind,
            required: false,
            sensitive: false,
        }
    }

    /// Builder: mark the field sensitive.
    pub fn sensitive(mut self) -> Self {
        self.sensitive = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_display_roundtrip() {
        for s in ["13.5", "0.05", "-2.75", "100", "-7", "0"] {
            let d: Decimal = s.parse().unwrap();
            assert_eq!(d.to_string(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn decimal_normalization() {
        let a: Decimal = "13.50".parse().unwrap();
        let b: Decimal = "13.5".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "13.5");
    }

    #[test]
    fn decimal_ordering_across_scales() {
        let a: Decimal = "13.5".parse().unwrap();
        let b: Decimal = "13.45".parse().unwrap();
        let c: Decimal = "-1.2".parse().unwrap();
        assert!(a > b);
        assert!(c < b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn decimal_rejects_garbage() {
        for s in ["", ".", "1.", ".5", "1.2.3", "abc", "--1", "1e5"] {
            assert!(s.parse::<Decimal>().is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn parse_value_per_kind() {
        assert_eq!(
            FieldKind::Integer.parse_value("42").unwrap(),
            FieldValue::Integer(42)
        );
        assert_eq!(
            FieldKind::Boolean.parse_value("true").unwrap(),
            FieldValue::Boolean(true)
        );
        assert!(FieldKind::Integer.parse_value("x").is_err());
        let code = FieldKind::Code(vec!["negative".into(), "positive".into()]);
        assert_eq!(
            code.parse_value("negative").unwrap(),
            FieldValue::Code("negative".into())
        );
        assert!(code.parse_value("inconclusive").is_err());
    }

    #[test]
    fn empty_text_parses_to_empty() {
        for kind in [
            FieldKind::Text,
            FieldKind::Integer,
            FieldKind::Decimal,
            FieldKind::Boolean,
            FieldKind::DateTime,
        ] {
            assert_eq!(kind.parse_value("").unwrap(), FieldValue::Empty);
        }
    }

    #[test]
    fn timestamp_roundtrip_through_text() {
        let t = Timestamp(1_284_379_200_123); // 2010-09-13T12:00:00.123Z
        let rendered = FieldValue::DateTime(t).render();
        let parsed = FieldKind::DateTime.parse_value(&rendered).unwrap();
        assert_eq!(parsed, FieldValue::DateTime(t));
    }

    #[test]
    fn timestamp_rejects_malformed() {
        for s in [
            "2010-09-13",
            "2010-09-13T12:00:00",
            "2010-13-01T00:00:00Z",
            "not a date",
            "1969-12-31T23:59:59Z", // before epoch
        ] {
            assert!(
                FieldKind::DateTime.parse_value(s).is_err(),
                "should reject {s:?}"
            );
        }
    }

    #[test]
    fn field_value_render_matrix() {
        assert_eq!(FieldValue::Integer(-3).render(), "-3");
        assert_eq!(FieldValue::Empty.render(), "");
        assert_eq!(FieldValue::Boolean(false).render(), "false");
        assert_eq!(FieldValue::Decimal("2.5".parse().unwrap()).render(), "2.5");
    }

    #[test]
    fn field_def_builders() {
        let f = FieldDef::required("hiv_result", FieldKind::Text).sensitive();
        assert!(f.required && f.sensitive);
        let g = FieldDef::optional("notes", FieldKind::Text);
        assert!(!g.required && !g.sensitive);
    }
}
