//! Detail messages and privacy-aware responses.

use std::collections::BTreeSet;

use css_types::{ActorId, CssError, CssResult, GlobalEventId, SourceEventId};
use css_xml::Element;

use crate::details::EventDetails;
use crate::schema::EventSchema;

/// The sensitive half of an event. It is persisted by the producer's
/// Local Cooperation Gateway and never leaves the producer unfiltered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetailMessage {
    /// Producer-local identifier of the event (`src_eID`).
    pub src_event_id: SourceEventId,
    /// Producer that generated the event.
    pub producer: ActorId,
    /// The full payload.
    pub details: EventDetails,
}

impl DetailMessage {
    /// Serialize using the schema's element naming.
    pub fn to_xml(&self, schema: &EventSchema) -> Element {
        Element::new("DetailMessage")
            .attr("producer", self.producer.to_string())
            .child(
                self.details
                    .to_xml(schema, Some(&self.src_event_id.to_string())),
            )
    }

    /// Parse from the XML form.
    pub fn from_xml(schema: &EventSchema, e: &Element) -> CssResult<Self> {
        let bad = |msg: String| CssError::Serialization(format!("DetailMessage: {msg}"));
        if e.name != "DetailMessage" {
            return Err(bad(format!("wrong root <{}>", e.name)));
        }
        let producer: ActorId = e
            .attribute("producer")
            .ok_or_else(|| bad("missing producer".into()))?
            .parse()
            .map_err(|err| bad(format!("bad producer: {err}")))?;
        let inner = e
            .find(&schema.root_element())
            .ok_or_else(|| bad(format!("missing <{}>", schema.root_element())))?;
        let src_event_id: SourceEventId = inner
            .attribute("srcEventId")
            .ok_or_else(|| bad("missing srcEventId".into()))?
            .parse()
            .map_err(|err| bad(format!("bad srcEventId: {err}")))?;
        let details = EventDetails::from_xml(schema, inner)?;
        Ok(DetailMessage {
            src_event_id,
            producer,
            details,
        })
    }
}

/// The response to an authorized detail request: the event details with
/// only the policy-allowed fields populated (everything else blanked),
/// plus the provenance the consumer needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivacyAwareEvent {
    /// Global identifier of the event the response refers to.
    pub global_id: GlobalEventId,
    /// Producer that released the data.
    pub producer: ActorId,
    /// Fields the matching policy allowed (the `F` of Definition 2).
    pub allowed_fields: BTreeSet<String>,
    /// The filtered payload. Invariant: `details.is_privacy_safe(&allowed_fields)`.
    pub details: EventDetails,
}

impl PrivacyAwareEvent {
    /// Construct a response, filtering `details` down to `allowed`.
    ///
    /// This is the only constructor, so the privacy-safety invariant
    /// holds for every value of this type.
    pub fn release(
        global_id: GlobalEventId,
        producer: ActorId,
        details: &EventDetails,
        allowed: BTreeSet<String>,
    ) -> Self {
        let filtered = details.filtered_to(&allowed);
        debug_assert!(filtered.is_privacy_safe(&allowed));
        PrivacyAwareEvent {
            global_id,
            producer,
            allowed_fields: allowed,
            details: filtered,
        }
    }

    /// Verify the Definition 4 invariant (used by tests and audits).
    pub fn is_privacy_safe(&self) -> bool {
        self.details.is_privacy_safe(&self.allowed_fields)
    }

    /// Serialize using the schema's element naming.
    pub fn to_xml(&self, schema: &EventSchema) -> Element {
        let mut allowed = Element::new("AllowedFields");
        for f in &self.allowed_fields {
            allowed = allowed.child(Element::leaf("Field", f.clone()));
        }
        Element::new("PrivacyAwareEvent")
            .attr("eventId", self.global_id.to_string())
            .attr("producer", self.producer.to_string())
            .child(allowed)
            .child(self.details.to_xml(schema, None))
    }

    /// Parse from the XML form, re-checking the privacy-safety invariant.
    pub fn from_xml(schema: &EventSchema, e: &Element) -> CssResult<Self> {
        let bad = |msg: String| CssError::Serialization(format!("PrivacyAwareEvent: {msg}"));
        if e.name != "PrivacyAwareEvent" {
            return Err(bad(format!("wrong root <{}>", e.name)));
        }
        let global_id: GlobalEventId = e
            .attribute("eventId")
            .ok_or_else(|| bad("missing eventId".into()))?
            .parse()
            .map_err(|err| bad(format!("bad eventId: {err}")))?;
        let producer: ActorId = e
            .attribute("producer")
            .ok_or_else(|| bad("missing producer".into()))?
            .parse()
            .map_err(|err| bad(format!("bad producer: {err}")))?;
        let allowed_fields: BTreeSet<String> = e
            .find("AllowedFields")
            .ok_or_else(|| bad("missing <AllowedFields>".into()))?
            .find_all("Field")
            .map(|f| f.text_content())
            .collect();
        let inner = e
            .find(&schema.root_element())
            .ok_or_else(|| bad(format!("missing <{}>", schema.root_element())))?;
        let details = EventDetails::from_xml(schema, inner)?;
        if !details.is_privacy_safe(&allowed_fields) {
            return Err(bad("payload exposes fields outside the allowed set".into()));
        }
        Ok(PrivacyAwareEvent {
            global_id,
            producer,
            allowed_fields,
            details,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldDef, FieldKind, FieldValue};
    use css_types::EventTypeId;

    fn schema() -> EventSchema {
        EventSchema::new(
            EventTypeId::v1("home-care-service-event"),
            "Home Care",
            ActorId(3),
        )
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Service", FieldKind::Text))
        .field(FieldDef::optional("CareNotes", FieldKind::Text).sensitive())
    }

    fn details() -> EventDetails {
        EventDetails::new(EventTypeId::v1("home-care-service-event"))
            .with("PatientId", FieldValue::Integer(42))
            .with("Service", FieldValue::Text("meal delivery".into()))
            .with("CareNotes", FieldValue::Text("patient is diabetic".into()))
    }

    fn allowed(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn detail_message_xml_roundtrip() {
        let m = DetailMessage {
            src_event_id: SourceEventId(9),
            producer: ActorId(3),
            details: details(),
        };
        let s = schema();
        let text = css_xml::to_string_pretty(&m.to_xml(&s));
        let back = DetailMessage::from_xml(&s, &css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn release_filters_and_upholds_invariant() {
        let resp = PrivacyAwareEvent::release(
            GlobalEventId(5),
            ActorId(3),
            &details(),
            allowed(&["PatientId", "Service"]),
        );
        assert!(resp.is_privacy_safe());
        assert_eq!(resp.details.get("CareNotes").unwrap(), &FieldValue::Empty);
        assert_eq!(
            resp.details.get("Service").unwrap(),
            &FieldValue::Text("meal delivery".into())
        );
    }

    #[test]
    fn release_with_empty_allowed_blanks_everything() {
        let resp =
            PrivacyAwareEvent::release(GlobalEventId(5), ActorId(3), &details(), BTreeSet::new());
        assert!(resp.is_privacy_safe());
        assert_eq!(resp.details.exposed_bytes(), 0);
    }

    #[test]
    fn privacy_aware_xml_roundtrip() {
        let s = schema();
        let resp = PrivacyAwareEvent::release(
            GlobalEventId(5),
            ActorId(3),
            &details(),
            allowed(&["PatientId"]),
        );
        let text = css_xml::to_string(&resp.to_xml(&s));
        let back = PrivacyAwareEvent::from_xml(&s, &css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn from_xml_rejects_unsafe_payload() {
        let s = schema();
        // Hand-craft a response that leaks CareNotes while only allowing
        // PatientId — the parser must refuse it.
        let forged = Element::new("PrivacyAwareEvent")
            .attr("eventId", "evt-00000005")
            .attr("producer", "act-00000003")
            .child(Element::new("AllowedFields").child(Element::leaf("Field", "PatientId")))
            .child(
                Element::new("HomeCareServiceEvent")
                    .attr("type", "home-care-service-event@v1")
                    .child(Element::leaf("PatientId", "42"))
                    .child(Element::leaf("CareNotes", "leaked!")),
            );
        let err = PrivacyAwareEvent::from_xml(&s, &forged).unwrap_err();
        assert!(matches!(err, CssError::Serialization(_)));
    }

    #[test]
    fn detail_message_from_xml_requires_src_id() {
        let s = schema();
        let doc = Element::new("DetailMessage")
            .attr("producer", "act-00000003")
            .child(details().to_xml(&s, None));
        assert!(DetailMessage::from_xml(&s, &doc).is_err());
    }
}
