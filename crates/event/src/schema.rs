//! Event schemas — the catalog's stand-in for XSD.
//!
//! "The structure of the event is specified by an XSD that is
//! 'installed' in an event catalog module" (Section 5). An
//! [`EventSchema`] declares the typed fields of one class of event
//! details; it validates instances and converts to the `css-xml` schema
//! form for interchange.

use css_types::{ActorId, CssError, CssResult, EventTypeId};
use css_xml::{Element, ElementDecl, Schema};

use crate::details::EventDetails;
use crate::field::{FieldDef, FieldKind};

/// Declaration of a class of event details (an entry of `E(D_i)` in
/// Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSchema {
    /// Identifier (code + version) of the event class.
    pub id: EventTypeId,
    /// Human-readable name shown in catalogs and the elicitation tool.
    pub display_name: String,
    /// The producer that declared the class.
    pub producer: ActorId,
    /// Ordered field declarations.
    pub fields: Vec<FieldDef>,
}

impl EventSchema {
    /// Create a schema with no fields yet.
    pub fn new(id: EventTypeId, display_name: impl Into<String>, producer: ActorId) -> Self {
        EventSchema {
            id,
            display_name: display_name.into(),
            producer,
            fields: Vec::new(),
        }
    }

    /// Builder: append a field declaration.
    ///
    /// # Panics
    /// Panics if a field with the same name was already declared —
    /// schemas are authored in code or by the elicitation tool, so a
    /// duplicate is a programming error.
    pub fn field(mut self, def: FieldDef) -> Self {
        assert!(
            self.field_def(&def.name).is_none(),
            "duplicate field {:?} in schema {}",
            def.name,
            self.id
        );
        self.fields.push(def);
        self
    }

    /// Declaration of the named field, if any.
    pub fn field_def(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of all declared fields, in declaration order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }

    /// Names of the fields marked sensitive.
    pub fn sensitive_fields(&self) -> impl Iterator<Item = &str> {
        self.fields
            .iter()
            .filter(|f| f.sensitive)
            .map(|f| f.name.as_str())
    }

    /// Root element name used by the XML form of instances.
    pub fn root_element(&self) -> String {
        // blood-test@v1 → BloodTest
        self.id
            .code()
            .split('-')
            .map(|part| {
                let mut chars = part.chars();
                match chars.next() {
                    Some(c) => c.to_uppercase().chain(chars).collect::<String>(),
                    None => String::new(),
                }
            })
            .collect()
    }

    /// The `css-xml` schema equivalent, used to publish the structure in
    /// the event catalog.
    ///
    /// All elements are declared nillable because privacy-aware
    /// responses blank unauthorized fields; *source-side* requiredness
    /// is enforced by [`EventSchema::validate`] instead.
    pub fn to_xml_schema(&self) -> Schema {
        let mut schema = Schema::new(self.root_element())
            .attribute("type", true)
            .attribute("srcEventId", false);
        for f in &self.fields {
            let decl = ElementDecl {
                name: f.name.clone(),
                value_type: f.kind.to_value_type(),
                occurs: css_xml::Occurs::Optional,
                nillable: true,
            };
            schema = schema.element(decl);
        }
        schema
    }

    /// Validate a full (source-side) instance: every declared field must
    /// be well-typed, required fields must be non-empty, and no
    /// undeclared field may appear.
    pub fn validate(&self, details: &EventDetails) -> CssResult<()> {
        if details.event_type != self.id {
            return Err(CssError::Invalid(format!(
                "details of type {} validated against schema {}",
                details.event_type, self.id
            )));
        }
        for name in details.field_names() {
            if self.field_def(name).is_none() {
                return Err(CssError::Invalid(format!(
                    "undeclared field {name:?} in event of type {}",
                    self.id
                )));
            }
        }
        for def in &self.fields {
            let value = details.get(&def.name);
            match value {
                None => {
                    if def.required {
                        return Err(CssError::Invalid(format!(
                            "required field {:?} missing in event of type {}",
                            def.name, self.id
                        )));
                    }
                }
                Some(v) => {
                    if def.required && v.is_empty() {
                        return Err(CssError::Invalid(format!(
                            "required field {:?} is empty in event of type {}",
                            def.name, self.id
                        )));
                    }
                    if !v.is_empty() {
                        // Re-parse the rendered form to confirm the kind.
                        def.kind.parse_value(&v.render()).map_err(|e| {
                            CssError::Invalid(format!(
                                "field {:?} ill-typed in event of type {}: {e}",
                                def.name, self.id
                            ))
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Serialize the schema itself to XML (for the event catalog).
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("EventSchema")
            .attr("id", self.id.to_string())
            .attr("name", self.display_name.clone())
            .attr("producer", self.producer.to_string());
        for f in &self.fields {
            let mut fe = Element::new("Field")
                .attr("name", f.name.clone())
                .attr("kind", kind_code(&f.kind))
                .attr("required", f.required.to_string())
                .attr("sensitive", f.sensitive.to_string());
            if let FieldKind::Code(allowed) = &f.kind {
                for code in allowed {
                    fe = fe.child(Element::leaf("Code", code.clone()));
                }
            }
            root = root.child(fe);
        }
        root
    }

    /// Parse a schema from its XML form.
    pub fn from_xml(e: &Element) -> CssResult<Self> {
        let bad = |msg: &str| CssError::Serialization(format!("EventSchema: {msg}"));
        if e.name != "EventSchema" {
            return Err(bad("wrong root element"));
        }
        let id: EventTypeId = e
            .attribute("id")
            .ok_or_else(|| bad("missing id"))?
            .parse()
            .map_err(|err| bad(&format!("bad id: {err}")))?;
        let display_name = e.attribute("name").ok_or_else(|| bad("missing name"))?;
        let producer: ActorId = e
            .attribute("producer")
            .ok_or_else(|| bad("missing producer"))?
            .parse()
            .map_err(|err| bad(&format!("bad producer: {err}")))?;
        let mut schema = EventSchema::new(id, display_name, producer);
        for fe in e.find_all("Field") {
            let name = fe
                .attribute("name")
                .ok_or_else(|| bad("field without name"))?;
            if schema.field_def(name).is_some() {
                return Err(bad(&format!("duplicate field {name:?}")));
            }
            let kind_str = fe
                .attribute("kind")
                .ok_or_else(|| bad("field without kind"))?;
            let kind = match kind_str {
                "text" => FieldKind::Text,
                "integer" => FieldKind::Integer,
                "decimal" => FieldKind::Decimal,
                "boolean" => FieldKind::Boolean,
                "datetime" => FieldKind::DateTime,
                "code" => FieldKind::Code(fe.find_all("Code").map(|c| c.text_content()).collect()),
                other => return Err(bad(&format!("unknown field kind {other:?}"))),
            };
            let required = fe.attribute("required") == Some("true");
            let sensitive = fe.attribute("sensitive") == Some("true");
            schema.fields.push(FieldDef {
                name: name.to_string(),
                kind,
                required,
                sensitive,
            });
        }
        Ok(schema)
    }
}

fn kind_code(kind: &FieldKind) -> &'static str {
    match kind {
        FieldKind::Text => "text",
        FieldKind::Integer => "integer",
        FieldKind::Decimal => "decimal",
        FieldKind::Boolean => "boolean",
        FieldKind::DateTime => "datetime",
        FieldKind::Code(_) => "code",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldValue;
    use css_types::Timestamp;

    pub(crate) fn blood_test_schema() -> EventSchema {
        EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", ActorId(1))
            .field(FieldDef::required("PatientId", FieldKind::Integer))
            .field(FieldDef::required("CollectedAt", FieldKind::DateTime))
            .field(
                FieldDef::required(
                    "Result",
                    FieldKind::Code(vec!["negative".into(), "positive".into()]),
                )
                .sensitive(),
            )
            .field(FieldDef::optional("Hemoglobin", FieldKind::Decimal).sensitive())
            .field(FieldDef::optional("Notes", FieldKind::Text))
    }

    fn valid_details() -> EventDetails {
        EventDetails::new(EventTypeId::v1("blood-test"))
            .with("PatientId", FieldValue::Integer(42))
            .with("CollectedAt", FieldValue::DateTime(Timestamp(1_000_000)))
            .with("Result", FieldValue::Code("negative".into()))
            .with("Hemoglobin", FieldValue::Decimal("13.5".parse().unwrap()))
    }

    #[test]
    fn valid_instance_passes() {
        blood_test_schema().validate(&valid_details()).unwrap();
    }

    #[test]
    fn missing_required_field_rejected() {
        let details = EventDetails::new(EventTypeId::v1("blood-test"))
            .with("PatientId", FieldValue::Integer(42));
        assert!(blood_test_schema().validate(&details).is_err());
    }

    #[test]
    fn empty_required_field_rejected() {
        let details = valid_details().with("Result", FieldValue::Empty);
        assert!(blood_test_schema().validate(&details).is_err());
    }

    #[test]
    fn undeclared_field_rejected() {
        let details = valid_details().with("Smuggled", FieldValue::Text("x".into()));
        assert!(blood_test_schema().validate(&details).is_err());
    }

    #[test]
    fn ill_typed_field_rejected() {
        let details = valid_details().with("Result", FieldValue::Code("inconclusive".into()));
        assert!(blood_test_schema().validate(&details).is_err());
    }

    #[test]
    fn wrong_type_id_rejected() {
        let details = EventDetails::new(EventTypeId::v1("urine-test"));
        assert!(blood_test_schema().validate(&details).is_err());
    }

    #[test]
    fn optional_field_may_be_absent() {
        let mut details = valid_details();
        details.remove("Hemoglobin");
        blood_test_schema().validate(&details).unwrap();
    }

    #[test]
    fn root_element_is_camel_case() {
        assert_eq!(blood_test_schema().root_element(), "BloodTest");
        let s = EventSchema::new(EventTypeId::v1("home-care-service-event"), "x", ActorId(1));
        assert_eq!(s.root_element(), "HomeCareServiceEvent");
    }

    #[test]
    fn xml_roundtrip() {
        let schema = blood_test_schema();
        let xml = schema.to_xml();
        let text = css_xml::to_string_pretty(&xml);
        let parsed = EventSchema::from_xml(&css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, schema);
    }

    #[test]
    fn from_xml_rejects_duplicates_and_garbage() {
        let dup = r#"<EventSchema id="x@v1" name="X" producer="act-00000001">
            <Field name="a" kind="text" required="true" sensitive="false"/>
            <Field name="a" kind="text" required="true" sensitive="false"/>
        </EventSchema>"#;
        assert!(EventSchema::from_xml(&css_xml::parse(dup).unwrap()).is_err());
        let bad_kind = r#"<EventSchema id="x@v1" name="X" producer="act-00000001">
            <Field name="a" kind="blob" required="true" sensitive="false"/>
        </EventSchema>"#;
        assert!(EventSchema::from_xml(&css_xml::parse(bad_kind).unwrap()).is_err());
    }

    #[test]
    fn sensitive_fields_listed() {
        let schema = blood_test_schema();
        let s: Vec<&str> = schema.sensitive_fields().collect();
        assert_eq!(s, vec!["Result", "Hemoglobin"]);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_field_panics_in_builder() {
        let _ = EventSchema::new(EventTypeId::v1("x"), "X", ActorId(1))
            .field(FieldDef::required("a", FieldKind::Text))
            .field(FieldDef::required("a", FieldKind::Text));
    }

    #[test]
    fn xml_schema_conversion_validates_instances() {
        let schema = blood_test_schema();
        let xml_schema = schema.to_xml_schema();
        let doc = valid_details().to_xml(&schema, None);
        assert!(xml_schema.validate(&doc).is_ok());
    }
}
