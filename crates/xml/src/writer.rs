//! Serialization of element trees to XML text.

use crate::doc::{Element, Node};
use crate::escape::{escape_attr, escape_text};

/// Serialize compactly (no insignificant whitespace).
pub fn to_string(root: &Element) -> String {
    let mut out = String::with_capacity(256);
    write_element(&mut out, root, None, 0);
    out
}

/// Serialize as a standalone document: XML declaration followed by the
/// pretty-printed root element — the form messages take on the wire.
pub fn to_document_string(root: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&to_string_pretty(root));
    out
}

/// Serialize with two-space indentation, one element per line.
///
/// Elements whose children are only text stay on one line so values
/// remain whitespace-exact.
pub fn to_string_pretty(root: &Element) -> String {
    let mut out = String::with_capacity(512);
    write_element(&mut out, root, Some(2), 0);
    out.push('\n');
    out
}

fn write_element(out: &mut String, e: &Element, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = indent {
            if depth > 0 {
                out.push('\n');
            }
            for _ in 0..depth * width {
                out.push(' ');
            }
        }
    };
    pad(out, depth);
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let text_only = e.children.iter().all(|n| matches!(n, Node::Text(_)));
    for child in &e.children {
        match child {
            Node::Element(el) => write_element(out, el, indent, depth + 1),
            Node::Text(t) => out.push_str(&escape_text(t)),
        }
    }
    if let Some(width) = indent {
        if !text_only {
            out.push('\n');
            for _ in 0..depth * width {
                out.push(' ');
            }
        }
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization() {
        let e = Element::new("a")
            .attr("k", "v")
            .child(Element::leaf("b", "text"))
            .child(Element::new("c"));
        assert_eq!(to_string(&e), r#"<a k="v"><b>text</b><c/></a>"#);
    }

    #[test]
    fn escaping_applied() {
        let e = Element::new("a").attr("q", r#"x"y"#).text("1 < 2 & 3");
        assert_eq!(to_string(&e), r#"<a q="x&quot;y">1 &lt; 2 &amp; 3</a>"#);
    }

    #[test]
    fn pretty_keeps_text_leaves_inline() {
        let e = Element::new("root").child(Element::leaf("name", "Mario"));
        let s = to_string_pretty(&e);
        assert_eq!(s, "<root>\n  <name>Mario</name>\n</root>\n");
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(to_string(&Element::new("empty")), "<empty/>");
    }

    #[test]
    fn document_string_has_declaration_and_parses() {
        let e = Element::new("Notification").child(Element::leaf("What", "x"));
        let doc = to_document_string(&e);
        assert!(doc.starts_with("<?xml version=\"1.0\""));
        assert_eq!(crate::parser::parse(&doc).unwrap(), e);
    }

    #[test]
    fn pretty_nested() {
        let e = Element::new("a").child(Element::new("b").child(Element::leaf("c", "x")));
        let s = to_string_pretty(&e);
        assert_eq!(s, "<a>\n  <b>\n    <c>x</c>\n  </b>\n</a>\n");
    }
}
