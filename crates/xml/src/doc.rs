//! The XML element tree and its builder API.

use std::fmt;

/// A node inside an element: either a child element or a run of text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (unescaped form).
    Text(String),
}

/// An XML element: name, attributes (in insertion order), children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name, possibly with a namespace prefix (`xacml:Policy`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// A new empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder: add several child elements.
    pub fn children(mut self, kids: impl IntoIterator<Item = Element>) -> Self {
        self.children.extend(kids.into_iter().map(Node::Element));
        self
    }

    /// Builder: add a text node.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder: a leaf element containing only text.
    pub fn leaf(name: impl Into<String>, text: impl Into<String>) -> Self {
        Element::new(name).text(text)
    }

    /// Value of an attribute, if present.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// All child elements, any name.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Concatenated text content of this element's direct text children,
    /// trimmed.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Text content of the first child element with the given name.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.find(name).map(|e| e.text_content())
    }

    /// Whether the element has no attributes and no children.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty() && self.children.is_empty()
    }

    /// Depth-first walk over this element and all descendants.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Element)) {
        visit(self);
        for e in self.elements() {
            e.walk(visit);
        }
    }

    /// Total number of elements in the subtree (including self).
    pub fn subtree_size(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("Event")
            .attr("id", "evt-1")
            .child(Element::leaf("Who", "Mario Rossi"))
            .child(Element::leaf("What", "blood test"))
            .child(
                Element::new("Where")
                    .attr("org", "hospital")
                    .text("Laboratory"),
            )
    }

    #[test]
    fn builder_and_accessors() {
        let e = sample();
        assert_eq!(e.attribute("id"), Some("evt-1"));
        assert_eq!(e.attribute("missing"), None);
        assert_eq!(e.child_text("Who").unwrap(), "Mario Rossi");
        assert_eq!(e.find("Where").unwrap().attribute("org"), Some("hospital"));
        assert!(e.find("Nope").is_none());
    }

    #[test]
    fn find_all_filters_by_name() {
        let e = Element::new("Fields")
            .child(Element::leaf("Field", "a"))
            .child(Element::leaf("Field", "b"))
            .child(Element::leaf("Other", "c"));
        let values: Vec<String> = e.find_all("Field").map(|f| f.text_content()).collect();
        assert_eq!(values, vec!["a", "b"]);
    }

    #[test]
    fn text_content_concatenates_and_trims() {
        let e = Element::new("t").text("  hello ").text("world  ");
        assert_eq!(e.text_content(), "hello world");
    }

    #[test]
    fn walk_and_subtree_size() {
        assert_eq!(sample().subtree_size(), 4);
    }

    #[test]
    fn is_empty() {
        assert!(Element::new("e").is_empty());
        assert!(!Element::new("e").attr("a", "1").is_empty());
        assert!(!Element::new("e").text("x").is_empty());
    }
}
