//! Minimal XML infrastructure for the CSS platform.
//!
//! The paper exchanges everything as XML: event details are described by
//! XSD schemas "installed" in the event catalog, privacy policies are
//! serialized as XACML documents, and messages travel as XML envelopes
//! over the service bus. This crate provides the small, dependency-free
//! XML subset the platform needs:
//!
//! - an element tree model with a builder API ([`Element`]),
//! - a writer with correct escaping ([`writer`]),
//! - a recursive-descent parser for the same subset ([`parser`]),
//! - a schema language playing the role of XSD ([`schema`]): typed
//!   fields, required/optional occurrence, enumerations.
//!
//! The subset deliberately excludes DTDs, namespace resolution,
//! processing instructions and entities beyond the five predefined ones —
//! none of which the platform's message formats use.

pub mod doc;
pub mod escape;
pub mod parser;
pub mod schema;
pub mod writer;

pub use doc::{Element, Node};
pub use parser::{parse, ParseError};
pub use schema::{ElementDecl, Occurs, Schema, SchemaError, ValueType};
pub use writer::{to_document_string, to_string, to_string_pretty};
