//! Schema validation — the platform's stand-in for XSD.
//!
//! The paper "installs" an XSD for every class of event details in the
//! event catalog, and validates instances against it. This module
//! implements the subset the platform needs: a root element declaration
//! with typed child elements, occurrence constraints, attribute
//! declarations, and enumerated values.

use std::collections::BTreeMap;
use std::fmt;

use crate::doc::Element;

/// How many times a child element may occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurs {
    /// Exactly once.
    One,
    /// Zero or one times.
    Optional,
    /// Zero or more times.
    Many,
    /// One or more times.
    AtLeastOne,
}

impl Occurs {
    fn accepts(self, n: usize) -> bool {
        match self {
            Occurs::One => n == 1,
            Occurs::Optional => n <= 1,
            Occurs::Many => true,
            Occurs::AtLeastOne => n >= 1,
        }
    }
}

/// The type a text value must conform to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueType {
    /// Any character data.
    String,
    /// A 64-bit signed integer.
    Integer,
    /// A decimal number (integer part plus optional fraction).
    Decimal,
    /// `true` or `false`.
    Boolean,
    /// An ISO-8601 date-time as produced by `css_types::Timestamp`.
    DateTime,
    /// One of an enumerated set of codes.
    Enumeration(Vec<String>),
}

impl ValueType {
    /// Whether `value` conforms to this type.
    pub fn accepts(&self, value: &str) -> bool {
        match self {
            ValueType::String => true,
            ValueType::Integer => value.parse::<i64>().is_ok(),
            ValueType::Decimal => {
                let v = value.strip_prefix('-').unwrap_or(value);
                match v.split_once('.') {
                    Some((int, frac)) => {
                        !int.is_empty()
                            && !frac.is_empty()
                            && int.bytes().all(|b| b.is_ascii_digit())
                            && frac.bytes().all(|b| b.is_ascii_digit())
                    }
                    None => !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit()),
                }
            }
            ValueType::Boolean => matches!(value, "true" | "false"),
            ValueType::DateTime => parse_datetime(value),
            ValueType::Enumeration(allowed) => allowed.iter().any(|a| a == value),
        }
    }
}

/// Accept `YYYY-MM-DDTHH:MM:SS(.mmm)?Z`.
fn parse_datetime(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.len() < 20 || bytes.last() != Some(&b'Z') {
        return false;
    }
    let s = &s[..s.len() - 1];
    let (date, time) = match s.split_once('T') {
        Some(p) => p,
        None => return false,
    };
    let date_parts: Vec<&str> = date.split('-').collect();
    if date_parts.len() != 3 || date_parts[0].len() != 4 {
        return false;
    }
    let ok_num = |p: &str, max: u32| p.parse::<u32>().map(|v| v <= max).unwrap_or(false);
    if !date_parts[0].bytes().all(|b| b.is_ascii_digit())
        || !ok_num(date_parts[1], 12)
        || !ok_num(date_parts[2], 31)
        || !date_parts[1]
            .parse::<u32>()
            .map(|m| m >= 1)
            .unwrap_or(false)
    {
        return false;
    }
    let (hms, millis) = match time.split_once('.') {
        Some((a, b)) => (a, Some(b)),
        None => (time, None),
    };
    if let Some(ms) = millis {
        if ms.len() != 3 || !ms.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
    }
    let t: Vec<&str> = hms.split(':').collect();
    t.len() == 3 && ok_num(t[0], 23) && ok_num(t[1], 59) && ok_num(t[2], 60)
}

/// Declaration of a child element inside a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Tag name of the child.
    pub name: String,
    /// Type of the text content.
    pub value_type: ValueType,
    /// Occurrence constraint.
    pub occurs: Occurs,
    /// Whether an empty value is allowed even when the element occurs.
    ///
    /// Privacy-aware events leave filtered-out fields empty, so
    /// validation of *responses* uses schemas with `nillable = true`.
    pub nillable: bool,
}

impl ElementDecl {
    /// A required child with the given type.
    pub fn required(name: impl Into<String>, value_type: ValueType) -> Self {
        ElementDecl {
            name: name.into(),
            value_type,
            occurs: Occurs::One,
            nillable: false,
        }
    }

    /// An optional child with the given type.
    pub fn optional(name: impl Into<String>, value_type: ValueType) -> Self {
        ElementDecl {
            name: name.into(),
            value_type,
            occurs: Occurs::Optional,
            nillable: false,
        }
    }

    /// Builder: mark the element nillable.
    pub fn nillable(mut self) -> Self {
        self.nillable = true;
        self
    }

    /// Builder: override the occurrence constraint.
    pub fn occurs(mut self, occurs: Occurs) -> Self {
        self.occurs = occurs;
        self
    }
}

/// A schema for one root element: its required attributes and its child
/// element declarations. Children not declared are rejected (closed
/// content model, like a `sequence` in XSD).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// Expected root element name.
    pub root: String,
    /// Attribute declarations: name → required?
    pub attributes: Vec<(String, bool)>,
    /// Child element declarations.
    pub elements: Vec<ElementDecl>,
}

impl Schema {
    /// A schema for a root element with no attributes or children yet.
    pub fn new(root: impl Into<String>) -> Self {
        Schema {
            root: root.into(),
            attributes: Vec::new(),
            elements: Vec::new(),
        }
    }

    /// Builder: declare an attribute.
    pub fn attribute(mut self, name: impl Into<String>, required: bool) -> Self {
        self.attributes.push((name.into(), required));
        self
    }

    /// Builder: declare a child element.
    pub fn element(mut self, decl: ElementDecl) -> Self {
        self.elements.push(decl);
        self
    }

    /// Look up the declaration for a child name.
    pub fn decl(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.iter().find(|d| d.name == name)
    }

    /// Validate a document against this schema.
    ///
    /// Returns all violations rather than stopping at the first, so the
    /// elicitation tool can show a complete report.
    pub fn validate(&self, doc: &Element) -> Result<(), Vec<SchemaError>> {
        let mut errors = Vec::new();
        if doc.name != self.root {
            errors.push(SchemaError::WrongRoot {
                expected: self.root.clone(),
                found: doc.name.clone(),
            });
            return Err(errors);
        }
        for (attr, required) in &self.attributes {
            if *required && doc.attribute(attr).is_none() {
                errors.push(SchemaError::MissingAttribute(attr.clone()));
            }
        }
        for (attr, _) in &doc.attributes {
            if !self.attributes.iter().any(|(a, _)| a == attr) {
                errors.push(SchemaError::UndeclaredAttribute(attr.clone()));
            }
        }
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for child in doc.elements() {
            match self.decl(&child.name) {
                None => errors.push(SchemaError::UndeclaredElement(child.name.clone())),
                Some(decl) => {
                    *counts.entry(decl.name.as_str()).or_default() += 1;
                    let text = child.text_content();
                    if text.is_empty() {
                        if !decl.nillable {
                            errors.push(SchemaError::EmptyValue(child.name.clone()));
                        }
                    } else if !decl.value_type.accepts(&text) {
                        errors.push(SchemaError::BadValue {
                            element: child.name.clone(),
                            value: text,
                        });
                    }
                }
            }
        }
        for decl in &self.elements {
            let n = counts.get(decl.name.as_str()).copied().unwrap_or(0);
            if !decl.occurs.accepts(n) {
                errors.push(SchemaError::BadOccurrence {
                    element: decl.name.clone(),
                    found: n,
                });
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

/// A single schema violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The root element name did not match.
    WrongRoot {
        /// Name the schema expects.
        expected: String,
        /// Name actually found.
        found: String,
    },
    /// A required attribute is absent.
    MissingAttribute(String),
    /// An attribute not declared by the schema is present.
    UndeclaredAttribute(String),
    /// A child element not declared by the schema is present.
    UndeclaredElement(String),
    /// A declared element occurs the wrong number of times.
    BadOccurrence {
        /// Element name.
        element: String,
        /// Number of occurrences found.
        found: usize,
    },
    /// A value does not conform to the declared type.
    BadValue {
        /// Element name.
        element: String,
        /// Offending value.
        value: String,
    },
    /// A non-nillable element has an empty value.
    EmptyValue(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::WrongRoot { expected, found } => {
                write!(
                    f,
                    "wrong root element: expected <{expected}>, found <{found}>"
                )
            }
            SchemaError::MissingAttribute(a) => write!(f, "missing required attribute {a:?}"),
            SchemaError::UndeclaredAttribute(a) => write!(f, "undeclared attribute {a:?}"),
            SchemaError::UndeclaredElement(e) => write!(f, "undeclared element <{e}>"),
            SchemaError::BadOccurrence { element, found } => {
                write!(
                    f,
                    "element <{element}> occurs {found} times, violating schema"
                )
            }
            SchemaError::BadValue { element, value } => {
                write!(f, "element <{element}> has ill-typed value {value:?}")
            }
            SchemaError::EmptyValue(e) => write!(f, "element <{e}> must not be empty"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn blood_test_schema() -> Schema {
        Schema::new("BloodTest")
            .attribute("id", true)
            .attribute("lab", false)
            .element(ElementDecl::required("PatientId", ValueType::Integer))
            .element(ElementDecl::required("CollectedAt", ValueType::DateTime))
            .element(ElementDecl::required(
                "Result",
                ValueType::Enumeration(vec!["negative".into(), "positive".into()]),
            ))
            .element(ElementDecl::optional("Hemoglobin", ValueType::Decimal))
            .element(ElementDecl::optional("Notes", ValueType::String).occurs(Occurs::Many))
    }

    fn valid_doc() -> Element {
        Element::new("BloodTest")
            .attr("id", "bt-1")
            .child(Element::leaf("PatientId", "42"))
            .child(Element::leaf("CollectedAt", "2010-03-01T09:30:00.000Z"))
            .child(Element::leaf("Result", "negative"))
            .child(Element::leaf("Hemoglobin", "13.5"))
    }

    #[test]
    fn valid_document_passes() {
        assert!(blood_test_schema().validate(&valid_doc()).is_ok());
    }

    #[test]
    fn wrong_root_fails_fast() {
        let errs = blood_test_schema()
            .validate(&Element::new("UrineTest"))
            .unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], SchemaError::WrongRoot { .. }));
    }

    #[test]
    fn missing_required_attribute() {
        let mut doc = valid_doc();
        doc.attributes.clear();
        let errs = blood_test_schema().validate(&doc).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SchemaError::MissingAttribute(a) if a == "id")));
    }

    #[test]
    fn undeclared_attribute_and_element() {
        let doc = valid_doc()
            .attr("hacker", "yes")
            .child(Element::leaf("Smuggled", "data"));
        let errs = blood_test_schema().validate(&doc).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SchemaError::UndeclaredAttribute(_))));
        assert!(errs
            .iter()
            .any(|e| matches!(e, SchemaError::UndeclaredElement(_))));
    }

    #[test]
    fn missing_required_element() {
        let doc = Element::new("BloodTest").attr("id", "x");
        let errs = blood_test_schema().validate(&doc).unwrap_err();
        // Three required children missing.
        let occ = errs
            .iter()
            .filter(|e| matches!(e, SchemaError::BadOccurrence { .. }))
            .count();
        assert_eq!(occ, 3);
    }

    #[test]
    fn repeated_singleton_rejected() {
        let doc = valid_doc().child(Element::leaf("Result", "positive"));
        let errs = blood_test_schema().validate(&doc).unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, SchemaError::BadOccurrence { element, found: 2 } if element == "Result")
        ));
    }

    #[test]
    fn many_occurrence_allows_repeats() {
        let doc = valid_doc()
            .child(Element::leaf("Notes", "a"))
            .child(Element::leaf("Notes", "b"))
            .child(Element::leaf("Notes", "c"));
        assert!(blood_test_schema().validate(&doc).is_ok());
    }

    #[test]
    fn ill_typed_values_rejected() {
        let cases = [
            ("PatientId", "not-a-number"),
            ("CollectedAt", "yesterday"),
            ("Result", "inconclusive"),
            ("Hemoglobin", "13.5.2"),
        ];
        for (field, bad) in cases {
            let mut doc = Element::new("BloodTest").attr("id", "x");
            for child in valid_doc().elements() {
                if child.name != field {
                    doc.children.push(crate::doc::Node::Element(child.clone()));
                }
            }
            let doc = doc.child(Element::leaf(field, bad));
            let errs = blood_test_schema().validate(&doc).unwrap_err();
            assert!(
                errs.iter().any(
                    |e| matches!(e, SchemaError::BadValue { element, .. } if element == field)
                ),
                "expected BadValue for {field}={bad}, got {errs:?}"
            );
        }
    }

    #[test]
    fn empty_value_rejected_unless_nillable() {
        let schema = Schema::new("r").element(ElementDecl::required("x", ValueType::String));
        let doc = Element::new("r").child(Element::new("x"));
        assert!(schema.validate(&doc).is_err());

        let schema_nillable =
            Schema::new("r").element(ElementDecl::required("x", ValueType::String).nillable());
        assert!(schema_nillable.validate(&doc).is_ok());
    }

    #[test]
    fn value_type_accepts_matrix() {
        assert!(ValueType::Integer.accepts("-17"));
        assert!(!ValueType::Integer.accepts("1.5"));
        assert!(ValueType::Decimal.accepts("0.5"));
        assert!(ValueType::Decimal.accepts("-12"));
        assert!(!ValueType::Decimal.accepts(".5"));
        assert!(!ValueType::Decimal.accepts("5."));
        assert!(ValueType::Boolean.accepts("true"));
        assert!(!ValueType::Boolean.accepts("True"));
        assert!(ValueType::DateTime.accepts("2010-09-13T12:00:00Z"));
        assert!(ValueType::DateTime.accepts("2010-09-13T12:00:00.123Z"));
        assert!(!ValueType::DateTime.accepts("2010-13-13T12:00:00Z"));
        assert!(!ValueType::DateTime.accepts("2010-09-13 12:00:00"));
    }

    #[test]
    fn at_least_one_occurrence() {
        let schema = Schema::new("r")
            .element(ElementDecl::required("item", ValueType::String).occurs(Occurs::AtLeastOne));
        assert!(schema.validate(&Element::new("r")).is_err());
        let one = Element::new("r").child(Element::leaf("item", "a"));
        assert!(schema.validate(&one).is_ok());
    }
}
