//! A recursive-descent parser for the XML subset the platform emits.
//!
//! Supported: elements, attributes (single or double quoted), text with
//! the predefined entities and numeric character references, comments,
//! CDATA sections, and an optional leading XML declaration. Not
//! supported (by design): DTDs, processing instructions other than the
//! declaration, external entities.

use std::fmt;

use crate::doc::{Element, Node};
use crate::escape::unescape;

/// Error produced when parsing malformed XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete document into its root element.
///
/// Trailing content after the root element (other than whitespace or
/// comments) is an error, as is an empty document.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_prolog();
    let root = p.parse_element()?;
    p.skip_misc();
    if p.pos != p.input.len() {
        return Err(p.err("unexpected content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_ws();
        if self.rest().starts_with("<?xml") {
            if let Some(end) = self.rest().find("?>") {
                self.pos += end + 2;
            }
        }
        self.skip_misc();
    }

    /// Skip whitespace and comments between top-level constructs.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => {
                        self.pos = self.input.len();
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = &self.input[start..self.pos];
        if name.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '.') {
            return Err(self.err(format!("invalid name start in {name:?}")));
        }
        Ok(name.to_string())
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let start = self.pos;
        loop {
            match self.peek() {
                Some(c) if c == quote => break,
                Some('<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        let raw = &self.input[start..self.pos];
        self.bump(); // closing quote
        unescape(raw).ok_or_else(|| self.err(format!("bad entity in attribute value {raw:?}")))
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());
        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.bump();
                    self.expect(">")?;
                    return Ok(element);
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    if element.attribute(&key).is_some() {
                        return Err(self.err(format!("duplicate attribute {key:?}")));
                    }
                    element.attributes.push((key, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content until the matching end tag.
        loop {
            if self.eat("<!--") {
                match self.rest().find("-->") {
                    Some(end) => self.pos += end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
                continue;
            }
            if self.eat("<![CDATA[") {
                match self.rest().find("]]>") {
                    Some(end) => {
                        let text = self.rest()[..end].to_string();
                        self.pos += end + 3;
                        element.children.push(Node::Text(text));
                    }
                    None => return Err(self.err("unterminated CDATA section")),
                }
                continue;
            }
            if self.rest().starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != name {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{name}>, found </{end_name}>"
                    )));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(element);
            }
            match self.peek() {
                Some('<') => {
                    let child = self.parse_element()?;
                    element.children.push(Node::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != '<') {
                        self.bump();
                    }
                    let raw = &self.input[start..self.pos];
                    let text = unescape(raw)
                        .ok_or_else(|| self.err(format!("bad entity in text {raw:?}")))?;
                    if !text.trim().is_empty() {
                        element.children.push(Node::Text(text));
                    }
                }
                None => return Err(self.err(format!("unterminated element <{name}>"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{to_string, to_string_pretty};

    #[test]
    fn parses_simple_document() {
        let doc = parse(r#"<a k="v"><b>text</b><c/></a>"#).unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.attribute("k"), Some("v"));
        assert_eq!(doc.child_text("b").unwrap(), "text");
        assert!(doc.find("c").unwrap().is_empty());
    }

    #[test]
    fn writer_parser_roundtrip() {
        let e = Element::new("Policy")
            .attr("PolicyId", "p-1")
            .attr("note", r#"quotes " and ' here"#)
            .child(Element::new("Target").child(Element::leaf("Subject", "family doctor & co")))
            .child(Element::new("Rule").attr("Effect", "Permit"));
        let compact = parse(&to_string(&e)).unwrap();
        assert_eq!(compact, e);
        let pretty = parse(&to_string_pretty(&e)).unwrap();
        assert_eq!(pretty, e);
    }

    #[test]
    fn accepts_declaration_and_comments() {
        let doc = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- header -->\n<root>\n  <!-- inner -->\n  <x>1</x>\n</root>\n<!-- trailer -->",
        )
        .unwrap();
        assert_eq!(doc.child_text("x").unwrap(), "1");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse("<r><![CDATA[a <raw> & b]]></r>").unwrap();
        assert_eq!(doc.text_content(), "a <raw> & b");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        for bad in [
            "<a>",
            "<a",
            "<a href=",
            "<a href=\"x",
            "<a><!-- never closed",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_bad_name_start() {
        assert!(parse("<1a/>").is_err());
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a k='v \"w\"'/>").unwrap();
        assert_eq!(doc.attribute("k"), Some("v \"w\""));
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.children.len(), 1);
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let doc = parse(r#"<a k="1 &lt; 2">&amp;&#65;</a>"#).unwrap();
        assert_eq!(doc.attribute("k"), Some("1 < 2"));
        assert_eq!(doc.text_content(), "&A");
    }

    #[test]
    fn deeply_nested_roundtrip() {
        let mut e = Element::leaf("leaf", "bottom");
        for i in 0..64 {
            e = Element::new(format!("level{i}")).child(e);
        }
        let parsed = parse(&to_string(&e)).unwrap();
        assert_eq!(parsed.subtree_size(), 65);
    }
}
