//! Escaping and unescaping of XML character data.

use std::borrow::Cow;

/// Escape text content (`&`, `<`, `>`).
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_inner(s, false)
}

/// Escape attribute values (`&`, `<`, `>`, `"`, `'`).
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_inner(s, true)
}

fn escape_inner(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\'')));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Expand the five predefined entities plus decimal/hex character
/// references. Unknown entities are an error (returned as `None`).
pub fn unescape(s: &str) -> Option<String> {
    if !s.contains('&') {
        return Some(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest.find(';')?;
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) = entity.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
                out.push(char::from_u32(code)?);
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_borrowed() {
        assert!(matches!(escape_text("hello"), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        // Quotes are left alone in text content.
        assert_eq!(escape_text(r#"say "hi""#), r#"say "hi""#);
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr(r#"a"b'c"#), "a&quot;b&apos;c");
    }

    #[test]
    fn unescape_roundtrip() {
        let original = r#"<results> "AIDS test" & more's </results>"#;
        let escaped = escape_attr(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn unescape_char_references() {
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
        assert_eq!(unescape("caf&#xE9;").unwrap(), "café");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(unescape("&nbsp;").is_none());
        assert!(unescape("&unterminated").is_none());
        assert!(unescape("&#xZZ;").is_none());
        assert!(unescape("&#1114112;").is_none()); // beyond char::MAX
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(escape_text("trentò"), "trentò");
        assert_eq!(unescape("trentò").unwrap(), "trentò");
    }
}
