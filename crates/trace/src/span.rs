//! Spans and their privacy-safe attributes.

use std::fmt;

use css_types::{ActorId, EventTypeId, GlobalEventId, Purpose};

use crate::id::{SpanId, TraceId};

/// How the operation a span covers ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanStatus {
    /// Completed normally.
    #[default]
    Ok,
    /// Ended in a policy/consent/notification denial — an expected,
    /// correct outcome of enforcement, not a fault.
    Denied,
    /// Ended in an infrastructure or validation error.
    Error,
}

impl SpanStatus {
    /// Stable short code used by the exporters.
    pub fn code(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Denied => "denied",
            SpanStatus::Error => "error",
        }
    }
}

/// The value side of an attribute. Private on purpose: no code outside
/// this crate can name it, so no constructor taking arbitrary data can
/// be added without editing this file (which the `trace-hygiene` lint
/// rule watches).
#[derive(Debug, Clone, PartialEq, Eq)]
enum AttrValue {
    /// A numeric platform identifier (actor, event).
    Id(u64),
    /// A closed-vocabulary code (event type, purpose code, decision).
    Code(String),
    /// A static stage/label known at compile time.
    Static(&'static str),
    /// A boolean flag.
    Flag(bool),
}

/// One privacy-safe key/value pair on a span.
///
/// The only way to build one is the closed constructor set below —
/// every constructor takes a non-identifying platform type (ids, type
/// codes, purposes, booleans, `&'static str` stage names), never a
/// free-form runtime string. Decrypted person identities and detail
/// payload fields are therefore unrepresentable in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAttr {
    key: &'static str,
    value: AttrValue,
}

impl SpanAttr {
    /// The global event id involved.
    pub fn event(id: GlobalEventId) -> SpanAttr {
        SpanAttr {
            key: "event",
            value: AttrValue::Id(id.value()),
        }
    }

    /// The class of event involved (catalog-public code, not data).
    pub fn event_type(ty: &EventTypeId) -> SpanAttr {
        SpanAttr {
            key: "event_type",
            value: AttrValue::Code(ty.to_string()),
        }
    }

    /// The acting party (an organizational id, not a person).
    pub fn actor(id: ActorId) -> SpanAttr {
        SpanAttr {
            key: "actor",
            value: AttrValue::Id(id.value()),
        }
    }

    /// The stated purpose's closed-vocabulary code.
    pub fn purpose(p: &Purpose) -> SpanAttr {
        SpanAttr {
            key: "purpose",
            value: AttrValue::Code(p.code().to_string()),
        }
    }

    /// The enforcement outcome: permit or deny.
    pub fn decision(permit: bool) -> SpanAttr {
        SpanAttr {
            key: "decision",
            value: AttrValue::Static(if permit { "permit" } else { "deny" }),
        }
    }

    /// An Algorithm-1/2 stage label (compile-time constant).
    pub fn stage(name: &'static str) -> SpanAttr {
        SpanAttr {
            key: "stage",
            value: AttrValue::Static(name),
        }
    }

    /// Whether the PDP answered from its decision cache.
    pub fn cache_hit(hit: bool) -> SpanAttr {
        SpanAttr {
            key: "cache_hit",
            value: AttrValue::Flag(hit),
        }
    }

    /// The attribute key.
    pub fn key(&self) -> &'static str {
        self.key
    }

    /// The rendered value (what the exporters print).
    pub fn render_value(&self) -> String {
        match &self.value {
            AttrValue::Id(v) => v.to_string(),
            AttrValue::Code(c) => c.clone(),
            AttrValue::Static(s) => (*s).to_string(),
            AttrValue::Flag(b) => b.to_string(),
        }
    }
}

impl fmt::Display for SpanAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.key, self.render_value())
    }
}

/// One finished span: a named slice of a trace with causal parentage.
///
/// Spans are plain data; they are produced by [`SpanGuard`]s and read
/// back from the collector by the exporters and by tests.
///
/// [`SpanGuard`]: crate::SpanGuard
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id, unique within the collector.
    pub id: SpanId,
    /// The causal parent, `None` for a root span.
    pub parent: Option<SpanId>,
    /// Static operation name (e.g. `"publish"`, `"pep.pdp_evaluate"`).
    pub name: &'static str,
    /// Start offset from the tracer's origin, nanoseconds.
    pub start_ns: u64,
    /// End offset from the tracer's origin, nanoseconds.
    pub end_ns: u64,
    /// Outcome.
    pub status: SpanStatus,
    /// Privacy-safe attributes.
    pub attrs: Vec<SpanAttr>,
}

impl Span {
    /// Wall-clock duration of the span, nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_render_key_value() {
        assert_eq!(SpanAttr::event(GlobalEventId(7)).to_string(), "event=7");
        assert_eq!(SpanAttr::actor(ActorId(3)).to_string(), "actor=3");
        assert_eq!(
            SpanAttr::event_type(&EventTypeId::v1("blood-test")).to_string(),
            "event_type=blood-test@v1"
        );
        assert_eq!(
            SpanAttr::purpose(&Purpose::HealthcareTreatment).render_value(),
            Purpose::HealthcareTreatment.code()
        );
        assert_eq!(SpanAttr::decision(true).to_string(), "decision=permit");
        assert_eq!(SpanAttr::decision(false).to_string(), "decision=deny");
        assert_eq!(SpanAttr::stage("pip_resolve").key(), "stage");
        assert_eq!(SpanAttr::cache_hit(true).to_string(), "cache_hit=true");
    }

    #[test]
    fn status_codes_are_stable() {
        assert_eq!(SpanStatus::Ok.code(), "ok");
        assert_eq!(SpanStatus::Denied.code(), "denied");
        assert_eq!(SpanStatus::Error.code(), "error");
        assert_eq!(SpanStatus::default(), SpanStatus::Ok);
    }

    #[test]
    fn span_duration_saturates() {
        let span = Span {
            trace: TraceId(1),
            id: SpanId(1),
            parent: None,
            name: "x",
            start_ns: 10,
            end_ns: 4,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
        };
        assert_eq!(span.duration_ns(), 0);
    }
}
