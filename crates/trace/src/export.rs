//! Span exporters: a human-readable text tree and Chrome `trace_event`
//! JSON loadable in `about:tracing` or [Perfetto](https://ui.perfetto.dev).

use std::collections::BTreeMap;

use crate::id::{SpanId, TraceId};
use crate::span::Span;

/// Render spans as an indented tree, one trace after another.
///
/// Traces appear in first-span order; within a trace, siblings sort by
/// start time. Each line shows name, duration, status, and attributes:
///
/// ```text
/// trace 0000002a00000001
///   publish 41.2us ok [event=1]
///     bus.route 8.1us ok
///       bus.deliver 3.0us ok
/// ```
pub fn render_text_tree(spans: &[Span]) -> String {
    let mut out = String::new();
    for (trace, members) in group_by_trace(spans) {
        out.push_str(&format!("trace {trace}\n"));
        let mut children: BTreeMap<Option<SpanId>, Vec<&Span>> = BTreeMap::new();
        for span in &members {
            children.entry(span.parent).or_default().push(span);
        }
        for list in children.values_mut() {
            list.sort_by_key(|s| (s.start_ns, s.id));
        }
        // Roots: spans with no parent, or whose parent is not in the
        // buffer (evicted by the ring) — render those at top level too
        // so a lapped buffer still produces a complete listing.
        let present: std::collections::BTreeSet<SpanId> = members.iter().map(|s| s.id).collect();
        let mut roots: Vec<&Span> = members
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !present.contains(&p)))
            .copied()
            .collect();
        roots.sort_by_key(|s| (s.start_ns, s.id));
        for root in roots {
            render_subtree(root, &children, 1, &mut out);
        }
    }
    out
}

fn render_subtree(
    span: &Span,
    children: &BTreeMap<Option<SpanId>, Vec<&Span>>,
    depth: usize,
    out: &mut String,
) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} {} {}",
        span.name,
        format_duration(span.duration_ns()),
        span.status.code()
    ));
    if !span.attrs.is_empty() {
        let rendered: Vec<String> = span.attrs.iter().map(|a| a.to_string()).collect();
        out.push_str(&format!(" [{}]", rendered.join(" ")));
    }
    out.push('\n');
    if let Some(kids) = children.get(&Some(span.id)) {
        for kid in kids {
            render_subtree(kid, children, depth + 1, out);
        }
    }
}

fn format_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}us", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Render spans as Chrome `trace_event` JSON (duration `B`/`E` pairs).
///
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>.
/// Every trace gets its own `tid` lane so concurrent requests don't
/// interleave; `ts` is microseconds with nanosecond fractions. Events
/// are emitted in an order that satisfies the format's stack
/// discipline: sorted by timestamp, with `E` events before `B` events
/// at equal timestamps, inner `E`s closing before outer ones, and
/// outer `B`s opening before inner ones.
pub fn render_chrome_trace(spans: &[Span]) -> String {
    // tid = first-seen index of the span's trace, for stable lanes.
    let mut lanes: BTreeMap<TraceId, usize> = BTreeMap::new();
    for span in spans {
        let next = lanes.len() + 1;
        lanes.entry(span.trace).or_insert(next);
    }

    // (ts_ns, kind, depth-tiebreak start_ns, span)
    enum Kind {
        Begin,
        End,
    }
    let mut events: Vec<(u64, Kind, u64, &Span)> = Vec::with_capacity(spans.len() * 2);
    for span in spans {
        events.push((span.start_ns, Kind::Begin, span.start_ns, span));
        events.push((span.end_ns, Kind::End, span.start_ns, span));
    }
    events.sort_by(|a, b| {
        a.0.cmp(&b.0).then_with(|| match (&a.1, &b.1) {
            // At the same instant, close spans before opening new ones.
            (Kind::End, Kind::Begin) => std::cmp::Ordering::Less,
            (Kind::Begin, Kind::End) => std::cmp::Ordering::Greater,
            // Two begins: the outer (earlier-started… same ts, so fall
            // back to span id order = creation order) opens first.
            (Kind::Begin, Kind::Begin) => a.3.id.cmp(&b.3.id),
            // Two ends: the inner (later-started) closes first.
            (Kind::End, Kind::End) => b.2.cmp(&a.2).then(b.3.id.cmp(&a.3.id)),
        })
    });

    let mut out = String::from("{\"traceEvents\":[");
    for (i, (ts_ns, kind, _, span)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = lanes[&span.trace];
        let ts = format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000);
        match kind {
            Kind::Begin => {
                out.push_str(&format!(
                    "{{\"name\":{},\"cat\":\"css\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{",
                    json_string(span.name)
                ));
                out.push_str(&format!(
                    "\"trace\":{}",
                    json_string(&span.trace.to_string())
                ));
                out.push_str(&format!(",\"status\":{}", json_string(span.status.code())));
                for attr in &span.attrs {
                    out.push_str(&format!(
                        ",{}:{}",
                        json_string(attr.key()),
                        json_string(&attr.render_value())
                    ));
                }
                out.push_str("}}");
            }
            Kind::End => {
                out.push_str(&format!(
                    "{{\"name\":{},\"cat\":\"css\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                    json_string(span.name)
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn group_by_trace(spans: &[Span]) -> Vec<(TraceId, Vec<&Span>)> {
    let mut order: Vec<TraceId> = Vec::new();
    let mut groups: BTreeMap<TraceId, Vec<&Span>> = BTreeMap::new();
    for span in spans {
        if !groups.contains_key(&span.trace) {
            order.push(span.trace);
        }
        groups.entry(span.trace).or_default().push(span);
    }
    order
        .into_iter()
        .map(|t| {
            let members = groups.remove(&t).unwrap_or_default();
            (t, members)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanAttr, SpanStatus};
    use css_types::GlobalEventId;

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start: u64,
        end: u64,
    ) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            name,
            start_ns: start,
            end_ns: end,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn text_tree_nests_and_orders_children() {
        let spans = vec![
            span(1, 1, None, "publish", 0, 100_000),
            span(1, 3, Some(1), "index.insert", 60_000, 70_000),
            span(1, 2, Some(1), "bus.route", 10_000, 50_000),
        ];
        let text = render_text_tree(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "trace 0000000000000001");
        assert!(lines[1].starts_with("  publish "));
        assert!(lines[2].starts_with("    bus.route "), "{text}");
        assert!(lines[3].starts_with("    index.insert "), "{text}");
    }

    #[test]
    fn text_tree_shows_attrs_and_status() {
        let mut s = span(1, 1, None, "pep.pdp_evaluate", 0, 2_500);
        s.status = SpanStatus::Denied;
        s.attrs.push(SpanAttr::event(GlobalEventId(9)));
        s.attrs.push(SpanAttr::decision(false));
        let text = render_text_tree(&[s]);
        assert!(
            text.contains("pep.pdp_evaluate 2.500us denied [event=9 decision=deny]"),
            "{text}"
        );
    }

    #[test]
    fn text_tree_keeps_orphans_visible() {
        // Parent evicted from the ring: the child must still render.
        let spans = vec![span(1, 5, Some(4), "bus.deliver", 10, 20)];
        let text = render_text_tree(&spans);
        assert!(text.contains("bus.deliver"), "{text}");
    }

    #[test]
    fn chrome_trace_has_matched_begin_end_pairs() {
        let spans = vec![
            span(1, 1, None, "publish", 0, 100_000),
            span(1, 2, Some(1), "bus.route", 10_000, 50_000),
        ];
        let json = render_chrome_trace(&spans);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn chrome_trace_ts_is_microseconds_with_ns_fraction() {
        let spans = vec![span(1, 1, None, "x", 1_234, 5_678)];
        let json = render_chrome_trace(&spans);
        assert!(json.contains("\"ts\":1.234"), "{json}");
        assert!(json.contains("\"ts\":5.678"), "{json}");
    }

    #[test]
    fn chrome_trace_closes_inner_spans_first_at_ties() {
        // Parent and child end at the same instant: the child's E must
        // come first for the viewer's stack to balance.
        let spans = vec![
            span(1, 1, None, "outer", 0, 100),
            span(1, 2, Some(1), "inner", 50, 100),
        ];
        let json = render_chrome_trace(&spans);
        let inner_end = json
            .find("\"name\":\"inner\",\"cat\":\"css\",\"ph\":\"E\"")
            .unwrap();
        let outer_end = json
            .find("\"name\":\"outer\",\"cat\":\"css\",\"ph\":\"E\"")
            .unwrap();
        assert!(inner_end < outer_end, "{json}");
    }

    #[test]
    fn chrome_trace_separates_traces_into_lanes() {
        let spans = vec![span(7, 1, None, "a", 0, 10), span(9, 2, None, "b", 5, 15)];
        let json = render_chrome_trace(&spans);
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
