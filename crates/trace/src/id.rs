//! Trace and span identifiers.
//!
//! Both are deterministic: a trace id mixes the caller's clock reading
//! with a process-local counter, a span id is purely sequential. Under
//! a simulated clock the very same run produces the very same ids,
//! which is what makes trace assertions in tests exact instead of
//! pattern matches.

use std::fmt;
use std::str::FromStr;

/// Identifier shared by every span of one request's causal tree, and
/// stamped into the audit records the request produces.
///
/// The `Display` form is 16 lowercase hex digits (the audit XML and the
/// Chrome export both use it); [`TraceId::from_str`] parses it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mint an id from a clock reading and a sequence number.
    ///
    /// The millisecond timestamp fills the high 32 bits and the counter
    /// the low 32, so ids are unique per process as long as fewer than
    /// 2³² traces start on the same clock value, and sort roughly by
    /// start time. Counters start at 1, so a minted id is never zero.
    pub fn mint(now_millis: u64, counter: u64) -> TraceId {
        TraceId(((now_millis & 0xFFFF_FFFF) << 32) | (counter & 0xFFFF_FFFF))
    }

    /// Raw numeric value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for TraceId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        u64::from_str_radix(s, 16).map(TraceId)
    }
}

/// Identifier of one span within its collector, assigned sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// Raw numeric value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_deterministic() {
        assert_eq!(TraceId::mint(5, 1), TraceId::mint(5, 1));
        assert_ne!(TraceId::mint(5, 1), TraceId::mint(5, 2));
        assert_ne!(TraceId::mint(5, 1), TraceId::mint(6, 1));
    }

    #[test]
    fn mint_layout_sorts_by_time() {
        assert!(TraceId::mint(10, 900) < TraceId::mint(11, 1));
    }

    #[test]
    fn mint_never_zero_with_positive_counter() {
        assert_ne!(TraceId::mint(0, 1), TraceId(0));
    }

    #[test]
    fn display_roundtrips() {
        let id = TraceId::mint(0x1234, 42);
        let text = id.to_string();
        assert_eq!(text.len(), 16);
        assert_eq!(text.parse::<TraceId>().unwrap(), id);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-hex!".parse::<TraceId>().is_err());
    }
}
