//! Causal tracing for the CSS platform.
//!
//! Aggregate metrics (css-telemetry) answer "how fast is the platform";
//! this crate answers "what happened to *this* request": one trace per
//! publish or detail request, spans for each stage it crossed, and a
//! `trace` dimension stamped into the audit log so accountability
//! queries can join back to the causal record.
//!
//! Privacy is enforced **by construction**, mirroring the
//! detail-confinement invariant: a [`Span`] carries only a static name
//! and [`SpanAttr`] values built through a closed constructor set
//! (event id, event type, actor id, purpose code, decision, stage,
//! cache hit). There is no constructor taking a free-form string, so
//! decrypted identities or detail-payload fields are unrepresentable
//! in a trace. The `trace-hygiene` css-lint rule keeps it that way.
//!
//! Identifiers are deterministic: a [`TraceId`] is seeded from the
//! caller-supplied clock plus a process-local counter — no ambient
//! `Date::now`-style entropy, so simulated clocks yield reproducible
//! ids in tests.
//!
//! Finished spans land in a bounded ring-buffer [`SpanCollector`]
//! (drop-oldest; the drop counter is exported through the shared
//! `MetricsRegistry`) and can be rendered as a text tree
//! ([`render_text_tree`]) or as Chrome `trace_event` JSON
//! ([`render_chrome_trace`]) for `about:tracing` / Perfetto.

mod collector;
mod export;
mod id;
mod span;
mod tracer;

pub use collector::SpanCollector;
pub use export::{render_chrome_trace, render_text_tree};
pub use id::{SpanId, TraceId};
pub use span::{Span, SpanAttr, SpanStatus};
pub use tracer::{SpanGuard, TraceContext, Tracer};
