//! The tracer, live span guards, and the propagated trace context.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use css_telemetry::MetricsRegistry;
use css_types::Timestamp;

use crate::collector::SpanCollector;
use crate::id::{SpanId, TraceId};
use crate::span::{Span, SpanAttr, SpanStatus};

struct TracerInner {
    collector: SpanCollector,
    /// Monotonic origin; span offsets are measured from here so span
    /// ordering never goes backwards even if the wall clock does.
    origin: Instant,
    trace_seq: AtomicU64,
    span_seq: AtomicU64,
}

/// Entry point of the tracing layer.
///
/// A `Tracer` is cheap to clone (an `Arc` inside) and is either
/// *enabled* — spans are timed and recorded into its ring-buffer
/// collector — or *disabled* ([`Tracer::disabled`], the default), in
/// which case every operation is a no-op with near-zero cost. All
/// platform components accept a `Tracer` and work identically either
/// way, so tracing is strictly opt-in.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing (the default everywhere).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer retaining at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                collector: SpanCollector::new(capacity),
                origin: Instant::now(),
                trace_seq: AtomicU64::new(1),
                span_seq: AtomicU64::new(1),
            })),
        }
    }

    /// An enabled tracer that also exports `trace.spans_recorded` /
    /// `trace.spans_dropped` counters through `registry`.
    pub fn with_metrics(capacity: usize, registry: &MetricsRegistry) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                collector: SpanCollector::with_metrics(capacity, registry),
                origin: Instant::now(),
                trace_seq: AtomicU64::new(1),
                span_seq: AtomicU64::new(1),
            })),
        }
    }

    /// Whether spans are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a new trace with a root span named `name`.
    ///
    /// `now` seeds the [`TraceId`] (high bits = milliseconds, low bits =
    /// a process-local counter), so a simulated clock yields
    /// reproducible ids. On a disabled tracer this returns a no-op
    /// guard whose `trace_id()` is `None`.
    pub fn root(&self, name: &'static str, now: Timestamp) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => {
                let counter = inner.trace_seq.fetch_add(1, Ordering::Relaxed);
                let trace = TraceId::mint(now.as_millis(), counter);
                SpanGuard::live(self.clone(), trace, None, name)
            }
        }
    }

    /// Copy out the finished spans, oldest first. Empty when disabled.
    pub fn finished_spans(&self) -> Vec<Span> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.collector.snapshot(),
        }
    }

    /// Spans recorded over the tracer's lifetime.
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.collector.recorded())
    }

    /// Spans lost to ring-buffer overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.collector.dropped())
    }

    fn now_ns(inner: &TracerInner) -> u64 {
        inner.origin.elapsed().as_nanos() as u64
    }

    fn next_span_id(inner: &TracerInner) -> SpanId {
        SpanId(inner.span_seq.fetch_add(1, Ordering::Relaxed))
    }
}

/// A live span. Records itself into the collector exactly once — on
/// [`SpanGuard::finish`] or, failing that, on `Drop`, so early returns
/// and panics between stages still leave a (partial) causal record.
pub struct SpanGuard {
    tracer: Tracer,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start_ns: u64,
    status: SpanStatus,
    attrs: Vec<SpanAttr>,
    done: bool,
}

impl SpanGuard {
    fn noop() -> SpanGuard {
        SpanGuard {
            tracer: Tracer::disabled(),
            trace: TraceId(0),
            id: SpanId(0),
            parent: None,
            name: "",
            start_ns: 0,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
            done: true,
        }
    }

    fn live(
        tracer: Tracer,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
    ) -> SpanGuard {
        let inner = tracer
            .inner
            .as_ref()
            .expect("live span needs an enabled tracer");
        let start_ns = Tracer::now_ns(inner);
        let id = Tracer::next_span_id(inner);
        SpanGuard {
            tracer: tracer.clone(),
            trace,
            id,
            parent,
            name,
            start_ns,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
            done: false,
        }
    }

    /// Attach a privacy-safe attribute. No-op on a disabled guard.
    pub fn attr(&mut self, attr: SpanAttr) {
        if self.tracer.is_enabled() {
            self.attrs.push(attr);
        }
    }

    /// Mark the span's outcome (defaults to [`SpanStatus::Ok`]).
    pub fn set_status(&mut self, status: SpanStatus) {
        self.status = status;
    }

    /// The id of the trace this span belongs to; `None` when disabled.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.tracer.is_enabled().then_some(self.trace)
    }

    /// A propagatable context with this span as the parent.
    pub fn context(&self) -> TraceContext {
        if self.tracer.is_enabled() {
            TraceContext {
                tracer: self.tracer.clone(),
                trace: self.trace,
                parent: Some(self.id),
            }
        } else {
            TraceContext::disabled()
        }
    }

    /// End the span now and record it. Idempotent with `Drop`.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if let Some(inner) = self.tracer.inner.as_ref() {
            let end_ns = Tracer::now_ns(inner);
            inner.collector.record(Span {
                trace: self.trace,
                id: self.id,
                parent: self.parent,
                name: self.name,
                start_ns: self.start_ns,
                end_ns,
                status: self.status,
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

/// The piece of a trace that travels across component boundaries:
/// which tracer, which trace, and which span is the current parent.
#[derive(Clone)]
pub struct TraceContext {
    tracer: Tracer,
    trace: TraceId,
    parent: Option<SpanId>,
}

impl TraceContext {
    /// A context that produces only no-op children.
    pub fn disabled() -> TraceContext {
        TraceContext {
            tracer: Tracer::disabled(),
            trace: TraceId(0),
            parent: None,
        }
    }

    /// Start a child span of this context's parent.
    pub fn child(&self, name: &'static str) -> SpanGuard {
        if self.tracer.is_enabled() {
            SpanGuard::live(self.tracer.clone(), self.trace, self.parent, name)
        } else {
            SpanGuard::noop()
        }
    }

    /// Start a child span of `ctx` when present, a no-op guard when not.
    /// The idiom for optionally-traced call sites.
    pub fn child_opt(ctx: Option<&TraceContext>, name: &'static str) -> SpanGuard {
        match ctx {
            Some(c) => c.child(name),
            None => SpanGuard::noop(),
        }
    }

    /// The trace id carried by this context; `None` when disabled.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.tracer.is_enabled().then_some(self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let mut root = tracer.root("publish", Timestamp::EPOCH);
        assert!(root.trace_id().is_none());
        root.attr(SpanAttr::decision(true));
        let ctx = root.context();
        assert!(ctx.trace_id().is_none());
        let child = ctx.child("bus.route");
        child.finish();
        root.finish();
        assert!(tracer.finished_spans().is_empty());
        assert_eq!(tracer.recorded(), 0);
    }

    #[test]
    fn root_and_child_share_a_trace() {
        let tracer = Tracer::new(64);
        let root = tracer.root("publish", Timestamp(42));
        let trace = root.trace_id().unwrap();
        let ctx = root.context();
        assert_eq!(ctx.trace_id(), Some(trace));
        let child = ctx.child("bus.route");
        let grandchild = child.context().child("bus.deliver");
        grandchild.finish();
        child.finish();
        root.finish();

        let spans = tracer.finished_spans();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.trace == trace));
        let root_span = spans.iter().find(|s| s.name == "publish").unwrap();
        let route = spans.iter().find(|s| s.name == "bus.route").unwrap();
        let deliver = spans.iter().find(|s| s.name == "bus.deliver").unwrap();
        assert_eq!(root_span.parent, None);
        assert_eq!(route.parent, Some(root_span.id));
        assert_eq!(deliver.parent, Some(route.id));
    }

    #[test]
    fn trace_id_is_seeded_from_the_clock() {
        let tracer = Tracer::new(16);
        let a = tracer.root("a", Timestamp(7_000));
        let id = a.trace_id().unwrap();
        assert_eq!(id.value() >> 32, 7_000);
        // First trace of this tracer → counter 1.
        assert_eq!(id.value() & 0xFFFF_FFFF, 1);
        a.finish();
    }

    #[test]
    fn drop_records_the_span_like_finish_would() {
        let tracer = Tracer::new(16);
        {
            let mut span = tracer.root("detail_request", Timestamp::EPOCH);
            span.set_status(SpanStatus::Denied);
            // dropped without finish(): early return / panic path
        }
        let spans = tracer.finished_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].status, SpanStatus::Denied);
    }

    #[test]
    fn child_opt_handles_missing_context() {
        let none = TraceContext::child_opt(None, "x");
        assert!(none.trace_id().is_none());
        none.finish();

        let tracer = Tracer::new(16);
        let root = tracer.root("r", Timestamp::EPOCH);
        let ctx = root.context();
        let some = TraceContext::child_opt(Some(&ctx), "x");
        assert_eq!(some.trace_id(), root.trace_id());
        some.finish();
        root.finish();
        assert_eq!(tracer.finished_spans().len(), 2);
    }

    #[test]
    fn attrs_and_status_land_on_the_recorded_span() {
        let tracer = Tracer::new(16);
        let mut span = tracer.root("pep.pdp_evaluate", Timestamp::EPOCH);
        span.attr(SpanAttr::cache_hit(true));
        span.attr(SpanAttr::decision(false));
        span.set_status(SpanStatus::Denied);
        span.finish();
        let spans = tracer.finished_spans();
        assert_eq!(spans[0].attrs.len(), 2);
        assert_eq!(spans[0].attrs[1].to_string(), "decision=deny");
        assert_eq!(spans[0].status, SpanStatus::Denied);
    }
}
