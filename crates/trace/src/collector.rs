//! Bounded drop-oldest span storage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use css_telemetry::{Counter, MetricsRegistry};

use crate::span::Span;

/// One ring slot. `seq` holds `claim + 1` of the span currently stored
/// (0 = empty), so a snapshot can tell a slot from the current lap
/// apart from a stale one.
struct Slot {
    seq: AtomicU64,
    span: Mutex<Option<Span>>,
}

/// A bounded ring buffer of finished spans.
///
/// Writers claim a slot with a single `fetch_add` on the head counter —
/// the claim path is lock-free and never blocks on other writers. The
/// claimed slot's payload swap goes through a per-slot mutex (spans own
/// heap data, so they cannot be stored atomically); two writers only
/// ever contend on the *same* slot when the buffer has lapped, which
/// makes the lock effectively uncontended in practice.
///
/// When the buffer is full the **oldest** span is overwritten
/// (drop-oldest): recent causality is worth more than ancient history,
/// the same call the broker makes for monitoring-grade queues. Drops
/// are counted and, when the collector is built over a
/// [`MetricsRegistry`], exported as `trace.spans_dropped` next to
/// `trace.spans_recorded`.
pub struct SpanCollector {
    slots: Box<[Slot]>,
    head: AtomicU64,
    dropped: AtomicU64,
    recorded_metric: Option<Counter>,
    dropped_metric: Option<Counter>,
}

impl SpanCollector {
    /// A collector holding at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None, None)
    }

    /// A collector that also exports `trace.spans_recorded` and
    /// `trace.spans_dropped` counters into `registry`.
    pub fn with_metrics(capacity: usize, registry: &MetricsRegistry) -> Self {
        Self::build(
            capacity,
            Some(registry.counter("trace.spans_recorded")),
            Some(registry.counter("trace.spans_dropped")),
        )
    }

    fn build(capacity: usize, recorded: Option<Counter>, dropped: Option<Counter>) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                span: Mutex::new(None),
            })
            .collect();
        SpanCollector {
            slots,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            recorded_metric: recorded,
            dropped_metric: dropped,
        }
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store one finished span, overwriting the oldest when full.
    pub fn record(&self, span: Span) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim as usize) % self.slots.len()];
        let mut cell = match slot.span.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if cell.replace(span).is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = &self.dropped_metric {
                c.inc();
            }
        }
        slot.seq.store(claim + 1, Ordering::Release);
        drop(cell);
        if let Some(c) = &self.recorded_metric {
            c.inc();
        }
    }

    /// Spans recorded over the collector's lifetime (including dropped).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans overwritten before anyone read them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the retained spans, oldest first.
    ///
    /// Concurrent writers may lap a slot mid-snapshot; the per-slot
    /// sequence check skips any slot that no longer holds the claim the
    /// snapshot expects, so the result is always a consistent suffix of
    /// the record stream.
    pub fn snapshot(&self) -> Vec<Span> {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.slots.len() as u64;
        let start = head.saturating_sub(capacity);
        let mut out = Vec::with_capacity((head - start) as usize);
        for claim in start..head {
            let slot = &self.slots[(claim as usize) % self.slots.len()];
            if slot.seq.load(Ordering::Acquire) != claim + 1 {
                continue;
            }
            let cell = match slot.span.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Re-check under the lock: a writer may have re-claimed the
            // slot between the seq check and the lock.
            if slot.seq.load(Ordering::Acquire) == claim + 1 {
                if let Some(span) = cell.as_ref() {
                    out.push(span.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{SpanId, TraceId};
    use crate::span::SpanStatus;

    fn span(n: u64, name: &'static str) -> Span {
        Span {
            trace: TraceId(1),
            id: SpanId(n),
            parent: None,
            name,
            start_ns: n,
            end_ns: n + 1,
            status: SpanStatus::Ok,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let c = SpanCollector::new(8);
        for i in 0..5 {
            c.record(span(i, "s"));
        }
        let got = c.snapshot();
        assert_eq!(got.len(), 5);
        assert_eq!(
            got.iter().map(|s| s.id.value()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.recorded(), 5);
    }

    #[test]
    fn overflow_drops_oldest_not_newest() {
        let c = SpanCollector::new(4);
        for i in 0..6 {
            c.record(span(i, "s"));
        }
        let got = c.snapshot();
        // The two *oldest* spans (0, 1) were overwritten; the newest
        // four survive in order.
        assert_eq!(
            got.iter().map(|s| s.id.value()).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(c.dropped(), 2);
        assert_eq!(c.recorded(), 6);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = SpanCollector::new(0);
        c.record(span(1, "only"));
        assert_eq!(c.capacity(), 1);
        assert_eq!(c.snapshot().len(), 1);
    }

    #[test]
    fn metrics_exported_through_registry() {
        let registry = MetricsRegistry::new();
        let c = SpanCollector::with_metrics(2, &registry);
        for i in 0..5 {
            c.record(span(i, "s"));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("trace.spans_recorded"), 5);
        assert_eq!(snap.counter("trace.spans_dropped"), 3);
    }

    /// Writers lapping a tiny ring while a reader snapshots
    /// concurrently: every exported span must be internally coherent
    /// (never a tear mixing two spans' fields), and once the writers
    /// quiesce the accounting must close — every attempt is either
    /// retained or counted as dropped.
    #[test]
    fn concurrent_overrun_never_tears_spans_and_accounts_every_attempt() {
        const CAPACITY: usize = 8;
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 2_000;

        // Correlated fields: a span for value n has id=n, start=2n,
        // end=2n+1 — any cross-span tear breaks the correlation.
        fn coherent(s: &Span) -> bool {
            s.start_ns == s.id.value() * 2 && s.end_ns == s.start_ns + 1
        }

        let c = std::sync::Arc::new(SpanCollector::new(CAPACITY));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));

        let reader = {
            let c = c.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut seen = 0u64;
                loop {
                    let done = stop.load(Ordering::Relaxed) != 0;
                    for s in c.snapshot() {
                        assert!(
                            coherent(&s),
                            "torn span: id={} start={} end={}",
                            s.id.value(),
                            s.start_ns,
                            s.end_ns
                        );
                        seen += 1;
                    }
                    if done {
                        break;
                    }
                }
                seen
            })
        };

        let writers: Vec<_> = (0..WRITERS)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        let n = t * PER_WRITER + i;
                        c.record(Span {
                            trace: TraceId(1),
                            id: SpanId(n),
                            parent: None,
                            name: "w",
                            start_ns: n * 2,
                            end_ns: n * 2 + 1,
                            status: SpanStatus::Ok,
                            attrs: Vec::new(),
                        });
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        let seen = reader.join().unwrap();
        assert!(seen > 0, "reader must have observed live snapshots");

        // Quiesced accounting: every attempt was either retained in the
        // ring or counted as an overwrite drop.
        let attempted = WRITERS * PER_WRITER;
        assert_eq!(c.recorded(), attempted);
        let retained = c.snapshot();
        assert!(retained.len() <= CAPACITY);
        assert!(retained.iter().all(coherent));
        assert_eq!(c.dropped(), attempted - retained.len() as u64);
    }

    #[test]
    fn concurrent_recording_loses_nothing_below_capacity() {
        let c = std::sync::Arc::new(SpanCollector::new(4096));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..256 {
                    c.record(span(t * 1000 + i, "w"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.recorded(), 1024);
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.snapshot().len(), 1024);
    }
}
