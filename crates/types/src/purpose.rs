//! Purposes of use.
//!
//! Every detail request carries an explicitly stated purpose; privacy
//! policies enumerate the purposes they allow (Definition 2 in the
//! paper: `S` is a set of purposes). The two-phase protocol is what lets
//! the platform be purpose-aware: consumers must *state why* before any
//! sensitive field is released.

use std::fmt;
use std::str::FromStr;

/// The stated reason for a data access.
///
/// The well-known variants cover the purposes mentioned in the paper
/// (healthcare treatment provisioning, statistical analysis,
/// administration) plus those implied by the scenario (reimbursement and
/// service-efficiency assessment by the governing body, emergency care).
/// `Custom` keeps the vocabulary open for new contracts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Purpose {
    /// Provisioning of healthcare treatment to the data subject.
    HealthcareTreatment,
    /// Provisioning of socio-assistive services (home care, meals, ...).
    SocialAssistance,
    /// Aggregate statistical analysis (e.g. needs of elderly people).
    StatisticalAnalysis,
    /// Administrative processing.
    Administration,
    /// Accountability and reimbursement towards the governing body.
    Reimbursement,
    /// Assessment of the efficiency of delivered services.
    ServiceAssessment,
    /// Emergency access (still logged and policy-gated).
    Emergency,
    /// Auditing inquiries by the privacy guarantor or the data subject.
    Audit,
    /// A contract-specific purpose outside the standard vocabulary.
    Custom(String),
}

impl Purpose {
    /// Stable textual code used in XACML serialization and audit logs.
    pub fn code(&self) -> &str {
        match self {
            Purpose::HealthcareTreatment => "healthcare-treatment",
            Purpose::SocialAssistance => "social-assistance",
            Purpose::StatisticalAnalysis => "statistical-analysis",
            Purpose::Administration => "administration",
            Purpose::Reimbursement => "reimbursement",
            Purpose::ServiceAssessment => "service-assessment",
            Purpose::Emergency => "emergency",
            Purpose::Audit => "audit",
            Purpose::Custom(s) => s,
        }
    }

    /// Parse a purpose code. Parsing never fails (unknown codes become
    /// [`Purpose::Custom`]); this inherent form saves callers from
    /// unwrapping the infallible `FromStr` result on hot paths.
    pub fn from_code(s: &str) -> Purpose {
        match s.parse() {
            Ok(p) => p,
            Err(never) => match never {},
        }
    }

    /// All standard (non-custom) purposes.
    pub fn standard() -> &'static [Purpose] {
        const ALL: &[Purpose] = &[
            Purpose::HealthcareTreatment,
            Purpose::SocialAssistance,
            Purpose::StatisticalAnalysis,
            Purpose::Administration,
            Purpose::Reimbursement,
            Purpose::ServiceAssessment,
            Purpose::Emergency,
            Purpose::Audit,
        ];
        ALL
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

impl FromStr for Purpose {
    type Err = std::convert::Infallible;

    /// Parsing never fails: unknown codes become `Custom`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Purpose::standard()
            .iter()
            .find(|p| p.code() == s)
            .cloned()
            .unwrap_or_else(|| Purpose::Custom(s.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_for_standard_purposes() {
        for p in Purpose::standard() {
            let parsed: Purpose = p.code().parse().unwrap();
            assert_eq!(&parsed, p);
        }
    }

    #[test]
    fn unknown_code_becomes_custom() {
        let p: Purpose = "clinical-trial-x".parse().unwrap();
        assert_eq!(p, Purpose::Custom("clinical-trial-x".into()));
        assert_eq!(p.code(), "clinical-trial-x");
    }

    #[test]
    fn custom_roundtrips_through_display() {
        let p = Purpose::Custom("pilot".into());
        let back: Purpose = p.to_string().parse().unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn purposes_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<Purpose> = [Purpose::Audit, Purpose::HealthcareTreatment, Purpose::Audit]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
