//! Data subjects (patients / citizens).
//!
//! A notification message "contains only the data necessary to identify
//! a person (who)" — identifying but not sensitive information. The
//! platform stores these identifying fields **encrypted** inside the
//! events index. [`PersonIdentity`] is exactly that identifying tuple,
//! kept separate from any clinical payload.

use std::fmt;

use crate::id::PersonId;
use crate::time::Timestamp;

/// The identifying information of a person, as carried inside
/// notification messages.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PersonIdentity {
    /// Platform-wide identifier of the person.
    pub id: PersonId,
    /// National fiscal code (codice fiscale) or equivalent.
    pub fiscal_code: String,
    /// Given name.
    pub name: String,
    /// Family name.
    pub surname: String,
}

impl PersonIdentity {
    /// Canonical byte serialization used for encryption at rest in the
    /// events index. Fields are length-prefixed so the encoding is
    /// injective (no two identities share a serialization).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 12 + self.fiscal_code.len() + self.name.len() + self.surname.len(),
        );
        out.extend_from_slice(&self.id.value().to_le_bytes());
        for s in [&self.fiscal_code, &self.name, &self.surname] {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    /// Inverse of [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut cur = bytes;
        let take = |cur: &mut &[u8], n: usize| -> Option<Vec<u8>> {
            if cur.len() < n {
                return None;
            }
            let (head, tail) = cur.split_at(n);
            *cur = tail;
            Some(head.to_vec())
        };
        let id_bytes = take(&mut cur, 8)?;
        let id = PersonId(u64::from_le_bytes(id_bytes.try_into().ok()?));
        let mut strings = Vec::with_capacity(3);
        for _ in 0..3 {
            let len_bytes = take(&mut cur, 4)?;
            let len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
            let raw = take(&mut cur, len)?;
            strings.push(String::from_utf8(raw).ok()?);
        }
        if !cur.is_empty() {
            return None;
        }
        let surname = strings.pop()?;
        let name = strings.pop()?;
        let fiscal_code = strings.pop()?;
        Some(PersonIdentity {
            id,
            fiscal_code,
            name,
            surname,
        })
    }
}

impl fmt::Display for PersonIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({})", self.name, self.surname, self.fiscal_code)
    }
}

/// A full person record as kept by a source system.
///
/// Only [`PersonIdentity`] ever travels inside notifications; the rest
/// (birth date, address) stays at the source unless a detail schema
/// includes it explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    /// Identifying tuple used in notifications.
    pub identity: PersonIdentity,
    /// Date of birth.
    pub birth_date: Timestamp,
    /// Residential address.
    pub address: String,
    /// Municipality of residence.
    pub municipality: String,
}

impl Person {
    /// Shorthand for the platform-wide person id.
    pub fn id(&self) -> PersonId {
        self.identity.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident() -> PersonIdentity {
        PersonIdentity {
            id: PersonId(42),
            fiscal_code: "RSSMRA45C12L378Y".into(),
            name: "Mario".into(),
            surname: "Rossi".into(),
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let p = ident();
        let bytes = p.to_bytes();
        assert_eq!(PersonIdentity::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn bytes_roundtrip_empty_strings() {
        let p = PersonIdentity {
            id: PersonId(0),
            fiscal_code: String::new(),
            name: String::new(),
            surname: String::new(),
        };
        assert_eq!(PersonIdentity::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn truncated_bytes_rejected() {
        let bytes = ident().to_bytes();
        for cut in [0, 1, 7, 8, 11, bytes.len() - 1] {
            assert!(PersonIdentity::from_bytes(&bytes[..cut]).is_none());
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ident().to_bytes();
        bytes.push(0);
        assert!(PersonIdentity::from_bytes(&bytes).is_none());
    }

    #[test]
    fn non_utf8_rejected() {
        let mut bytes = ident().to_bytes();
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        assert!(PersonIdentity::from_bytes(&bytes).is_none());
    }

    #[test]
    fn display_formats_identity() {
        assert_eq!(ident().to_string(), "Mario Rossi (RSSMRA45C12L378Y)");
    }
}
