//! The common error type shared by all CSS crates.

use std::fmt;

/// Result alias used across the CSS platform.
pub type CssResult<T> = Result<T, CssError>;

/// Errors surfaced by CSS platform operations.
///
/// `AccessDenied` deliberately carries only a coarse reason: per the
/// paper, a denied detail request yields an *Access Denied message*, and
/// the platform must not leak through the error channel which policies
/// exist or which fields an event has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CssError {
    /// A referenced entity does not exist.
    NotFound(String),
    /// An entity with the same identity is already registered.
    AlreadyExists(String),
    /// The request was denied by policy (deny-by-default included).
    AccessDenied(DenyReason),
    /// Input failed validation (schema, wizard step, malformed message).
    Invalid(String),
    /// The data subject withheld or revoked consent.
    ConsentWithheld(String),
    /// A storage-layer failure (I/O, corruption detected by checksums).
    Storage(String),
    /// Serialization / parsing failure (XML, XACML, internal encodings).
    Serialization(String),
    /// A message bus failure (queue overflow, unknown topic, closed sub).
    Bus(String),
    /// Cryptographic failure (MAC mismatch, bad key material).
    Crypto(String),
    /// Identity enforcement is active: the operation needs a validated
    /// credential (the hint names the credentialed accessor to use).
    CredentialRequired(String),
    /// The participant has not signed a contract with the data controller.
    NoContract(String),
    /// A bounded queue is at its high-water mark; retry after the
    /// backlog drains (the platform rejects rather than grow unbounded).
    Backpressure(String),
}

/// Why an access was denied. Coarse by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenyReason {
    /// No policy matched the request (deny-by-default, Definition 3).
    NoMatchingPolicy,
    /// A policy matched but is outside its validity window.
    PolicyExpired,
    /// The purpose stated in the request is not allowed by any policy.
    PurposeNotAllowed,
    /// The requester never received (and cannot see) the notification.
    NotNotified,
    /// The data subject opted out.
    ConsentWithheld,
    /// The requester attempted a non-read action (only reads exist).
    ActionNotPermitted,
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DenyReason::NoMatchingPolicy => "no matching policy",
            DenyReason::PolicyExpired => "policy outside validity window",
            DenyReason::PurposeNotAllowed => "purpose not allowed",
            DenyReason::NotNotified => "requester was not notified of the event",
            DenyReason::ConsentWithheld => "data subject withheld consent",
            DenyReason::ActionNotPermitted => "action not permitted",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CssError::NotFound(s) => write!(f, "not found: {s}"),
            CssError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            CssError::AccessDenied(r) => write!(f, "access denied: {r}"),
            CssError::Invalid(s) => write!(f, "invalid: {s}"),
            CssError::ConsentWithheld(s) => write!(f, "consent withheld: {s}"),
            CssError::Storage(s) => write!(f, "storage error: {s}"),
            CssError::Serialization(s) => write!(f, "serialization error: {s}"),
            CssError::Bus(s) => write!(f, "bus error: {s}"),
            CssError::Crypto(s) => write!(f, "crypto error: {s}"),
            CssError::CredentialRequired(s) => write!(f, "credential required: {s}"),
            CssError::NoContract(s) => write!(f, "no contract: {s}"),
            CssError::Backpressure(s) => write!(f, "backpressure: {s}"),
        }
    }
}

impl std::error::Error for CssError {}

impl From<std::io::Error> for CssError {
    fn from(e: std::io::Error) -> Self {
        CssError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CssError::AccessDenied(DenyReason::NoMatchingPolicy);
        assert_eq!(e.to_string(), "access denied: no matching policy");
    }

    #[test]
    fn io_error_converts_to_storage() {
        let io = std::io::Error::other("disk on fire");
        let e: CssError = io.into();
        assert!(matches!(e, CssError::Storage(_)));
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: E) {}
        assert_err(CssError::NotFound("x".into()));
    }

    #[test]
    fn deny_reasons_display() {
        for r in [
            DenyReason::NoMatchingPolicy,
            DenyReason::PolicyExpired,
            DenyReason::PurposeNotAllowed,
            DenyReason::NotNotified,
            DenyReason::ConsentWithheld,
            DenyReason::ActionNotPermitted,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
