//! Timestamps and clocks.
//!
//! The platform needs time in three places: the *when* of a notification
//! message, the validity window of privacy policies ("valid until" in the
//! elicitation tool, Fig. 7), and audit records. Because detail requests
//! "may arrive months after the publication of the notification", tests
//! and benchmarks need a clock they can advance by months in an instant —
//! [`SimClock`] provides that; production code uses [`SystemClock`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Milliseconds since the Unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Duration of `n` milliseconds.
    pub const fn millis(n: u64) -> Self {
        Duration(n)
    }

    /// Duration of `n` seconds.
    pub const fn seconds(n: u64) -> Self {
        Duration(n * 1_000)
    }

    /// Duration of `n` minutes.
    pub const fn minutes(n: u64) -> Self {
        Duration(n * 60_000)
    }

    /// Duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        Duration(n * 3_600_000)
    }

    /// Duration of `n` days.
    pub const fn days(n: u64) -> Self {
        Duration(n * 86_400_000)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }
}

impl Timestamp {
    /// The Unix epoch.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// This timestamp advanced by `d`.
    pub fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// This timestamp rewound by `d` (saturating at the epoch).
    pub fn minus(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Elapsed time from `earlier` to `self` (zero if `earlier` is later).
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as a civil date-time assuming no leap seconds; good
        // enough for logs and XML payloads.
        let total_secs = self.0 / 1000;
        let millis = self.0 % 1000;
        let (days, secs) = (total_secs / 86_400, total_secs % 86_400);
        let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
        let (y, mo, d) = civil_from_days(days as i64);
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z")
    }
}

/// Convert a day count since 1970-01-01 into (year, month, day).
/// Algorithm from Howard Hinnant's `civil_from_days`.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// A source of the current time.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time from the operating system.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Timestamp(ms)
    }
}

/// A manually-advanced clock for deterministic tests and simulations.
///
/// Cloning shares the underlying instant, so a platform and its test
/// harness can hold the same clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// A simulated clock starting at the given instant.
    pub fn starting_at(t: Timestamp) -> Self {
        SimClock {
            now: Arc::new(AtomicU64::new(t.0)),
        }
    }

    /// Advance the clock by `d` and return the new instant.
    pub fn advance(&self, d: Duration) -> Timestamp {
        let v = self.now.fetch_add(d.0, Ordering::SeqCst) + d.0;
        Timestamp(v)
    }

    /// Jump the clock to an absolute instant (must not go backwards).
    pub fn set(&self, t: Timestamp) {
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp(1_000);
        assert_eq!(t.plus(Duration::seconds(2)), Timestamp(3_000));
        assert_eq!(t.minus(Duration::seconds(2)), Timestamp::EPOCH);
        assert_eq!(Timestamp(5_000).since(t), Duration(4_000));
        assert_eq!(t.since(Timestamp(5_000)), Duration(0));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::days(1).as_millis(), 86_400_000);
        assert_eq!(Duration::hours(2), Duration::minutes(120));
    }

    #[test]
    fn display_renders_epoch() {
        assert_eq!(Timestamp::EPOCH.to_string(), "1970-01-01T00:00:00.000Z");
    }

    #[test]
    fn display_renders_known_date() {
        // 2010-09-13 (SDM 2010 timeframe) at 12:00:00 UTC.
        let days_to_2010_09_13 = 14_865u64;
        let t = Timestamp(days_to_2010_09_13 * 86_400_000 + 12 * 3_600_000);
        assert_eq!(t.to_string(), "2010-09-13T12:00:00.000Z");
    }

    #[test]
    fn sim_clock_advances_and_shares_state() {
        let c = SimClock::starting_at(Timestamp(100));
        let c2 = c.clone();
        c.advance(Duration::millis(50));
        assert_eq!(c2.now(), Timestamp(150));
        c2.set(Timestamp(1_000));
        assert_eq!(c.now(), Timestamp(1_000));
        // set never goes backwards
        c2.set(Timestamp(10));
        assert_eq!(c.now(), Timestamp(1_000));
    }

    #[test]
    fn system_clock_is_after_2020() {
        assert!(SystemClock.now().as_millis() > 1_577_836_800_000);
    }
}

#[cfg(test)]
mod calendar_tests {
    use super::*;

    fn ts(days: u64) -> Timestamp {
        Timestamp(days * 86_400_000)
    }

    #[test]
    fn leap_year_dates_render_correctly() {
        // 2000-02-29 is day 11016 since the epoch (2000 is a leap year
        // despite being divisible by 100, because it divides 400).
        assert_eq!(ts(11_016).to_string(), "2000-02-29T00:00:00.000Z");
        // 1900 was not a leap year; 2100 will not be. Check the days
        // around 2024-02-29 (day 19782).
        assert_eq!(ts(19_782).to_string(), "2024-02-29T00:00:00.000Z");
        assert_eq!(ts(19_783).to_string(), "2024-03-01T00:00:00.000Z");
    }

    #[test]
    fn year_boundaries() {
        // 2009-12-31 → 2010-01-01 (the CSS deployment period).
        assert_eq!(ts(14_609).to_string(), "2009-12-31T00:00:00.000Z");
        assert_eq!(ts(14_610).to_string(), "2010-01-01T00:00:00.000Z");
    }

    #[test]
    fn end_of_day_millis() {
        let t = Timestamp(86_400_000 - 1);
        assert_eq!(t.to_string(), "1970-01-01T23:59:59.999Z");
    }
}
