//! Actors and the organizational hierarchy.
//!
//! In the paper (Section 5.1) a policy *subject* is an **actor**
//! "reflecting the particular hierarchical structure of the
//! organization": an actor can be a top-level organization
//! (`Hospital S. Maria`) or a unit inside it (`Laboratory`,
//! `Dermatology`). A policy granted to an organization implicitly covers
//! its units, so policy matching needs an ancestor test — provided here
//! by [`ActorRegistry::is_same_or_descendant`].

use std::collections::HashMap;
use std::fmt;

use crate::error::{CssError, CssResult};
use crate::id::ActorId;

/// The kind of participant an actor represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActorKind {
    /// A top-level organization (hospital, municipality, province, company).
    Organization,
    /// A department / division / operating unit inside an organization.
    OrganizationalUnit,
    /// A functional role inside a unit (e.g. *family doctor*).
    Role,
}

impl fmt::Display for ActorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActorKind::Organization => "organization",
            ActorKind::OrganizationalUnit => "organizational-unit",
            ActorKind::Role => "role",
        };
        f.write_str(s)
    }
}

/// A participant in the CSS platform: data producer, data consumer, or
/// an organizational unit of either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Actor {
    /// Unique identifier of the actor.
    pub id: ActorId,
    /// Human-readable name (e.g. `"Hospital S. Maria"`).
    pub name: String,
    /// What level of the hierarchy this actor sits at.
    pub kind: ActorKind,
    /// The enclosing actor, if any. `None` for top-level organizations.
    pub parent: Option<ActorId>,
}

impl Actor {
    /// Convenience constructor for a top-level organization.
    pub fn organization(id: ActorId, name: impl Into<String>) -> Self {
        Actor {
            id,
            name: name.into(),
            kind: ActorKind::Organization,
            parent: None,
        }
    }

    /// Convenience constructor for a unit nested under `parent`.
    pub fn unit(id: ActorId, name: impl Into<String>, parent: ActorId) -> Self {
        Actor {
            id,
            name: name.into(),
            kind: ActorKind::OrganizationalUnit,
            parent: Some(parent),
        }
    }

    /// Convenience constructor for a role nested under `parent`.
    pub fn role(id: ActorId, name: impl Into<String>, parent: ActorId) -> Self {
        Actor {
            id,
            name: name.into(),
            kind: ActorKind::Role,
            parent: Some(parent),
        }
    }
}

/// Registry of all actors known to the platform, with hierarchy queries.
///
/// The registry is the authority for the subject side of policy matching:
/// "can actor *X* be granted by a policy written for actor *Y*?" is
/// answered by walking the parent chain.
#[derive(Debug, Default, Clone)]
pub struct ActorRegistry {
    actors: HashMap<ActorId, Actor>,
    children: HashMap<ActorId, Vec<ActorId>>,
}

impl ActorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an actor. The parent, if declared, must already exist.
    ///
    /// Returns an error on duplicate ids, unknown parents, or cycles
    /// (an actor cannot be its own ancestor).
    pub fn register(&mut self, actor: Actor) -> CssResult<()> {
        if self.actors.contains_key(&actor.id) {
            return Err(CssError::AlreadyExists(format!(
                "actor {} already registered",
                actor.id
            )));
        }
        if let Some(parent) = actor.parent {
            if !self.actors.contains_key(&parent) {
                return Err(CssError::NotFound(format!(
                    "parent actor {parent} of {} not registered",
                    actor.name
                )));
            }
            if parent == actor.id {
                return Err(CssError::Invalid("actor cannot be its own parent".into()));
            }
            self.children.entry(parent).or_default().push(actor.id);
        }
        self.actors.insert(actor.id, actor);
        Ok(())
    }

    /// Look up an actor by id.
    pub fn get(&self, id: ActorId) -> Option<&Actor> {
        self.actors.get(&id)
    }

    /// Look up an actor by exact name.
    pub fn find_by_name(&self, name: &str) -> Option<&Actor> {
        self.actors.values().find(|a| a.name == name)
    }

    /// Number of registered actors.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Iterate over all registered actors (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &Actor> {
        self.actors.values()
    }

    /// Direct children of an actor.
    pub fn children_of(&self, id: ActorId) -> &[ActorId] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The chain of ancestors of `id`, nearest first, not including `id`.
    pub fn ancestors(&self, id: ActorId) -> Vec<ActorId> {
        let mut out = Vec::new();
        let mut cur = self.actors.get(&id).and_then(|a| a.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.actors.get(&p).and_then(|a| a.parent);
        }
        out
    }

    /// The top-level organization enclosing `id` (or `id` itself if it is
    /// top-level). `None` if the actor is unknown.
    pub fn organization_of(&self, id: ActorId) -> Option<ActorId> {
        let mut cur = id;
        loop {
            let actor = self.actors.get(&cur)?;
            match actor.parent {
                Some(p) => cur = p,
                None => return Some(cur),
            }
        }
    }

    /// Hierarchical subject test used by policy matching: `true` when
    /// `candidate` is `granted` itself or sits anywhere below it.
    ///
    /// A policy written for `Hospital S. Maria` therefore also covers
    /// requests issued by its `Laboratory`.
    pub fn is_same_or_descendant(&self, candidate: ActorId, granted: ActorId) -> bool {
        if candidate == granted {
            return true;
        }
        self.ancestors(candidate).contains(&granted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (ActorRegistry, ActorId, ActorId, ActorId, ActorId) {
        let mut reg = ActorRegistry::new();
        let hospital = ActorId(1);
        let lab = ActorId(2);
        let derma = ActorId(3);
        let muni = ActorId(4);
        reg.register(Actor::organization(hospital, "Hospital S. Maria"))
            .unwrap();
        reg.register(Actor::unit(lab, "Laboratory", hospital))
            .unwrap();
        reg.register(Actor::unit(derma, "Dermatology", hospital))
            .unwrap();
        reg.register(Actor::organization(muni, "Municipality of Trento"))
            .unwrap();
        (reg, hospital, lab, derma, muni)
    }

    #[test]
    fn descendant_matches_ancestor_grant() {
        let (reg, hospital, lab, _, muni) = sample();
        assert!(reg.is_same_or_descendant(lab, hospital));
        assert!(reg.is_same_or_descendant(hospital, hospital));
        assert!(!reg.is_same_or_descendant(hospital, lab));
        assert!(!reg.is_same_or_descendant(muni, hospital));
    }

    #[test]
    fn ancestors_nearest_first() {
        let mut reg = ActorRegistry::new();
        let org = ActorId(1);
        let unit = ActorId(2);
        let role = ActorId(3);
        reg.register(Actor::organization(org, "Org")).unwrap();
        reg.register(Actor::unit(unit, "Unit", org)).unwrap();
        reg.register(Actor::role(role, "Family Doctor", unit))
            .unwrap();
        assert_eq!(reg.ancestors(role), vec![unit, org]);
        assert_eq!(reg.organization_of(role), Some(org));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (mut reg, hospital, ..) = sample();
        let err = reg
            .register(Actor::organization(hospital, "Other"))
            .unwrap_err();
        assert!(matches!(err, CssError::AlreadyExists(_)));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut reg = ActorRegistry::new();
        let err = reg
            .register(Actor::unit(ActorId(9), "Orphan", ActorId(77)))
            .unwrap_err();
        assert!(matches!(err, CssError::NotFound(_)));
    }

    #[test]
    fn self_parent_rejected() {
        let mut reg = ActorRegistry::new();
        reg.register(Actor::organization(ActorId(1), "Org"))
            .unwrap();
        // An actor listing itself as parent must be rejected even though
        // the id exists by then.
        let mut bad = Actor::unit(ActorId(1), "Loop", ActorId(1));
        bad.id = ActorId(1);
        let err = reg.register(bad).unwrap_err();
        assert!(matches!(
            err,
            CssError::AlreadyExists(_) | CssError::Invalid(_)
        ));
    }

    #[test]
    fn find_by_name_and_children() {
        let (reg, hospital, lab, derma, _) = sample();
        assert_eq!(reg.find_by_name("Laboratory").unwrap().id, lab);
        let kids = reg.children_of(hospital);
        assert!(kids.contains(&lab) && kids.contains(&derma));
    }

    #[test]
    fn organization_of_unknown_is_none() {
        let (reg, ..) = sample();
        assert_eq!(reg.organization_of(ActorId(999)), None);
    }
}
