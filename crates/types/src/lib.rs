//! Shared vocabulary for the CSS platform.
//!
//! This crate defines the domain types every other CSS crate speaks:
//! strongly-typed identifiers, the organizational actor hierarchy used by
//! privacy policies, purposes of use, timestamps and clocks, person
//! (data-subject) records, and the common error type.
//!
//! The types mirror Section 5.1 of the paper: an *actor* reflects the
//! hierarchical structure of an organization (e.g. `Hospital S. Maria`
//! with a `Laboratory` department inside it), a *purpose* is the stated
//! reason for a data access (healthcare treatment, statistical analysis,
//! administration, ...), and events are identified both by a *global*
//! identifier minted by the data controller and a *source* identifier
//! private to the producer.

pub mod actor;
pub mod error;
pub mod id;
pub mod person;
pub mod purpose;
pub mod time;

pub use actor::{Actor, ActorKind, ActorRegistry};
pub use error::{CssError, CssResult, DenyReason};
pub use id::{
    ActorId, EventTypeId, GlobalEventId, IdGenerator, IdParseError, PersonId, PolicyId, RequestId,
    SourceEventId, SubscriptionId,
};
pub use person::{Person, PersonIdentity};
pub use purpose::Purpose;
pub use time::{Clock, Duration, SimClock, SystemClock, Timestamp};
