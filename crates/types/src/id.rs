//! Strongly-typed identifiers.
//!
//! The paper distinguishes two identifiers for the same event: the
//! *global* event id (`eID`) minted by the data controller and
//! distributed inside notification messages, and the *source* event id
//! (`src_eID`) that is only meaningful inside the producer's own system.
//! The Policy Information Point maps one to the other (Section 5.2,
//! step 1 of Algorithm 1). Keeping them as distinct types makes it a
//! compile error to hand a consumer-visible id to a producer store.

use std::fmt;
use std::num::ParseIntError;
use std::str::FromStr;

macro_rules! numeric_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value of the identifier.
            pub fn value(self) -> u64 {
                self.0
            }

            /// Short textual prefix used in the `Display` form.
            pub const PREFIX: &'static str = $prefix;
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}-{:08}", $prefix, self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        impl FromStr for $name {
            type Err = IdParseError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let rest = s
                    .strip_prefix($prefix)
                    .and_then(|r| r.strip_prefix('-'))
                    .ok_or_else(|| IdParseError::BadPrefix {
                        expected: $prefix,
                        input: s.to_string(),
                    })?;
                let v = rest.parse::<u64>().map_err(IdParseError::BadNumber)?;
                Ok($name(v))
            }
        }
    };
}

numeric_id!(
    /// Global event identifier (`eID`): an artificial identifier generated
    /// by the data controller so events can be referenced independently of
    /// their producer.
    GlobalEventId,
    "evt"
);

numeric_id!(
    /// Source event identifier (`src_eID`): the identifier an event has
    /// inside the producer's local system; never shown to consumers.
    SourceEventId,
    "src"
);

numeric_id!(
    /// Identifier of an actor (organization or organizational unit).
    ActorId,
    "act"
);

numeric_id!(
    /// Identifier of a person (data subject / patient / citizen).
    PersonId,
    "per"
);

numeric_id!(
    /// Identifier of a privacy policy in the policy repository.
    PolicyId,
    "pol"
);

numeric_id!(
    /// Identifier of a subscription held by a data consumer.
    SubscriptionId,
    "sub"
);

numeric_id!(
    /// Identifier of a request-for-details, used for auditing.
    RequestId,
    "req"
);

/// Identifier of a class of event details (an entry in the event catalog).
///
/// Event types are named, versioned artifacts declared by a producer
/// (e.g. `blood-test` v1), so unlike the purely numeric ids they carry a
/// human-readable code.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventTypeId {
    code: String,
    version: u32,
}

impl EventTypeId {
    /// Create a new event type identifier from a code and version.
    ///
    /// The code is normalized to lowercase; interior whitespace is
    /// replaced with hyphens so `Blood Test` and `blood-test` compare
    /// equal.
    pub fn new(code: impl AsRef<str>, version: u32) -> Self {
        let code = code
            .as_ref()
            .trim()
            .to_lowercase()
            .split_whitespace()
            .collect::<Vec<_>>()
            .join("-");
        EventTypeId { code, version }
    }

    /// First version of a type with the given code.
    pub fn v1(code: impl AsRef<str>) -> Self {
        EventTypeId::new(code, 1)
    }

    /// The normalized code of the event type.
    pub fn code(&self) -> &str {
        &self.code
    }

    /// The version of the event type.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Next version of the same code.
    pub fn next_version(&self) -> Self {
        EventTypeId {
            code: self.code.clone(),
            version: self.version + 1,
        }
    }
}

impl fmt::Display for EventTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@v{}", self.code, self.version)
    }
}

impl FromStr for EventTypeId {
    type Err = IdParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (code, ver) = s.split_once("@v").ok_or_else(|| IdParseError::BadPrefix {
            expected: "<code>@v<version>",
            input: s.to_string(),
        })?;
        if code.is_empty() {
            return Err(IdParseError::BadPrefix {
                expected: "<code>@v<version>",
                input: s.to_string(),
            });
        }
        let version = ver.parse::<u32>().map_err(IdParseError::BadNumber)?;
        Ok(EventTypeId::new(code, version))
    }
}

/// Error produced when parsing an identifier from its textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdParseError {
    /// The textual prefix did not match the identifier type.
    BadPrefix {
        /// Prefix the identifier type expects.
        expected: &'static str,
        /// The offending input.
        input: String,
    },
    /// The numeric part failed to parse.
    BadNumber(ParseIntError),
}

impl fmt::Display for IdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdParseError::BadPrefix { expected, input } => {
                write!(
                    f,
                    "expected identifier with prefix {expected:?}, got {input:?}"
                )
            }
            IdParseError::BadNumber(e) => write!(f, "invalid numeric id component: {e}"),
        }
    }
}

impl std::error::Error for IdParseError {}

/// Monotonic generator for numeric identifiers.
///
/// Each subsystem that mints ids (the controller for `eID`s, producers
/// for `src_eID`s) holds one of these. Thread-safe.
#[derive(Debug)]
pub struct IdGenerator {
    next: std::sync::atomic::AtomicU64,
}

impl IdGenerator {
    /// A generator whose first issued value is `start`.
    pub fn starting_at(start: u64) -> Self {
        IdGenerator {
            next: std::sync::atomic::AtomicU64::new(start),
        }
    }

    /// Issue the next raw value.
    pub fn next_value(&self) -> u64 {
        self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Issue the next value converted into the requested id type.
    pub fn next_id<T: From<u64>>(&self) -> T {
        T::from(self.next_value())
    }

    /// Ensure all future values are strictly greater than `value`
    /// (restart support: resume past recovered identifiers).
    pub fn advance_past(&self, value: u64) {
        self.next
            .fetch_max(value + 1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        IdGenerator::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let id = GlobalEventId(42);
        let s = id.to_string();
        assert_eq!(s, "evt-00000042");
        assert_eq!(s.parse::<GlobalEventId>().unwrap(), id);
    }

    #[test]
    fn parse_rejects_wrong_prefix() {
        let err = "src-00000042".parse::<GlobalEventId>().unwrap_err();
        assert!(matches!(err, IdParseError::BadPrefix { .. }));
    }

    #[test]
    fn parse_rejects_garbage_number() {
        let err = "evt-xyz".parse::<GlobalEventId>().unwrap_err();
        assert!(matches!(err, IdParseError::BadNumber(_)));
    }

    #[test]
    fn event_type_id_normalizes_code() {
        let a = EventTypeId::new("Blood Test", 1);
        let b = EventTypeId::v1("blood-test");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "blood-test@v1");
    }

    #[test]
    fn event_type_id_parse_roundtrip() {
        let id = EventTypeId::new("autonomy-assessment", 3);
        assert_eq!(id.to_string().parse::<EventTypeId>().unwrap(), id);
    }

    #[test]
    fn event_type_id_parse_rejects_missing_version() {
        assert!("blood-test".parse::<EventTypeId>().is_err());
        assert!("@v1".parse::<EventTypeId>().is_err());
    }

    #[test]
    fn event_type_next_version() {
        let id = EventTypeId::v1("discharge");
        assert_eq!(id.next_version().version(), 2);
        assert_eq!(id.next_version().code(), "discharge");
    }

    #[test]
    fn generator_is_monotonic() {
        let g = IdGenerator::default();
        let a: GlobalEventId = g.next_id();
        let b: GlobalEventId = g.next_id();
        assert!(b.value() > a.value());
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property, expressed here as a size/behavior sanity
        // check: both wrap u64 but display differently.
        assert_ne!(GlobalEventId(7).to_string(), SourceEventId(7).to_string());
    }
}
