//! Aggregate process KPIs — the governing body's efficiency view.

use css_types::Duration;

use crate::instance::{InstanceStatus, ProcessInstance, Violation};

/// Aggregated indicators over a set of instances.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Kpis {
    /// Instances observed.
    pub total: usize,
    /// Instances still running.
    pub running: usize,
    /// Instances that completed every required step.
    pub completed: usize,
    /// Instances flagged with a deadline violation.
    pub deadline_violations: usize,
    /// Instances flagged with a regression.
    pub regressions: usize,
    /// Mean start-to-last-progress span of completed instances.
    pub mean_completion: Duration,
    /// Notifications that matched no registered process.
    pub unmatched_events: u64,
}

impl Kpis {
    /// Compute KPIs from an instance iterator.
    pub fn compute<'a>(
        instances: impl Iterator<Item = &'a ProcessInstance>,
        unmatched_events: u64,
    ) -> Self {
        let mut kpis = Kpis {
            unmatched_events,
            ..Default::default()
        };
        let mut completion_total = 0u64;
        for inst in instances {
            kpis.total += 1;
            match &inst.status {
                InstanceStatus::Running => kpis.running += 1,
                InstanceStatus::Completed => {
                    kpis.completed += 1;
                    completion_total += inst.span().as_millis();
                }
                InstanceStatus::Violated(Violation::DeadlineExceeded { .. }) => {
                    kpis.deadline_violations += 1;
                }
                InstanceStatus::Violated(Violation::UnexpectedRegression { .. }) => {
                    kpis.regressions += 1;
                }
            }
        }
        if kpis.completed > 0 {
            kpis.mean_completion = Duration::millis(completion_total / kpis.completed as u64);
        }
        kpis
    }

    /// Fraction of non-running instances that completed.
    pub fn completion_rate(&self) -> f64 {
        let finished = self.completed + self.deadline_violations + self.regressions;
        if finished == 0 {
            0.0
        } else {
            self.completed as f64 / finished as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{ProcessInstance, StepRecord};
    use css_types::{GlobalEventId, PersonId, Timestamp};

    fn instance(status: InstanceStatus, span_ms: u64) -> ProcessInstance {
        let mut inst = ProcessInstance::start(
            "p",
            PersonId(1),
            StepRecord {
                step: 0,
                event: GlobalEventId(1),
                at: Timestamp(0),
                trace: None,
            },
        );
        inst.history.push(StepRecord {
            step: 1,
            event: GlobalEventId(2),
            at: Timestamp(span_ms),
            trace: None,
        });
        inst.status = status;
        inst
    }

    #[test]
    fn aggregation() {
        let instances = [
            instance(InstanceStatus::Completed, 1_000),
            instance(InstanceStatus::Completed, 3_000),
            instance(InstanceStatus::Running, 500),
            instance(
                InstanceStatus::Violated(Violation::DeadlineExceeded {
                    step: "x".into(),
                    due_at: Timestamp(1),
                }),
                9_000,
            ),
        ];
        let kpis = Kpis::compute(instances.iter(), 7);
        assert_eq!(kpis.total, 4);
        assert_eq!(kpis.completed, 2);
        assert_eq!(kpis.running, 1);
        assert_eq!(kpis.deadline_violations, 1);
        assert_eq!(kpis.mean_completion, Duration::millis(2_000));
        assert_eq!(kpis.unmatched_events, 7);
        assert!((kpis.completion_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_kpis() {
        let kpis = Kpis::compute(std::iter::empty(), 0);
        assert_eq!(kpis.total, 0);
        assert_eq!(kpis.completion_rate(), 0.0);
        assert_eq!(kpis.mean_completion, Duration::millis(0));
    }
}
