//! Process instances: one tracked execution per (definition, person).

use css_trace::TraceId;
use css_types::{GlobalEventId, PersonId, Timestamp};

/// Why an instance was flagged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A step's deadline elapsed before its event arrived.
    DeadlineExceeded {
        /// Name of the late step.
        step: String,
        /// When the deadline expired.
        due_at: Timestamp,
    },
    /// An event for an earlier, already-completed, non-repeatable step
    /// arrived again (process regression).
    UnexpectedRegression {
        /// Name of the repeated step.
        step: String,
        /// The offending event.
        event: GlobalEventId,
    },
}

/// Lifecycle of an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Steps still outstanding.
    Running,
    /// Every required step occurred.
    Completed,
    /// A violation was detected (kept for inspection).
    Violated(Violation),
}

/// One observed step occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepRecord {
    /// Index into the definition's steps.
    pub step: usize,
    /// Event that satisfied the step.
    pub event: GlobalEventId,
    /// When it occurred.
    pub at: Timestamp,
    /// Trace of the publish that carried the event, when the feeder
    /// passed one along — ties a KPI line back to its causal span tree.
    pub trace: Option<TraceId>,
}

/// A tracked execution of a process for one person.
#[derive(Debug, Clone)]
pub struct ProcessInstance {
    /// Definition id this instance follows.
    pub definition: String,
    /// The data subject the process is about.
    pub person: PersonId,
    /// When the first step occurred.
    pub started_at: Timestamp,
    /// Steps observed so far, in arrival order.
    pub history: Vec<StepRecord>,
    /// Highest step index completed so far.
    pub furthest_step: usize,
    /// Current status.
    pub status: InstanceStatus,
}

impl ProcessInstance {
    /// Start an instance at its first observed step.
    pub fn start(definition: impl Into<String>, person: PersonId, first: StepRecord) -> Self {
        ProcessInstance {
            definition: definition.into(),
            person,
            started_at: first.at,
            furthest_step: first.step,
            history: vec![first],
            status: InstanceStatus::Running,
        }
    }

    /// Whether the instance is still running.
    pub fn is_running(&self) -> bool {
        self.status == InstanceStatus::Running
    }

    /// Instant of the most recent observed step.
    pub fn last_progress_at(&self) -> Timestamp {
        self.history.last().map(|r| r.at).unwrap_or(self.started_at)
    }

    /// Elapsed time from start to the latest step.
    pub fn span(&self) -> css_types::Duration {
        self.last_progress_at().since(self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_accessors() {
        let inst = ProcessInstance::start(
            "elderly-care",
            PersonId(1),
            StepRecord {
                step: 0,
                event: GlobalEventId(1),
                at: Timestamp(100),
                trace: None,
            },
        );
        assert!(inst.is_running());
        assert_eq!(inst.started_at, Timestamp(100));
        assert_eq!(inst.last_progress_at(), Timestamp(100));
        assert_eq!(inst.span().as_millis(), 0);
    }
}
