//! Care-process monitoring over notification streams.
//!
//! The CSS project exists "to monitor, control and trace the clinical
//! and assistive processes" that span multiple institutions (Section 1).
//! This crate is that monitoring layer. Its defining property — and the
//! point the paper's privacy design makes possible — is that it operates
//! **exclusively on notification messages**: the *who / what / when /
//! where* summaries that carry no sensitive payload. A process monitor
//! therefore needs no privacy policy grants beyond notification
//! visibility.
//!
//! - [`ProcessDefinition`]: the expected step sequence of a care
//!   pathway (event class per step, optional deadline from the previous
//!   step, optional steps);
//! - [`ProcessMonitor`]: consumes notifications, tracks one
//!   [`ProcessInstance`] per (definition, person), advances steps,
//!   flags deadline violations and unexpected regressions;
//! - [`Kpis`]: the aggregate view the governing body wants — completion
//!   rates, step latencies, violations by kind.

pub mod definition;
pub mod instance;
pub mod kpi;
pub mod monitor;

pub use definition::{ProcessDefinition, Step};
pub use instance::{InstanceStatus, ProcessInstance, Violation};
pub use kpi::Kpis;
pub use monitor::ProcessMonitor;
