//! Process definitions: the expected shape of a care pathway.

use css_types::{Duration, EventTypeId};

/// One step of a process: an event class that should occur, optionally
/// within a deadline measured from the completion of the previous
/// mandatory step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Human-readable step name (e.g. `"autonomy assessment"`).
    pub name: String,
    /// The event class that signals this step happened.
    pub event_type: EventTypeId,
    /// Deadline from the previous step's event. `None` = no deadline.
    pub within: Option<Duration>,
    /// Optional steps may be skipped without violating the process.
    pub required: bool,
    /// Repeatable steps may occur multiple times before the next step
    /// (e.g. weekly home-care visits).
    pub repeatable: bool,
}

impl Step {
    /// A required, non-repeatable step.
    pub fn required(name: impl Into<String>, event_type: EventTypeId) -> Self {
        Step {
            name: name.into(),
            event_type,
            within: None,
            required: true,
            repeatable: false,
        }
    }

    /// An optional step.
    pub fn optional(name: impl Into<String>, event_type: EventTypeId) -> Self {
        Step {
            required: false,
            ..Step::required(name, event_type)
        }
    }

    /// Builder: add a deadline from the previous step.
    pub fn within(mut self, d: Duration) -> Self {
        self.within = Some(d);
        self
    }

    /// Builder: mark the step repeatable.
    pub fn repeatable(mut self) -> Self {
        self.repeatable = true;
        self
    }
}

/// A named sequence of steps describing a multi-institution care
/// process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessDefinition {
    /// Definition identifier.
    pub id: String,
    /// Human-readable name.
    pub name: String,
    /// Ordered steps. The first step's event class starts an instance.
    pub steps: Vec<Step>,
}

impl ProcessDefinition {
    /// A definition with no steps yet.
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        ProcessDefinition {
            id: id.into(),
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Builder: append a step.
    ///
    /// # Panics
    /// Panics if the step's event class already appears — the monitor
    /// maps incoming events to steps by class, so classes must be
    /// unambiguous within one definition.
    pub fn step(mut self, step: Step) -> Self {
        assert!(
            !self.steps.iter().any(|s| s.event_type == step.event_type),
            "event class {} appears twice in process {}",
            step.event_type,
            self.id
        );
        self.steps.push(step);
        self
    }

    /// The step index whose event class is `ty`, if any.
    pub fn step_for(&self, ty: &EventTypeId) -> Option<usize> {
        self.steps.iter().position(|s| &s.event_type == ty)
    }

    /// Index of the last required step (completion marker).
    pub fn last_required_step(&self) -> Option<usize> {
        self.steps.iter().rposition(|s| s.required)
    }

    /// The paper's elderly-care pathway as a ready-made definition:
    /// discharge → autonomy assessment (within 7 days) → home care
    /// (repeatable) and meals (repeatable, optional) with telecare
    /// alarms tolerated at any point.
    pub fn elderly_care() -> Self {
        ProcessDefinition::new("elderly-care", "Elderly care pathway")
            .step(Step::required(
                "hospital discharge",
                EventTypeId::v1("hospital-discharge"),
            ))
            .step(
                Step::required(
                    "autonomy assessment",
                    EventTypeId::v1("autonomy-assessment"),
                )
                .within(Duration::days(7)),
            )
            .step(
                Step::required(
                    "home care start",
                    EventTypeId::v1("home-care-service-event"),
                )
                .within(Duration::days(14))
                .repeatable(),
            )
            .step(Step::optional("meal service", EventTypeId::v1("meal-delivery")).repeatable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let def = ProcessDefinition::elderly_care();
        assert_eq!(def.steps.len(), 4);
        assert_eq!(
            def.step_for(&EventTypeId::v1("autonomy-assessment")),
            Some(1)
        );
        assert_eq!(def.step_for(&EventTypeId::v1("blood-test")), None);
        assert_eq!(def.last_required_step(), Some(2));
        assert!(def.steps[2].repeatable);
        assert!(!def.steps[3].required);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_event_class_rejected() {
        let _ = ProcessDefinition::new("x", "X")
            .step(Step::required("a", EventTypeId::v1("e")))
            .step(Step::required("b", EventTypeId::v1("e")));
    }
}
