//! The monitor: feeds on notifications, advances instances, detects
//! violations.

use std::collections::HashMap;

use css_event::NotificationMessage;
use css_trace::TraceId;
use css_types::{PersonId, Timestamp};

use crate::definition::ProcessDefinition;
use crate::instance::{InstanceStatus, ProcessInstance, StepRecord, Violation};
use crate::kpi::Kpis;

/// Tracks process instances across the notification stream.
///
/// Feed it every notification an authorized monitoring consumer
/// receives; call [`ProcessMonitor::check_deadlines`] periodically (or
/// with the current simulated time) to surface overdue steps.
#[derive(Debug, Default)]
pub struct ProcessMonitor {
    definitions: Vec<ProcessDefinition>,
    /// (definition id, person) → instance.
    instances: HashMap<(String, PersonId), ProcessInstance>,
    /// Notifications that matched no definition step (monitoring blind
    /// spots worth reporting).
    pub unmatched: u64,
}

impl ProcessMonitor {
    /// A monitor with no definitions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a process definition.
    pub fn register(&mut self, definition: ProcessDefinition) {
        self.definitions.push(definition);
    }

    /// Consume one notification, updating instances.
    pub fn feed(&mut self, notification: &NotificationMessage) {
        self.feed_traced(notification, None);
    }

    /// [`ProcessMonitor::feed`], also recording the trace id of the
    /// publish that delivered the notification (the bus `Delivery`
    /// carries one when the producer published traced), so a violated
    /// step can be joined back to its span tree and audit records.
    pub fn feed_traced(&mut self, notification: &NotificationMessage, trace: Option<TraceId>) {
        let mut matched = false;
        for def in &self.definitions {
            let Some(step_idx) = def.step_for(&notification.event_type) else {
                continue;
            };
            matched = true;
            let key = (def.id.clone(), notification.person.id);
            let record = StepRecord {
                step: step_idx,
                event: notification.global_id,
                at: notification.occurred_at,
                trace,
            };
            match self.instances.get_mut(&key) {
                None => {
                    // Only the first step starts an instance; a later
                    // step without a start is ignored (the process began
                    // before monitoring did).
                    if step_idx == 0 {
                        self.instances.insert(
                            key,
                            ProcessInstance::start(def.id.clone(), notification.person.id, record),
                        );
                    }
                }
                Some(instance) if instance.is_running() => {
                    let step = &def.steps[step_idx];
                    if step_idx < instance.furthest_step && !step.repeatable {
                        instance.status =
                            InstanceStatus::Violated(Violation::UnexpectedRegression {
                                step: step.name.clone(),
                                event: notification.global_id,
                            });
                        continue;
                    }
                    // Deadline check for forward progress.
                    if step_idx > instance.furthest_step {
                        if let Some(limit) = step.within {
                            let due = instance.last_progress_at().plus(limit);
                            if notification.occurred_at > due {
                                instance.status =
                                    InstanceStatus::Violated(Violation::DeadlineExceeded {
                                        step: step.name.clone(),
                                        due_at: due,
                                    });
                                continue;
                            }
                        }
                        instance.furthest_step = step_idx;
                    }
                    instance.history.push(record);
                    if let Some(last_required) = def.last_required_step() {
                        let all_required_done = (0..=last_required)
                            .filter(|i| def.steps[*i].required)
                            .all(|i| instance.history.iter().any(|r| r.step == i));
                        if all_required_done {
                            instance.status = InstanceStatus::Completed;
                        }
                    }
                }
                Some(_) => {} // completed or violated: ignore further events
            }
        }
        if !matched {
            self.unmatched += 1;
        }
    }

    /// Flag running instances whose next required step is overdue at
    /// `now`. Returns how many instances were newly flagged.
    pub fn check_deadlines(&mut self, now: Timestamp) -> usize {
        let mut flagged = 0;
        for instance in self.instances.values_mut() {
            if !instance.is_running() {
                continue;
            }
            let def = self
                .definitions
                .iter()
                .find(|d| d.id == instance.definition)
                .expect("instance references registered definition");
            // The next required step after the furthest progress.
            let next = def
                .steps
                .iter()
                .enumerate()
                .skip(instance.furthest_step + 1)
                .find(|(_, s)| s.required);
            if let Some((_, step)) = next {
                if let Some(limit) = step.within {
                    let due = instance.last_progress_at().plus(limit);
                    if now > due {
                        instance.status = InstanceStatus::Violated(Violation::DeadlineExceeded {
                            step: step.name.clone(),
                            due_at: due,
                        });
                        flagged += 1;
                    }
                }
            }
        }
        flagged
    }

    /// All tracked instances.
    pub fn instances(&self) -> impl Iterator<Item = &ProcessInstance> {
        self.instances.values()
    }

    /// The instance for one (definition, person), if tracked.
    pub fn instance(&self, definition: &str, person: PersonId) -> Option<&ProcessInstance> {
        self.instances.get(&(definition.to_string(), person))
    }

    /// Aggregate KPIs over all instances.
    pub fn kpis(&self) -> Kpis {
        Kpis::compute(self.instances.values(), self.unmatched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::definition::{ProcessDefinition, Step};
    use css_types::{ActorId, EventTypeId, GlobalEventId, PersonIdentity};

    fn notif(id: u64, person: u64, ty: &str, at: u64) -> NotificationMessage {
        NotificationMessage {
            global_id: GlobalEventId(id),
            event_type: EventTypeId::v1(ty),
            person: PersonIdentity {
                id: PersonId(person),
                fiscal_code: "x".into(),
                name: "n".into(),
                surname: "s".into(),
            },
            description: String::new(),
            occurred_at: Timestamp(at),
            producer: ActorId(1),
        }
    }

    fn monitor() -> ProcessMonitor {
        let mut m = ProcessMonitor::new();
        m.register(ProcessDefinition::elderly_care());
        m
    }

    const DAY: u64 = 86_400_000;

    #[test]
    fn happy_path_completes() {
        let mut m = monitor();
        m.feed(&notif(1, 1, "hospital-discharge", 0));
        m.feed(&notif(2, 1, "autonomy-assessment", 2 * DAY));
        m.feed(&notif(3, 1, "home-care-service-event", 5 * DAY));
        let inst = m.instance("elderly-care", PersonId(1)).unwrap();
        assert_eq!(inst.status, InstanceStatus::Completed);
        assert_eq!(inst.history.len(), 3);
    }

    #[test]
    fn late_assessment_is_a_deadline_violation() {
        let mut m = monitor();
        m.feed(&notif(1, 1, "hospital-discharge", 0));
        m.feed(&notif(2, 1, "autonomy-assessment", 9 * DAY)); // > 7 days
        let inst = m.instance("elderly-care", PersonId(1)).unwrap();
        assert!(matches!(
            inst.status,
            InstanceStatus::Violated(Violation::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn check_deadlines_flags_silence() {
        let mut m = monitor();
        m.feed(&notif(1, 1, "hospital-discharge", 0));
        // Nothing happens for 10 days.
        assert_eq!(m.check_deadlines(Timestamp(6 * DAY)), 0);
        assert_eq!(m.check_deadlines(Timestamp(10 * DAY)), 1);
        // Already flagged: not double counted.
        assert_eq!(m.check_deadlines(Timestamp(20 * DAY)), 0);
    }

    #[test]
    fn repeatable_steps_do_not_regress() {
        // Repeatable steps may recur while the instance is running; a
        // definition whose last required step comes later shows this.
        let def = ProcessDefinition::new("visits", "Visits")
            .step(Step::required(
                "start",
                EventTypeId::v1("hospital-discharge"),
            ))
            .step(Step::required("visit", EventTypeId::v1("home-care-service-event")).repeatable())
            .step(Step::required(
                "closure",
                EventTypeId::v1("autonomy-assessment"),
            ));
        let mut m = ProcessMonitor::new();
        m.register(def);
        m.feed(&notif(1, 1, "hospital-discharge", 0));
        m.feed(&notif(2, 1, "home-care-service-event", DAY));
        m.feed(&notif(3, 1, "home-care-service-event", 2 * DAY));
        m.feed(&notif(4, 1, "home-care-service-event", 3 * DAY));
        let inst = m.instance("visits", PersonId(1)).unwrap();
        assert_eq!(inst.status, InstanceStatus::Running);
        assert_eq!(inst.history.len(), 4);
        m.feed(&notif(5, 1, "autonomy-assessment", 4 * DAY));
        let inst = m.instance("visits", PersonId(1)).unwrap();
        assert_eq!(inst.status, InstanceStatus::Completed);
        assert_eq!(inst.history.len(), 5);
        // Post-completion events are ignored by design.
        m.feed(&notif(6, 1, "home-care-service-event", 5 * DAY));
        assert_eq!(m.instance("visits", PersonId(1)).unwrap().history.len(), 5);
    }

    #[test]
    fn regression_on_non_repeatable_step() {
        let mut m = monitor();
        m.feed(&notif(1, 1, "hospital-discharge", 0));
        m.feed(&notif(2, 1, "autonomy-assessment", DAY));
        m.feed(&notif(3, 1, "home-care-service-event", 2 * DAY));
        // The process completed at event 3... a *second* discharge for
        // a completed instance is simply ignored.
        m.feed(&notif(4, 1, "hospital-discharge", 3 * DAY));
        assert_eq!(
            m.instance("elderly-care", PersonId(1)).unwrap().status,
            InstanceStatus::Completed
        );
        // But a regression during a RUNNING instance is flagged.
        let mut m2 = monitor();
        m2.feed(&notif(1, 2, "hospital-discharge", 0));
        m2.feed(&notif(2, 2, "autonomy-assessment", DAY));
        m2.feed(&notif(3, 2, "hospital-discharge", 2 * DAY));
        assert!(matches!(
            m2.instance("elderly-care", PersonId(2)).unwrap().status,
            InstanceStatus::Violated(Violation::UnexpectedRegression { .. })
        ));
    }

    #[test]
    fn mid_process_start_ignored_until_first_step() {
        let mut m = monitor();
        m.feed(&notif(1, 1, "autonomy-assessment", 0));
        assert!(m.instance("elderly-care", PersonId(1)).is_none());
        m.feed(&notif(2, 1, "hospital-discharge", DAY));
        assert!(m.instance("elderly-care", PersonId(1)).is_some());
    }

    #[test]
    fn persons_tracked_independently() {
        let mut m = monitor();
        m.feed(&notif(1, 1, "hospital-discharge", 0));
        m.feed(&notif(2, 2, "hospital-discharge", 0));
        m.feed(&notif(3, 1, "autonomy-assessment", DAY));
        assert_eq!(
            m.instance("elderly-care", PersonId(1))
                .unwrap()
                .furthest_step,
            1
        );
        assert_eq!(
            m.instance("elderly-care", PersonId(2))
                .unwrap()
                .furthest_step,
            0
        );
    }

    #[test]
    fn unmatched_counted() {
        let mut m = monitor();
        m.feed(&notif(1, 1, "blood-test", 0));
        assert_eq!(m.unmatched, 1);
    }

    #[test]
    fn deadline_exactly_at_now_is_not_flagged() {
        // The contract is strict lateness (`now > due`): an instance
        // whose deadline expires exactly at the observation instant is
        // still on time, and the KPI counts reflect that.
        let mut m = monitor();
        m.feed(&notif(1, 1, "hospital-discharge", 0));
        let due = Timestamp(7 * DAY); // assessment due within 7 days
        assert_eq!(m.check_deadlines(due), 0);
        assert_eq!(m.kpis().deadline_violations, 0);
        assert_eq!(m.check_deadlines(Timestamp(due.0 + 1)), 1);
        assert_eq!(m.kpis().deadline_violations, 1);
    }

    #[test]
    fn repeated_feed_of_same_notification_keeps_kpis_stable() {
        // A redelivered notification (bus retry) appends to history but
        // must not double-start, regress, or complete the instance.
        let mut m = monitor();
        let first = notif(1, 1, "hospital-discharge", 0);
        m.feed(&first);
        m.feed(&first);
        let inst = m.instance("elderly-care", PersonId(1)).unwrap();
        assert_eq!(inst.status, InstanceStatus::Running);
        assert_eq!(inst.furthest_step, 0);
        let k = m.kpis();
        assert_eq!(k.running, 1);
        assert_eq!(k.completed, 0);
        assert_eq!(k.deadline_violations + k.regressions, 0);
    }

    #[test]
    fn feed_traced_records_trace_on_step_history() {
        let mut m = monitor();
        let trace = "00000000000003e9".parse::<css_trace::TraceId>().unwrap();
        m.feed_traced(&notif(1, 1, "hospital-discharge", 0), Some(trace));
        m.feed(&notif(2, 1, "autonomy-assessment", DAY));
        let inst = m.instance("elderly-care", PersonId(1)).unwrap();
        assert_eq!(inst.history[0].trace, Some(trace));
        assert_eq!(inst.history[1].trace, None);
    }
}
