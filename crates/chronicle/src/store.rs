//! The time-series store: per-metric ring-of-rings retention with
//! downsampling.
//!
//! Every sampler tick appends one **raw** point per live metric; raw
//! points fold into **1-minute** aggregates as they arrive, and minute
//! aggregates fold into **1-hour** aggregates — three bounded rings per
//! metric (ring-of-rings), each dropping its oldest slot when full, so
//! the store's footprint is a fixed function of [`Retention`] no matter
//! how long the platform runs. Histogram points carry their merged
//! log₂ delta buckets through every tier, which is what makes
//! `quantile_over_time` answerable at raw, minute, *and* hour
//! resolution instead of only over the lifetime cumulative.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, PoisonError};

use css_telemetry::{Counter, Gauge, HistogramSnapshot, MetricsRegistry, TelemetrySnapshot};
use css_types::Timestamp;

/// Width of a minute slot.
const MINUTE_MS: u64 = 60_000;
/// Width of an hour slot.
const HOUR_MS: u64 = 3_600_000;

/// Slots retained per tier, per metric. The store never allocates past
/// this: each tier is a drop-oldest ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retention {
    /// Raw sampler ticks kept (one slot per tick).
    pub raw: usize,
    /// One-minute aggregate slots kept.
    pub minutes: usize,
    /// One-hour aggregate slots kept.
    pub hours: usize,
}

impl Default for Retention {
    /// 960 raw ticks (4 minutes at the 250 ms production cadence),
    /// 180 minute slots (3 hours), 48 hour slots (2 days).
    fn default() -> Self {
        Retention {
            raw: 960,
            minutes: 180,
            hours: 48,
        }
    }
}

impl Retention {
    /// Every tier needs at least two slots for a delta/rate to exist.
    pub(crate) fn clamped(self) -> Retention {
        Retention {
            raw: self.raw.max(2),
            minutes: self.minutes.max(2),
            hours: self.hours.max(2),
        }
    }
}

/// Which ring a query reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// One slot per sampler tick.
    Raw,
    /// One slot per minute of platform-clock time.
    Minute,
    /// One slot per hour of platform-clock time.
    Hour,
}

impl Resolution {
    /// Stable label used in query params and JSON documents.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Raw => "raw",
            Resolution::Minute => "minute",
            Resolution::Hour => "hour",
        }
    }

    /// Parse a query-param value.
    pub fn parse(s: &str) -> Option<Resolution> {
        match s {
            "raw" => Some(Resolution::Raw),
            "minute" | "1m" => Some(Resolution::Minute),
            "hour" | "1h" => Some(Resolution::Hour),
            _ => None,
        }
    }
}

/// The instrument kind a series was built from (drives which query
/// functions are meaningful: `rate` wants counters, quantiles want
/// histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic total; points store the cumulative value.
    Counter,
    /// Level; points store the sampled level.
    Gauge,
    /// Latency distribution; points store per-tick deltas with merged
    /// log₂ buckets.
    Histogram,
}

impl MetricKind {
    /// Stable label used in JSON documents.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One retained slot: a single tick at raw resolution, a folded window
/// at minute/hour resolution. Scalar series use `sum/min/max/last` over
/// the sampled values; histogram series additionally carry the merged
/// delta buckets (nanosecond upper bound → observation count) so
/// quantiles stay answerable after downsampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Slot start (tick time at raw resolution, aligned slot start at
    /// minute/hour resolution).
    pub from_ms: u64,
    /// Time of the newest sample folded in.
    pub to_ms: u64,
    /// Samples folded in: ticks for scalars, histogram observations
    /// (delta counts) for histograms.
    pub count: u64,
    /// Sum of sampled values (scalars) or of delta `sum_ns` (histograms).
    pub sum: f64,
    /// Smallest folded value (scalars) / lowest occupied delta bucket
    /// bound (histograms).
    pub min: f64,
    /// Largest folded value (scalars) / highest occupied delta bucket
    /// bound (histograms).
    pub max: f64,
    /// Newest folded value: the cumulative total for counters, the
    /// level for gauges, the per-tick p99 estimate for histograms.
    pub last: f64,
    /// Merged log₂ delta buckets, ascending `(upper bound ns, count)`;
    /// empty for scalar series.
    pub buckets: Vec<(u64, u64)>,
}

impl Aggregate {
    fn point(at_ms: u64, value: f64) -> Aggregate {
        Aggregate {
            from_ms: at_ms,
            to_ms: at_ms,
            count: 1,
            sum: value,
            min: value,
            max: value,
            last: value,
            buckets: Vec::new(),
        }
    }

    /// Fold a newer slot into this one (chronological order assumed).
    fn fold(&mut self, other: &Aggregate) {
        self.to_ms = self.to_ms.max(other.to_ms);
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.last = other.last;
        if !other.buckets.is_empty() {
            self.buckets = merge_buckets(&self.buckets, &other.buckets);
        }
    }

    /// Arithmetic mean of the folded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate over this slot's merged buckets, as the
    /// occupied bucket's inclusive upper bound (the same upper-bound
    /// convention `css-telemetry` histograms report). `None` for scalar
    /// slots (no distribution to rank).
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total: u64 = self.buckets.iter().map(|(_, n)| *n).sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(*bound);
            }
        }
        self.buckets.last().map(|(bound, _)| *bound)
    }
}

/// Merge two ascending bucket lists, summing counts per bound.
fn merge_buckets(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(ba, na)), Some(&(bb, nb))) if ba == bb => {
                out.push((ba, na + nb));
                i += 1;
                j += 1;
            }
            (Some(&(ba, na)), Some(&(bb, _))) if ba < bb => {
                out.push((ba, na));
                i += 1;
            }
            (Some(_), Some(&(bb, nb))) => {
                out.push((bb, nb));
                j += 1;
            }
            (Some(&(ba, na)), None) => {
                out.push((ba, na));
                i += 1;
            }
            (None, Some(&(bb, nb))) => {
                out.push((bb, nb));
                j += 1;
            }
            (None, None) => break,
        }
    }
    out
}

/// One metric's three rings plus the cumulative state that turns each
/// histogram snapshot into a per-tick delta.
struct Series {
    kind: MetricKind,
    raw: VecDeque<Aggregate>,
    minutes: VecDeque<Aggregate>,
    hours: VecDeque<Aggregate>,
    /// Cumulative histogram state at the previous append.
    last_count: u64,
    last_sum_ns: u64,
    last_buckets: Vec<(u64, u64)>,
}

impl Series {
    fn new(kind: MetricKind) -> Series {
        Series {
            kind,
            raw: VecDeque::new(),
            minutes: VecDeque::new(),
            hours: VecDeque::new(),
            last_count: 0,
            last_sum_ns: 0,
            last_buckets: Vec::new(),
        }
    }

    fn tier(&self, res: Resolution) -> &VecDeque<Aggregate> {
        match res {
            Resolution::Raw => &self.raw,
            Resolution::Minute => &self.minutes,
            Resolution::Hour => &self.hours,
        }
    }

    fn len(&self) -> usize {
        self.raw.len() + self.minutes.len() + self.hours.len()
    }

    /// Append one raw point and fold it down the tiers.
    fn push(&mut self, point: Aggregate, retention: &Retention) {
        fold_into_slot(&mut self.minutes, &point, MINUTE_MS, retention.minutes);
        fold_into_slot(&mut self.hours, &point, HOUR_MS, retention.hours);
        if self.raw.len() >= retention.raw {
            self.raw.pop_front();
        }
        self.raw.push_back(point);
    }
}

/// Fold a raw point into its aligned slot in a downsampled tier,
/// opening a new slot (and dropping the oldest past `keep`) when the
/// point crosses a slot boundary.
fn fold_into_slot(tier: &mut VecDeque<Aggregate>, point: &Aggregate, width_ms: u64, keep: usize) {
    let slot_start = point.from_ms - point.from_ms % width_ms;
    if let Some(open) = tier.back_mut() {
        if open.from_ms == slot_start {
            open.fold(point);
            return;
        }
    }
    if tier.len() >= keep {
        tier.pop_front();
    }
    let mut slot = point.clone();
    slot.from_ms = slot_start;
    tier.push_back(slot);
}

struct StoreState {
    series: BTreeMap<String, Series>,
    /// Newest append time: appends must not run backwards.
    last_at_ms: u64,
    any_appended: bool,
}

/// The embedded metrics-history store. `&self` everywhere — share it
/// behind an `Arc` between the sampler observer (writer) and the ops
/// query endpoints (readers).
pub struct Chronicle {
    retention: Retention,
    state: Mutex<StoreState>,
    appends: Counter,
    appends_skipped: Counter,
    points: Gauge,
}

impl Chronicle {
    /// A store with the given retention, reporting itself through
    /// `registry` (`chronicle.appends`, `chronicle.appends_skipped`,
    /// `chronicle.points`).
    pub fn new(retention: Retention, registry: &MetricsRegistry) -> Chronicle {
        Chronicle {
            retention: retention.clamped(),
            state: Mutex::new(StoreState {
                series: BTreeMap::new(),
                last_at_ms: 0,
                any_appended: false,
            }),
            appends: registry.counter("chronicle.appends"),
            appends_skipped: registry.counter("chronicle.appends_skipped"),
            points: registry.gauge("chronicle.points"),
        }
    }

    /// The configured retention.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Append one sampler tick: every counter and gauge becomes a raw
    /// point holding its sampled value; every histogram becomes a raw
    /// point holding the *delta* since the previous tick (zero-delta
    /// histogram ticks append nothing). A tick stamped *earlier* than
    /// the newest retained point is skipped whole — a stalled or
    /// non-monotonic platform clock must never corrupt the rings
    /// (`chronicle.appends_skipped` counts the refusals).
    pub fn append(&self, snapshot: &TelemetrySnapshot, at: Timestamp) {
        let at_ms = at.0;
        let mut state = self.lock();
        if state.any_appended && at_ms < state.last_at_ms {
            drop(state);
            self.appends_skipped.inc();
            return;
        }
        state.last_at_ms = at_ms;
        state.any_appended = true;
        for (name, value) in &snapshot.counters {
            let series = state
                .series
                .entry(name.clone())
                .or_insert_with(|| Series::new(MetricKind::Counter));
            series.push(Aggregate::point(at_ms, *value as f64), &self.retention);
        }
        for (name, value) in &snapshot.gauges {
            let series = state
                .series
                .entry(name.clone())
                .or_insert_with(|| Series::new(MetricKind::Gauge));
            series.push(Aggregate::point(at_ms, *value as f64), &self.retention);
        }
        for (name, h) in &snapshot.histograms {
            let series = state
                .series
                .entry(name.clone())
                .or_insert_with(|| Series::new(MetricKind::Histogram));
            if let Some(point) = histogram_delta_point(series, h, at_ms) {
                series.push(point, &self.retention);
            }
        }
        let total: usize = state.series.values().map(Series::len).sum();
        drop(state);
        self.points.set(total as i64);
        self.appends.inc();
    }

    /// Every retained metric with its kind, in name order.
    pub fn series_names(&self) -> Vec<(String, MetricKind)> {
        self.lock()
            .series
            .iter()
            .map(|(name, s)| (name.clone(), s.kind))
            .collect()
    }

    /// The metric's kind, if retained.
    pub fn kind(&self, metric: &str) -> Option<MetricKind> {
        self.lock().series.get(metric).map(|s| s.kind)
    }

    /// The newest raw point of a metric.
    pub fn latest(&self, metric: &str) -> Option<Aggregate> {
        self.lock().series.get(metric)?.raw.back().cloned()
    }

    /// The slots of `metric` at `res` overlapping `[from_ms, to_ms]`,
    /// oldest first.
    pub fn window(
        &self,
        metric: &str,
        res: Resolution,
        from_ms: u64,
        to_ms: u64,
    ) -> Vec<Aggregate> {
        let state = self.lock();
        let Some(series) = state.series.get(metric) else {
            return Vec::new();
        };
        series
            .tier(res)
            .iter()
            .filter(|a| a.to_ms >= from_ms && a.from_ms <= to_ms)
            .cloned()
            .collect()
    }

    /// The coarsest-to-finest resolution whose retained window still
    /// covers `from_ms`: raw when the raw ring reaches back that far,
    /// else minute, else hour.
    pub fn auto_resolution(&self, metric: &str, from_ms: u64) -> Resolution {
        let state = self.lock();
        let Some(series) = state.series.get(metric) else {
            return Resolution::Raw;
        };
        let covers = |tier: &VecDeque<Aggregate>| {
            tier.front().is_some_and(|oldest| oldest.from_ms <= from_ms)
        };
        if covers(&series.raw) {
            Resolution::Raw
        } else if covers(&series.minutes) {
            Resolution::Minute
        } else {
            Resolution::Hour
        }
    }

    /// All slots in the window folded into one (None when the window is
    /// empty).
    pub fn merged(
        &self,
        metric: &str,
        res: Resolution,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<Aggregate> {
        let slots = self.window(metric, res, from_ms, to_ms);
        let mut iter = slots.into_iter();
        let mut merged = iter.next()?;
        for slot in iter {
            merged.fold(&slot);
        }
        Some(merged)
    }

    /// `quantile_over_time`: the q-quantile of every histogram
    /// observation in the window, from the merged delta buckets. `None`
    /// for scalar metrics or empty windows.
    pub fn quantile_over_time(
        &self,
        metric: &str,
        q: f64,
        res: Resolution,
        from_ms: u64,
        to_ms: u64,
    ) -> Option<u64> {
        self.merged(metric, res, from_ms, to_ms)?.quantile_ns(q)
    }

    /// `delta`: how much the metric moved across the window — cumulative
    /// difference for counters and gauges (newest `last` minus oldest
    /// first value), total observations for histograms.
    pub fn delta(&self, metric: &str, res: Resolution, from_ms: u64, to_ms: u64) -> Option<f64> {
        let kind = self.kind(metric)?;
        let slots = self.window(metric, res, from_ms, to_ms);
        let (first, last) = (slots.first()?, slots.last()?);
        Some(match kind {
            MetricKind::Counter | MetricKind::Gauge => last.last - first.min,
            MetricKind::Histogram => slots.iter().map(|a| a.count).sum::<u64>() as f64,
        })
    }

    /// `rate`: [`delta`](Chronicle::delta) per second of covered window.
    /// `None` when the window is empty **or zero-width** — a stalled
    /// clock must not divide by zero.
    pub fn rate(&self, metric: &str, res: Resolution, from_ms: u64, to_ms: u64) -> Option<f64> {
        let slots = self.window(metric, res, from_ms, to_ms);
        let (first, last) = (slots.first()?, slots.last()?);
        let span_ms = last.to_ms.saturating_sub(first.from_ms);
        if span_ms == 0 {
            return None;
        }
        let delta = self.delta(metric, res, from_ms, to_ms)?;
        Some(delta * 1_000.0 / span_ms as f64)
    }
}

/// The per-tick delta point for a histogram: subtract the previous
/// cumulative buckets, keep only grown buckets. `None` when no new
/// observation arrived (or the histogram reset backwards — treated as a
/// fresh baseline, not a corrupt negative delta).
fn histogram_delta_point(
    series: &mut Series,
    h: &HistogramSnapshot,
    at_ms: u64,
) -> Option<Aggregate> {
    let reset = h.count < series.last_count;
    let delta_count = if reset {
        h.count
    } else {
        h.count - series.last_count
    };
    let delta_sum = if reset {
        h.sum_ns
    } else {
        h.sum_ns.saturating_sub(series.last_sum_ns)
    };
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    for (bound, n) in &h.buckets {
        let prev = if reset {
            0
        } else {
            series
                .last_buckets
                .iter()
                .find(|(b, _)| b == bound)
                .map(|(_, n)| *n)
                .unwrap_or(0)
        };
        if *n > prev {
            buckets.push((*bound, *n - prev));
        }
    }
    series.last_count = h.count;
    series.last_sum_ns = h.sum_ns;
    series.last_buckets = h.buckets.clone();
    if delta_count == 0 {
        return None;
    }
    let min = buckets.first().map(|(b, _)| *b as f64).unwrap_or(0.0);
    let max = buckets.last().map(|(b, _)| *b as f64).unwrap_or(0.0);
    let mut point = Aggregate {
        from_ms: at_ms,
        to_ms: at_ms,
        count: delta_count,
        sum: delta_sum as f64,
        min,
        max,
        last: 0.0,
        buckets,
    };
    point.last = point.quantile_ns(0.99).unwrap_or(0) as f64;
    Some(point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_telemetry::MetricsRegistry;

    fn store(retention: Retention) -> (Chronicle, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        (Chronicle::new(retention, &registry), registry)
    }

    fn tick(chronicle: &Chronicle, work: &MetricsRegistry, at_ms: u64) {
        chronicle.append(&work.snapshot(), Timestamp(at_ms));
    }

    #[test]
    fn counters_retain_cumulative_points_and_rates() {
        let (chronicle, _) = store(Retention::default());
        let work = MetricsRegistry::new();
        for i in 1..=10u64 {
            work.counter("bus.published").add(5);
            tick(&chronicle, &work, i * 1_000);
        }
        let latest = chronicle.latest("bus.published").expect("retained");
        assert_eq!(latest.last, 50.0);
        assert_eq!(chronicle.kind("bus.published"), Some(MetricKind::Counter));
        // 45 events over 9 covered seconds (first point at 5).
        let rate = chronicle
            .rate("bus.published", Resolution::Raw, 0, 20_000)
            .expect("rate");
        assert!((rate - 5.0).abs() < 1e-9, "rate={rate}");
        let delta = chronicle
            .delta("bus.published", Resolution::Raw, 0, 20_000)
            .expect("delta");
        assert!((delta - 45.0).abs() < 1e-9, "delta={delta}");
    }

    #[test]
    fn raw_ring_is_bounded_and_drops_oldest() {
        let (chronicle, registry) = store(Retention {
            raw: 4,
            minutes: 2,
            hours: 2,
        });
        let work = MetricsRegistry::new();
        for i in 1..=10u64 {
            work.gauge("bus.queue_depth").set(i as i64);
            tick(&chronicle, &work, i * 1_000);
        }
        let window = chronicle.window("bus.queue_depth", Resolution::Raw, 0, u64::MAX);
        assert_eq!(window.len(), 4);
        assert_eq!(window[0].last, 7.0, "oldest retained is tick 7");
        assert_eq!(window[3].last, 10.0);
        assert!(registry.snapshot().gauges["chronicle.points"] > 0);
    }

    #[test]
    fn histogram_points_are_per_tick_deltas_with_buckets() {
        let (chronicle, _) = store(Retention::default());
        let work = MetricsRegistry::new();
        work.histogram("stage.total").record(1_000);
        work.histogram("stage.total").record(1_000);
        tick(&chronicle, &work, 1_000);
        work.histogram("stage.total").record(5_000_000);
        tick(&chronicle, &work, 2_000);
        // Zero-delta tick: nothing appended.
        tick(&chronicle, &work, 3_000);
        let window = chronicle.window("stage.total", Resolution::Raw, 0, u64::MAX);
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].count, 2);
        assert_eq!(window[1].count, 1);
        assert!(window[1].last >= 5_000_000.0, "per-tick p99 rode along");
        // Merged over the window: 3 observations, p99 in the slow bucket.
        let p99 = chronicle
            .quantile_over_time("stage.total", 0.99, Resolution::Raw, 0, u64::MAX)
            .expect("quantile");
        assert!(p99 >= 5_000_000, "p99={p99}");
        let p50 = chronicle
            .quantile_over_time("stage.total", 0.50, Resolution::Raw, 0, u64::MAX)
            .expect("quantile");
        assert!(p50 < 5_000_000, "p50={p50}");
    }

    #[test]
    fn minute_and_hour_tiers_downsample_with_merged_buckets() {
        let (chronicle, _) = store(Retention::default());
        let work = MetricsRegistry::new();
        // Two minutes of ticks, 10 s apart: fast first minute, slow second.
        for i in 0..12u64 {
            let ns = if i < 6 { 1_000 } else { 5_000_000 };
            work.histogram("stage.total").record(ns);
            tick(&chronicle, &work, i * 10_000);
        }
        let minutes = chronicle.window("stage.total", Resolution::Minute, 0, u64::MAX);
        assert_eq!(minutes.len(), 2, "two minute slots");
        assert_eq!(minutes[0].from_ms, 0);
        assert_eq!(minutes[1].from_ms, 60_000);
        assert_eq!(minutes[0].count, 6);
        assert_eq!(minutes[1].count, 6);
        let fast_p99 = minutes[0].quantile_ns(0.99).unwrap();
        let slow_p99 = minutes[1].quantile_ns(0.99).unwrap();
        assert!(fast_p99 < 3_000, "fast minute p99={fast_p99}");
        assert!(slow_p99 >= 5_000_000, "slow minute p99={slow_p99}");
        let hours = chronicle.window("stage.total", Resolution::Hour, 0, u64::MAX);
        assert_eq!(hours.len(), 1, "both minutes fold into one hour slot");
        assert_eq!(hours[0].count, 12);
    }

    #[test]
    fn non_monotonic_appends_are_skipped_not_corrupting() {
        let (chronicle, registry) = store(Retention::default());
        let work = MetricsRegistry::new();
        work.counter("bus.published").add(1);
        tick(&chronicle, &work, 10_000);
        work.counter("bus.published").add(1);
        // The clock ran backwards: the whole tick is refused.
        tick(&chronicle, &work, 5_000);
        let window = chronicle.window("bus.published", Resolution::Raw, 0, u64::MAX);
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].to_ms, 10_000);
        assert_eq!(registry.snapshot().counters["chronicle.appends_skipped"], 1);
        // A stalled clock (same instant) is allowed and folds forward.
        work.counter("bus.published").add(1);
        tick(&chronicle, &work, 10_000);
        let window = chronicle.window("bus.published", Resolution::Raw, 0, u64::MAX);
        assert_eq!(window.len(), 2, "zero-width tick still appends");
    }

    #[test]
    fn zero_width_window_rate_is_none() {
        let (chronicle, _) = store(Retention::default());
        let work = MetricsRegistry::new();
        work.counter("bus.published").add(3);
        tick(&chronicle, &work, 1_000);
        work.counter("bus.published").add(3);
        tick(&chronicle, &work, 1_000); // stalled clock: same instant
        assert_eq!(
            chronicle.rate("bus.published", Resolution::Raw, 0, u64::MAX),
            None,
            "zero-width window must not divide by zero"
        );
        // delta still answers (no division involved).
        assert!(chronicle
            .delta("bus.published", Resolution::Raw, 0, u64::MAX)
            .is_some());
    }

    #[test]
    fn histogram_reset_restarts_the_baseline() {
        let (chronicle, _) = store(Retention::default());
        let work = MetricsRegistry::new();
        work.histogram("lat").record(1_000);
        work.histogram("lat").record(1_000);
        tick(&chronicle, &work, 1_000);
        // A fresh registry with a smaller cumulative count stands in
        // for a restarted component.
        let restarted = MetricsRegistry::new();
        restarted.histogram("lat").record(2_000);
        tick(&chronicle, &restarted, 2_000);
        let window = chronicle.window("lat", Resolution::Raw, 0, u64::MAX);
        assert_eq!(window.len(), 2);
        assert_eq!(window[1].count, 1, "reset becomes a fresh baseline");
    }

    #[test]
    fn auto_resolution_falls_back_as_raw_ages_out() {
        let (chronicle, _) = store(Retention {
            raw: 3,
            minutes: 600,
            hours: 48,
        });
        let work = MetricsRegistry::new();
        for i in 0..20u64 {
            work.gauge("g").set(i as i64);
            tick(&chronicle, &work, i * 60_000);
        }
        // Raw holds only the last 3 ticks; earlier times need minutes.
        assert_eq!(chronicle.auto_resolution("g", 19 * 60_000), Resolution::Raw);
        assert_eq!(chronicle.auto_resolution("g", 0), Resolution::Minute);
    }

    #[test]
    fn merge_buckets_sums_shared_bounds() {
        assert_eq!(
            merge_buckets(&[(7, 2), (1023, 1)], &[(7, 1), (63, 5)]),
            vec![(7, 3), (63, 5), (1023, 1)]
        );
        assert_eq!(merge_buckets(&[], &[(1, 1)]), vec![(1, 1)]);
    }
}
