//! # css-chronicle — long-horizon metrics history
//!
//! Every other observability surface in the platform is instantaneous:
//! `/metrics` is the current snapshot, the blackbox ring holds minutes,
//! SLO burn rates see at most 60 samples. This crate is the memory: an
//! embedded time-series store fed one [`TelemetrySnapshot`] per sampler
//! tick, answering "what did `stage.total` p99 look like over the last
//! hour, and is it drifting?"
//!
//! ## Ring of rings
//!
//! Each metric keeps three bounded tiers ([`Retention`]): raw per-tick
//! points, 1-minute slots, and 1-hour slots. Every append folds into
//! the aligned minute/hour slot in place, so downsampling costs O(1)
//! per tick and the store's footprint is fixed. Histogram points are
//! per-tick **deltas** of the cumulative log₂ buckets — merging any
//! window of them reconstructs the latency distribution over exactly
//! that window, which is what makes [`Chronicle::quantile_over_time`]
//! honest at every resolution.
//!
//! ## Confinement
//!
//! The store ingests only [`TelemetrySnapshot`] aggregates — counts,
//! gauges, bucket counts. No event payload, citizen identifier, or
//! policy input exists anywhere in this crate, so the query surface
//! ([`query_json`], [`range_json`]) and the incident history embed
//! ([`history_json`]) are leak-free by construction. css-lint enforces
//! this: the crate sits in the detail-confinement set at layer 3.
//!
//! ## Drift detection
//!
//! [`AnomalyDetector`] watches one value per tick with EWMA + MAD
//! baselines that freeze while anomalous (an outage must not become
//! the new normal). css-core registers it as a health check (drift →
//! `Degraded`) and captures a blackbox incident — with the relevant
//! history window embedded — on the rising edge.
//!
//! [`TelemetrySnapshot`]: css_telemetry::TelemetrySnapshot

mod anomaly;
mod query;
mod store;

pub use anomaly::{AnomalyConfig, AnomalyDetector, AnomalyStatus, AnomalyVerdict};
pub use query::{history_json, query_json, range_json};
pub use store::{Aggregate, Chronicle, MetricKind, Resolution, Retention};

#[cfg(test)]
mod health_wiring {
    use super::*;
    use css_health::{FnCheck, HealthCheck, HealthStatus};
    use css_telemetry::MetricsRegistry;
    use std::sync::Arc;

    /// The detector drives a real `FnCheck` the way css-core wires it:
    /// drift reports `Degraded`, recovery reports `Healthy`.
    #[test]
    fn detector_backs_a_health_check() {
        let snapshot = MetricsRegistry::new().snapshot();
        let detector = Arc::new(AnomalyDetector::new(AnomalyConfig::new("stage.total")));
        let check = {
            let detector = Arc::clone(&detector);
            FnCheck::new("chronicle-anomaly", move || {
                let s = detector.status();
                if s.anomalous {
                    HealthStatus::degraded(format!(
                        "{} drifting: {:.0} vs expected {:.0}",
                        s.metric, s.value, s.expected
                    ))
                } else {
                    HealthStatus::Healthy
                }
            })
        };
        for _ in 0..20 {
            detector.observe(50_000.0);
        }
        assert_eq!(check.check(&snapshot), HealthStatus::Healthy);
        detector.observe(5_000_000.0);
        match check.check(&snapshot) {
            HealthStatus::Degraded { reason } => {
                assert!(reason.contains("stage.total"), "{reason}")
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        for _ in 0..5 {
            detector.observe(50_000.0);
        }
        assert_eq!(check.check(&snapshot), HealthStatus::Healthy);
    }
}
