//! EWMA + MAD drift detection over a chronicle series.
//!
//! The detector watches one value per sampler tick (for histograms,
//! the per-tick p99 the store computes anyway) and keeps two
//! exponentially weighted baselines: the **EWMA** of the value (what
//! "normal" looks like) and the **MAD** — the EWMA of the absolute
//! deviation from that mean (how much "normal" wobbles). A tick whose
//! deviation exceeds `k × MAD` is anomalous. While anomalous the
//! baselines **freeze**: a sustained regression must not teach the
//! detector that 5 ms is the new normal, so the drift stays visible
//! (as a `Degraded` health check, wired up by `css-core`) until the
//! metric actually recovers.
//!
//! The rising edge of the anomalous state is the incident hook: the
//! platform uses it to freeze the blackbox ring with the relevant
//! history window embedded in the bundle.

use std::sync::{Mutex, PoisonError};

/// How a detector is tuned.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// The chronicle metric to watch (histograms are watched through
    /// their per-tick p99).
    pub metric: String,
    /// EWMA smoothing factor in `(0, 1]`; higher adapts faster.
    pub alpha: f64,
    /// Deviation multiplier: a tick is anomalous past `k × MAD`.
    pub k: f64,
    /// Ticks observed before the detector starts judging.
    pub warmup: u64,
}

impl AnomalyConfig {
    /// Production defaults: alpha 0.3, k 6, warmup 8 ticks.
    pub fn new(metric: impl Into<String>) -> AnomalyConfig {
        AnomalyConfig {
            metric: metric.into(),
            alpha: 0.3,
            k: 6.0,
            warmup: 8,
        }
    }
}

/// What one observation concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyVerdict {
    /// This tick *entered* the anomalous state (the capture trigger).
    pub edge: bool,
    /// The detector is currently in the anomalous state.
    pub anomalous: bool,
    /// The observed value.
    pub value: f64,
    /// The frozen/learned baseline (EWMA).
    pub expected: f64,
    /// `|value − expected|`.
    pub deviation: f64,
}

/// Point-in-time detector state for the health check and ops JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyStatus {
    /// The watched metric.
    pub metric: String,
    /// Whether the series is currently drifting.
    pub anomalous: bool,
    /// Last observed value.
    pub value: f64,
    /// Learned baseline at the last observation.
    pub expected: f64,
    /// Ticks observed so far.
    pub samples: u64,
    /// Rising edges seen so far.
    pub edges: u64,
}

struct DetectorState {
    ewma: f64,
    mad: f64,
    samples: u64,
    anomalous: bool,
    edges: u64,
    last_value: f64,
}

/// An EWMA+MAD drift detector over one metric. `&self` everywhere —
/// the sampler observer writes, the health check and ops JSON read.
pub struct AnomalyDetector {
    config: AnomalyConfig,
    state: Mutex<DetectorState>,
}

impl AnomalyDetector {
    /// A fresh detector; it starts judging after `config.warmup` ticks.
    pub fn new(config: AnomalyConfig) -> AnomalyDetector {
        AnomalyDetector {
            config,
            state: Mutex::new(DetectorState {
                ewma: 0.0,
                mad: 0.0,
                samples: 0,
                anomalous: false,
                edges: 0,
                last_value: 0.0,
            }),
        }
    }

    /// The watched metric name.
    pub fn metric(&self) -> &str {
        &self.config.metric
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DetectorState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Feed one per-tick value. Returns the verdict; `verdict.edge` is
    /// the trigger for an incident capture.
    pub fn observe(&self, value: f64) -> AnomalyVerdict {
        let AnomalyConfig {
            alpha, k, warmup, ..
        } = self.config;
        let mut s = self.lock();
        s.samples += 1;
        s.last_value = value;
        if s.samples == 1 {
            s.ewma = value;
        }
        let deviation = (value - s.ewma).abs();
        // The wobble floor keeps a near-constant warmup (MAD ≈ 0) from
        // flagging harmless jitter: the band is never tighter than 20%
        // of the baseline.
        let band = k * s.mad.max(s.ewma.abs() * 0.2);
        let judging = s.samples > warmup;
        let was = s.anomalous;
        if judging && deviation > band {
            s.anomalous = true;
        } else if s.anomalous && deviation <= band / 2.0 {
            // Hysteresis: recover only once clearly back inside the band.
            s.anomalous = false;
        }
        let edge = s.anomalous && !was;
        if edge {
            s.edges += 1;
        }
        // Baselines learn only from normal ticks (and warmup): an
        // outage must not become the new normal.
        if !s.anomalous {
            s.ewma = (1.0 - alpha) * s.ewma + alpha * value;
            s.mad = (1.0 - alpha) * s.mad + alpha * deviation;
        }
        AnomalyVerdict {
            edge,
            anomalous: s.anomalous,
            value,
            expected: s.ewma,
            deviation,
        }
    }

    /// Whether the series is currently drifting.
    pub fn is_anomalous(&self) -> bool {
        self.lock().anomalous
    }

    /// Current state, for the health check and ops JSON.
    pub fn status(&self) -> AnomalyStatus {
        let s = self.lock();
        AnomalyStatus {
            metric: self.config.metric.clone(),
            anomalous: s.anomalous,
            value: s.last_value,
            expected: s.ewma,
            samples: s.samples,
            edges: s.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_then_degraded(detector: &AnomalyDetector, healthy: u64) -> Option<u64> {
        // Jittery but healthy baseline around 50 µs.
        for i in 0..healthy {
            let jitter = (i % 5) as f64 * 1_500.0;
            let v = detector.observe(50_000.0 + jitter);
            assert!(!v.anomalous, "healthy tick {i} flagged: {v:?}");
        }
        // Degraded: a 100× p99 regression. The acceptance criterion:
        // the state must flip within 2 ticks of the regression.
        (1..=2u64).find(|_| detector.observe(5_000_000.0).edge)
    }

    #[test]
    fn flips_within_two_ticks_of_a_regression() {
        let detector = AnomalyDetector::new(AnomalyConfig::new("stage.total"));
        let flipped_at = healthy_then_degraded(&detector, 30);
        assert_eq!(flipped_at, Some(1), "regression flagged on first tick");
        assert!(detector.is_anomalous());
        let status = detector.status();
        assert_eq!(status.edges, 1);
        assert!(
            status.expected < 100_000.0,
            "baseline did not chase the spike"
        );
    }

    #[test]
    fn edge_fires_once_per_episode_and_recovers() {
        let detector = AnomalyDetector::new(AnomalyConfig::new("stage.total"));
        assert!(healthy_then_degraded(&detector, 20).is_some());
        // Sustained regression: anomalous, but no second edge.
        for _ in 0..20 {
            let v = detector.observe(5_000_000.0);
            assert!(v.anomalous);
            assert!(!v.edge, "sustained drift must not re-trigger");
        }
        // Recovery: back inside the (frozen) band clears the state.
        for _ in 0..5 {
            detector.observe(50_000.0);
        }
        assert!(!detector.is_anomalous(), "recovered");
        // A second episode fires a second edge.
        let v = detector.observe(5_000_000.0);
        assert!(v.edge, "fresh episode re-triggers");
        assert_eq!(detector.status().edges, 2);
    }

    #[test]
    fn warmup_never_judges() {
        let detector = AnomalyDetector::new(AnomalyConfig::new("m"));
        // Wild swings inside warmup (8 ticks) must not flag.
        for v in [10.0, 9_000_000.0, 5.0, 2_000_000.0] {
            assert!(!detector.observe(v).anomalous, "warmup must not judge");
        }
    }

    #[test]
    fn constant_series_tolerates_proportional_jitter() {
        let detector = AnomalyDetector::new(AnomalyConfig::new("m"));
        for _ in 0..50 {
            assert!(!detector.observe(100_000.0).anomalous);
        }
        // 10% wobble sits inside the 20% floor band.
        assert!(!detector.observe(110_000.0).anomalous);
        // 10× does not.
        assert!(detector.observe(1_000_000.0).anomalous);
    }
}
