//! The query layer: URL-style query strings in, JSON documents out.
//!
//! Everything returned is an aggregate over retained telemetry — metric
//! names, timestamps, counts, and nanosecond estimates; no identifier,
//! payload field, or policy input ever enters the store, so none can
//! leave it. The two documents back the ops server's `GET /query`
//! (function evaluation: `rate`, `delta`, `quantile_over_time`, instant
//! and stepped) and `GET /range` (the retained slots themselves).

use css_telemetry::JsonBuf;

use crate::anomaly::AnomalyDetector;
use crate::store::{Aggregate, Chronicle, MetricKind, Resolution};

/// Parsed `key=value` pairs from a raw query string. No percent
/// decoding: metric names are dotted identifiers by construction.
fn param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn num(query: &str, key: &str) -> Option<u64> {
    param(query, key).and_then(|v| v.parse().ok())
}

fn error_json(message: &str, chronicle: &Chronicle) -> String {
    let mut j = JsonBuf::new();
    j.begin_object();
    j.key("error").string(message);
    j.key("metrics").begin_array();
    for (name, kind) in chronicle.series_names() {
        j.begin_object();
        j.key("metric").string(&name);
        j.key("kind").string(kind.label());
        j.end_object();
    }
    j.end_array().end_object();
    j.finish()
}

struct Target {
    metric: String,
    kind: MetricKind,
    res: Resolution,
    from_ms: u64,
    to_ms: u64,
}

/// Resolve the shared `metric`/`res`/`from`/`to` params; `from`/`to`
/// default to the full retained window at the chosen resolution.
fn resolve(chronicle: &Chronicle, query: &str) -> Result<Target, String> {
    let metric = param(query, "metric").ok_or("missing required param: metric")?;
    let kind = chronicle
        .kind(metric)
        .ok_or_else(|| format!("unknown metric: {metric}"))?;
    let from_ms = num(query, "from").unwrap_or(0);
    let to_ms = num(query, "to").unwrap_or(u64::MAX);
    let res = match param(query, "res") {
        None => chronicle.auto_resolution(metric, from_ms),
        Some(s) => Resolution::parse(s).ok_or_else(|| format!("bad res: {s} (raw|minute|hour)"))?,
    };
    Ok(Target {
        metric: metric.to_string(),
        kind,
        res,
        from_ms,
        to_ms,
    })
}

/// Evaluate one query function over a window.
fn eval(chronicle: &Chronicle, t: &Target, func: &str, q: f64, from: u64, to: u64) -> Option<f64> {
    match func {
        "last" => chronicle.merged(&t.metric, t.res, from, to).map(|a| a.last),
        "min" => chronicle.merged(&t.metric, t.res, from, to).map(|a| a.min),
        "max" => chronicle.merged(&t.metric, t.res, from, to).map(|a| a.max),
        "avg" | "mean" => chronicle
            .merged(&t.metric, t.res, from, to)
            .map(|a| a.mean()),
        "rate" => chronicle.rate(&t.metric, t.res, from, to),
        "delta" => chronicle.delta(&t.metric, t.res, from, to),
        "quantile_over_time" | "quantile" => chronicle
            .quantile_over_time(&t.metric, q, t.res, from, to)
            .map(|ns| ns as f64),
        _ => None,
    }
}

/// `GET /query`: evaluate `fn` (default `last`) over `[from, to]`.
/// With `step`, the window is cut into `step`-wide slices and the
/// function is evaluated per slice (`points` array); without, one
/// `value` comes back. `fn=quantile_over_time` reads `q` (default
/// 0.99). Unknown metrics and malformed params answer with an `error`
/// document listing the retained metrics.
pub fn query_json(chronicle: &Chronicle, query: &str) -> String {
    let t = match resolve(chronicle, query) {
        Ok(t) => t,
        Err(e) => return error_json(&e, chronicle),
    };
    let func = match param(query, "fn") {
        None => "last",
        Some(f @ ("p50" | "p90" | "p99")) => {
            // Shorthand: fn=p99 is quantile_over_time with the fixed q.
            return quantile_shorthand(chronicle, &t, f, query);
        }
        Some(f) => f,
    };
    let q: f64 = param(query, "q")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.99);
    if eval(chronicle, &t, func, q, 0, u64::MAX).is_none() && !known_fn(func) {
        return error_json(
            &format!("bad fn: {func} (last|min|max|avg|rate|delta|quantile_over_time)"),
            chronicle,
        );
    }

    let mut j = JsonBuf::new();
    j.begin_object();
    j.key("metric").string(&t.metric);
    j.key("kind").string(t.kind.label());
    j.key("resolution").string(t.res.label());
    j.key("fn").string(func);
    if func.starts_with("quantile") {
        j.key("q").f64(q);
    }
    j.key("from_ms").u64(t.from_ms);
    j.key("to_ms").u64(t.to_ms.min(9_007_199_254_740_991)); // JSON-safe
    match num(query, "step") {
        None => {
            j.key("samples")
                .u64(chronicle.window(&t.metric, t.res, t.from_ms, t.to_ms).len() as u64);
            j.key("value");
            match eval(chronicle, &t, func, q, t.from_ms, t.to_ms) {
                Some(v) => j.f64(v),
                None => j.f64(f64::NAN), // renders null: empty window
            };
        }
        Some(step) => {
            let step = step.max(1);
            j.key("step_ms").u64(step);
            j.key("points").begin_array();
            let mut start = t.from_ms;
            // Bound the slice count so a hostile step cannot spin the
            // worker; the rings hold bounded slots anyway.
            let mut slices = 0;
            while start <= t.to_ms && slices < 10_000 {
                let end = start.saturating_add(step - 1).min(t.to_ms);
                if let Some(v) = eval(chronicle, &t, func, q, start, end) {
                    j.begin_object();
                    j.key("t").u64(start);
                    j.key("value").f64(v);
                    j.end_object();
                }
                if end == u64::MAX {
                    break;
                }
                start = end + 1;
                slices += 1;
            }
            j.end_array();
        }
    }
    j.end_object();
    j.finish()
}

fn known_fn(func: &str) -> bool {
    matches!(
        func,
        "last"
            | "min"
            | "max"
            | "avg"
            | "mean"
            | "rate"
            | "delta"
            | "quantile_over_time"
            | "quantile"
    )
}

fn quantile_shorthand(chronicle: &Chronicle, t: &Target, f: &str, query: &str) -> String {
    let q = match f {
        "p50" => 0.50,
        "p90" => 0.90,
        _ => 0.99,
    };
    let rewritten = format!(
        "metric={}&res={}&from={}&to={}&fn=quantile_over_time&q={q}{}",
        t.metric,
        t.res.label(),
        t.from_ms,
        t.to_ms,
        num(query, "step")
            .map(|s| format!("&step={s}"))
            .unwrap_or_default()
    );
    query_json(chronicle, &rewritten)
}

fn write_aggregate(j: &mut JsonBuf, a: &Aggregate, kind: MetricKind) {
    j.begin_object();
    j.key("from_ms").u64(a.from_ms);
    j.key("to_ms").u64(a.to_ms);
    j.key("count").u64(a.count);
    j.key("sum").f64(a.sum);
    j.key("min").f64(a.min);
    j.key("max").f64(a.max);
    j.key("last").f64(a.last);
    if kind == MetricKind::Histogram {
        j.key("p50_ns").u64(a.quantile_ns(0.50).unwrap_or(0));
        j.key("p99_ns").u64(a.quantile_ns(0.99).unwrap_or(0));
    }
    j.end_object();
}

/// `GET /range`: the retained slots of one metric over `[from, to]` at
/// `res` (default: the finest resolution that still covers `from`),
/// oldest first, each with count/sum/min/max/last and — for histograms
/// — per-slot p50/p99 from the merged delta buckets.
pub fn range_json(chronicle: &Chronicle, query: &str) -> String {
    let t = match resolve(chronicle, query) {
        Ok(t) => t,
        Err(e) => return error_json(&e, chronicle),
    };
    let slots = chronicle.window(&t.metric, t.res, t.from_ms, t.to_ms);
    let mut j = JsonBuf::new();
    j.begin_object();
    j.key("metric").string(&t.metric);
    j.key("kind").string(t.kind.label());
    j.key("resolution").string(t.res.label());
    j.key("points").begin_array();
    for slot in &slots {
        write_aggregate(&mut j, slot, t.kind);
    }
    j.end_array();
    j.end_object();
    j.finish()
}

/// The history window an incident bundle embeds: the raw slots of the
/// listed metrics over `[from, to]`, plus the detector's view when one
/// is wired. Compact by construction — bounded rings, aggregate-only.
pub fn history_json(
    chronicle: &Chronicle,
    metrics: &[&str],
    detector: Option<&AnomalyDetector>,
    from_ms: u64,
    to_ms: u64,
) -> String {
    let mut j = JsonBuf::new();
    j.begin_object();
    j.key("from_ms").u64(from_ms);
    j.key("to_ms").u64(to_ms);
    if let Some(detector) = detector {
        let s = detector.status();
        j.key("anomaly").begin_object();
        j.key("metric").string(&s.metric);
        j.key("anomalous").bool(s.anomalous);
        j.key("value").f64(s.value);
        j.key("expected").f64(s.expected);
        j.key("edges").u64(s.edges);
        j.end_object();
    }
    j.key("series").begin_array();
    for metric in metrics {
        let Some(kind) = chronicle.kind(metric) else {
            continue;
        };
        j.begin_object();
        j.key("metric").string(metric);
        j.key("kind").string(kind.label());
        j.key("resolution").string(Resolution::Raw.label());
        j.key("points").begin_array();
        for slot in chronicle.window(metric, Resolution::Raw, from_ms, to_ms) {
            write_aggregate(&mut j, &slot, kind);
        }
        j.end_array();
        j.end_object();
    }
    j.end_array().end_object();
    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Retention;
    use css_telemetry::MetricsRegistry;
    use css_types::Timestamp;

    fn seeded() -> Chronicle {
        let registry = MetricsRegistry::new();
        let chronicle = Chronicle::new(Retention::default(), &registry);
        let work = MetricsRegistry::new();
        for i in 1..=10u64 {
            work.counter("bus.published").add(10);
            work.gauge("bus.queue_depth").set(i as i64);
            let ns = if i <= 8 { 1_000 } else { 4_000_000 };
            work.histogram("stage.total").record(ns);
            chronicle.append(&work.snapshot(), Timestamp(i * 1_000));
        }
        chronicle
    }

    #[test]
    fn instant_query_evaluates_functions() {
        let c = seeded();
        let json = query_json(&c, "metric=bus.published&fn=rate&res=raw");
        assert!(json.contains(r#""metric":"bus.published""#), "{json}");
        assert!(json.contains(r#""kind":"counter""#), "{json}");
        // 90 events over 9 s.
        assert!(json.contains(r#""value":10.0000"#), "{json}");

        let json = query_json(&c, "metric=stage.total&fn=quantile_over_time&q=0.99");
        assert!(json.contains(r#""q":0.9900"#), "{json}");
        let value: f64 = json
            .split(r#""value":"#)
            .nth(1)
            .and_then(|s| s.split(['}', ',']).next())
            .and_then(|s| s.parse().ok())
            .expect("value");
        assert!(value >= 4_000_000.0, "{json}");
    }

    #[test]
    fn stepped_query_returns_per_slice_points() {
        let c = seeded();
        let json = query_json(
            &c,
            "metric=bus.queue_depth&fn=max&from=1000&to=10000&step=5000",
        );
        assert!(json.contains(r#""step_ms":5000"#), "{json}");
        assert!(
            json.contains(r#""points":[{"t":1000,"value":5.0000}"#),
            "{json}"
        );
        assert!(json.contains(r#"{"t":6000,"value":10.0000}"#), "{json}");
    }

    #[test]
    fn p99_shorthand_matches_quantile() {
        let c = seeded();
        let shorthand = query_json(&c, "metric=stage.total&fn=p99&res=raw");
        let explicit = query_json(
            &c,
            "metric=stage.total&fn=quantile_over_time&q=0.99&res=raw",
        );
        let value = |j: &str| {
            j.split(r#""value":"#)
                .nth(1)
                .map(|s| s.split(['}']).next().unwrap_or("").to_string())
        };
        assert_eq!(value(&shorthand), value(&explicit));
    }

    #[test]
    fn errors_list_the_retained_metrics() {
        let c = seeded();
        let json = query_json(&c, "metric=no.such");
        assert!(
            json.contains(r#""error":"unknown metric: no.such""#),
            "{json}"
        );
        assert!(json.contains(r#""metric":"stage.total""#), "{json}");
        let json = query_json(&c, "fn=rate");
        assert!(json.contains("missing required param"), "{json}");
        let json = query_json(&c, "metric=stage.total&fn=explode");
        assert!(json.contains(r#""error":"bad fn: explode"#), "{json}");
        let json = query_json(&c, "metric=stage.total&res=weekly");
        assert!(json.contains(r#""error":"bad res: weekly"#), "{json}");
    }

    #[test]
    fn range_dumps_slots_with_histogram_quantiles() {
        let c = seeded();
        let json = range_json(&c, "metric=stage.total&res=raw");
        assert!(json.contains(r#""resolution":"raw""#), "{json}");
        assert!(json.contains(r#""p99_ns":"#), "{json}");
        let json = range_json(&c, "metric=bus.queue_depth&res=minute");
        assert!(json.contains(r#""resolution":"minute""#), "{json}");
        assert!(
            !json.contains("p99_ns"),
            "scalars carry no quantiles: {json}"
        );
    }

    #[test]
    fn history_embeds_series_and_detector_state() {
        let c = seeded();
        let detector = AnomalyDetector::new(crate::anomaly::AnomalyConfig::new("stage.total"));
        detector.observe(1_000.0);
        let json = history_json(
            &c,
            &["stage.total", "absent.metric"],
            Some(&detector),
            0,
            u64::MAX,
        );
        assert!(
            json.contains(r#""anomaly":{"metric":"stage.total""#),
            "{json}"
        );
        assert!(
            json.contains(r#""series":[{"metric":"stage.total""#),
            "{json}"
        );
        assert!(!json.contains("absent.metric"), "{json}");
    }
}
