//! Declarative SLOs evaluated as multi-window error-budget burn rates.
//!
//! The engine consumes periodic [`TelemetrySnapshot`]s (the sampler
//! thread takes one per tick), diffs each snapshot against the
//! previous one, and classifies the *new* observations in the window as
//! good or bad per objective:
//!
//! - a **latency** objective (`detail_request p99 < 200µs`) counts an
//!   observation bad when its log₂ bucket's upper bound exceeds the
//!   threshold (the same upper-bound convention the histogram's own
//!   quantiles use);
//! - an **error-ratio** objective (`publish error ratio < 0.1%`) counts
//!   the delta of an error counter against the delta of the attempt
//!   counters.
//!
//! Each tick's `(bad, total)` pair enters a sliding window; the burn
//! rate over a window is `observed bad fraction / allowed bad fraction`
//! — burn 1.0 spends exactly the error budget, sustained; burn 10 spends
//! it ten times too fast. Two windows are kept, SRE-style: **fast**
//! (last 5 samples, catches a live regression within a tick or two) and
//! **slow** (last 60 samples, catches slow leaks), mapped to
//! [`AlertLevel`]s.

use std::collections::VecDeque;

use css_telemetry::{HistogramSnapshot, TelemetrySnapshot};
use css_types::Timestamp;

use css_telemetry::JsonBuf;

/// Samples in the fast (paging) window.
pub const FAST_WINDOW: usize = 5;
/// Samples in the slow (ticketing) window; also the retained history.
pub const SLOW_WINDOW: usize = 60;
/// Fast-window burn rate at or above which an alert is `Critical`.
pub const CRITICAL_BURN: f64 = 10.0;

/// What a [`Slo`] measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// No more than `allowed` of observations in `histogram` may exceed
    /// `threshold_ns` (e.g. p99 < 200µs ⇔ allowed = 1%).
    LatencyP99 {
        /// Histogram instrument name, e.g. `stage.total`.
        histogram: String,
        /// Per-observation latency ceiling, nanoseconds.
        threshold_ns: u64,
    },
    /// No more than `allowed` of attempts may land on the error counter.
    ErrorRatio {
        /// Error counter name.
        errors: String,
        /// Attempt counters; their delta sum is the denominator (the
        /// error counter is included implicitly if listed).
        attempts: Vec<String>,
    },
}

impl SloObjective {
    /// One-line human description for reports.
    fn describe(&self, allowed: f64) -> String {
        match self {
            SloObjective::LatencyP99 {
                histogram,
                threshold_ns,
            } => format!(
                "{histogram}: at most {:.2}% of observations over {threshold_ns}ns",
                allowed * 100.0
            ),
            SloObjective::ErrorRatio { errors, attempts } => format!(
                "{errors} / ({}) below {:.2}%",
                attempts.join("+"),
                allowed * 100.0
            ),
        }
    }
}

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// Report name, e.g. `detail_request_p99`.
    pub name: String,
    /// What is measured.
    pub objective: SloObjective,
    /// Allowed bad fraction — the error budget per unit of traffic.
    pub allowed: f64,
}

impl Slo {
    /// `p99 < threshold` over a latency histogram: at most 1% of
    /// observations may exceed `threshold_ns`.
    pub fn latency_p99(
        name: impl Into<String>,
        histogram: impl Into<String>,
        threshold_ns: u64,
    ) -> Self {
        Slo {
            name: name.into(),
            objective: SloObjective::LatencyP99 {
                histogram: histogram.into(),
                threshold_ns,
            },
            allowed: 0.01,
        }
    }

    /// An error-ratio objective: `errors / Σ attempts < allowed`.
    pub fn error_ratio(
        name: impl Into<String>,
        errors: impl Into<String>,
        attempts: &[&str],
        allowed: f64,
    ) -> Self {
        Slo {
            name: name.into(),
            objective: SloObjective::ErrorRatio {
                errors: errors.into(),
                attempts: attempts.iter().map(|s| s.to_string()).collect(),
            },
            allowed: allowed.max(f64::MIN_POSITIVE), // a zero budget would divide by zero
        }
    }
}

/// Alert level derived from the two burn-rate windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertLevel {
    /// Burn below 1 on both windows: the budget outlives the period.
    Ok,
    /// Burn at or above 1 on either window: budget spending too fast.
    Warning,
    /// Fast-window burn at or above [`CRITICAL_BURN`]: page now.
    Critical,
}

impl AlertLevel {
    /// Wire code: `ok` / `warning` / `critical`.
    pub fn code(self) -> &'static str {
        match self {
            AlertLevel::Ok => "ok",
            AlertLevel::Warning => "warning",
            AlertLevel::Critical => "critical",
        }
    }
}

/// One SLO's evaluated state.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The SLO's name.
    pub name: String,
    /// Human description of the objective.
    pub objective: String,
    /// Burn rate over the last [`FAST_WINDOW`] samples.
    pub fast_burn: f64,
    /// Burn rate over the last [`SLOW_WINDOW`] samples.
    pub slow_burn: f64,
    /// Derived alert level.
    pub alert: AlertLevel,
    /// Samples currently in the window.
    pub samples: usize,
    /// Bad observations over the retained window.
    pub window_bad: u64,
    /// Total observations over the retained window.
    pub window_total: u64,
}

/// Per-SLO sliding window of `(bad, total)` tick deltas.
struct SloWindow {
    slo: Slo,
    ticks: VecDeque<(u64, u64)>,
}

impl SloWindow {
    fn burn(&self, window: usize, allowed: f64) -> f64 {
        let (mut bad, mut total) = (0u64, 0u64);
        for (b, t) in self.ticks.iter().rev().take(window) {
            bad += b;
            total += t;
        }
        if total == 0 {
            return 0.0; // no traffic burns no budget
        }
        (bad as f64 / total as f64) / allowed
    }
}

/// The burn-rate engine: feed it snapshots, read the alert table.
#[derive(Default)]
pub struct SloEngine {
    windows: Vec<SloWindow>,
    prev: Option<TelemetrySnapshot>,
    ticks: u64,
    last_sample_at: Timestamp,
}

impl SloEngine {
    /// An engine with no objectives.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an objective (report order = registration order).
    pub fn register(&mut self, slo: Slo) {
        self.windows.push(SloWindow {
            slo,
            ticks: VecDeque::with_capacity(SLOW_WINDOW),
        });
    }

    /// Objectives registered.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no objectives are registered.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Snapshots consumed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Consume one snapshot taken at platform time `at`: diff it
    /// against the previous one and push each SLO's `(bad, total)`
    /// delta into its window. The first snapshot only establishes the
    /// baseline.
    pub fn tick(&mut self, snapshot: &TelemetrySnapshot, at: Timestamp) {
        self.ticks += 1;
        self.last_sample_at = at;
        if let Some(prev) = &self.prev {
            for w in &mut self.windows {
                let sample = eval_delta(&w.slo.objective, prev, snapshot);
                if w.ticks.len() == SLOW_WINDOW {
                    w.ticks.pop_front();
                }
                w.ticks.push_back(sample);
            }
        }
        self.prev = Some(snapshot.clone());
    }

    /// The evaluated burn-rate table, in registration order.
    pub fn table(&self) -> Vec<SloStatus> {
        self.windows
            .iter()
            .map(|w| {
                let fast = w.burn(FAST_WINDOW, w.slo.allowed);
                let slow = w.burn(SLOW_WINDOW, w.slo.allowed);
                let alert = if fast >= CRITICAL_BURN {
                    AlertLevel::Critical
                } else if fast >= 1.0 || slow >= 1.0 {
                    AlertLevel::Warning
                } else {
                    AlertLevel::Ok
                };
                let (bad, total) = w
                    .ticks
                    .iter()
                    .fold((0, 0), |(b, t), (db, dt)| (b + db, t + dt));
                SloStatus {
                    name: w.slo.name.clone(),
                    objective: w.slo.objective.describe(w.slo.allowed),
                    fast_burn: fast,
                    slow_burn: slow,
                    alert,
                    samples: w.ticks.len(),
                    window_bad: bad,
                    window_total: total,
                }
            })
            .collect()
    }

    /// The JSON document served on `GET /slo`.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_object();
        j.key("ticks").u64(self.ticks);
        j.key("last_sample_at_ms")
            .u64(self.last_sample_at.as_millis());
        j.key("fast_window").u64(FAST_WINDOW as u64);
        j.key("slow_window").u64(SLOW_WINDOW as u64);
        j.key("slos").begin_array();
        for s in self.table() {
            j.begin_object();
            j.key("name").string(&s.name);
            j.key("objective").string(&s.objective);
            j.key("fast_burn").f64(s.fast_burn);
            j.key("slow_burn").f64(s.slow_burn);
            j.key("alert").string(s.alert.code());
            j.key("samples").u64(s.samples as u64);
            j.key("window_bad").u64(s.window_bad);
            j.key("window_total").u64(s.window_total);
            j.end_object();
        }
        j.end_array();
        j.end_object();
        j.finish()
    }
}

/// The `(bad, total)` of observations that arrived between two
/// snapshots, per the objective.
fn eval_delta(
    objective: &SloObjective,
    prev: &TelemetrySnapshot,
    cur: &TelemetrySnapshot,
) -> (u64, u64) {
    match objective {
        SloObjective::LatencyP99 {
            histogram,
            threshold_ns,
        } => {
            let empty = HistogramSnapshot::default();
            let a = prev.histogram(histogram).unwrap_or(&empty);
            let b = cur.histogram(histogram).unwrap_or(&empty);
            histogram_delta_over(a, b, *threshold_ns)
        }
        SloObjective::ErrorRatio { errors, attempts } => {
            let bad = cur.counter(errors).saturating_sub(prev.counter(errors));
            let total: u64 = attempts
                .iter()
                .map(|c| cur.counter(c).saturating_sub(prev.counter(c)))
                .sum();
            (bad.min(total), total)
        }
    }
}

/// New observations between two cumulative histogram snapshots, split
/// into (over threshold, all). A bucket counts as over when its upper
/// bound exceeds the threshold — the histogram's own upper-bound
/// quantile convention, so `p99 < t` and `burn(t) < 1` agree.
fn histogram_delta_over(
    prev: &HistogramSnapshot,
    cur: &HistogramSnapshot,
    threshold_ns: u64,
) -> (u64, u64) {
    let mut bad = 0u64;
    let mut total = 0u64;
    for (bound, n) in &cur.buckets {
        let before = prev
            .buckets
            .iter()
            .find(|(b, _)| b == bound)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let delta = n.saturating_sub(before);
        total += delta;
        if *bound > threshold_ns {
            bad += delta;
        }
    }
    (bad, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_telemetry::MetricsRegistry;

    fn engine_with(slo: Slo) -> (MetricsRegistry, SloEngine) {
        let reg = MetricsRegistry::new();
        let mut engine = SloEngine::new();
        engine.register(slo);
        (reg, engine)
    }

    #[test]
    fn no_traffic_burns_nothing() {
        let (reg, mut engine) = engine_with(Slo::latency_p99("lat", "stage.total", 200_000));
        engine.tick(&reg.snapshot(), Timestamp(0));
        engine.tick(&reg.snapshot(), Timestamp(100));
        let t = &engine.table()[0];
        assert_eq!(t.fast_burn, 0.0);
        assert_eq!(t.alert, AlertLevel::Ok);
        assert_eq!(t.window_total, 0);
    }

    #[test]
    fn fast_traffic_within_budget_is_ok() {
        let (reg, mut engine) = engine_with(Slo::latency_p99("lat", "stage.total", 200_000));
        engine.tick(&reg.snapshot(), Timestamp(0));
        for _ in 0..1_000 {
            reg.histogram("stage.total").record(50_000); // well under
        }
        engine.tick(&reg.snapshot(), Timestamp(100));
        let t = &engine.table()[0];
        assert_eq!(t.fast_burn, 0.0);
        assert_eq!(t.window_total, 1_000);
        assert_eq!(t.alert, AlertLevel::Ok);
    }

    #[test]
    fn forced_p99_regression_goes_critical_in_one_traffic_tick() {
        let (reg, mut engine) = engine_with(Slo::latency_p99("lat", "stage.total", 200_000));
        engine.tick(&reg.snapshot(), Timestamp(0));
        // Every observation lands over the threshold: bad fraction 1.0,
        // burn = 1.0 / 0.01 = 100 ≫ CRITICAL_BURN.
        for _ in 0..100 {
            reg.histogram("stage.total").record(5_000_000);
        }
        engine.tick(&reg.snapshot(), Timestamp(100));
        let t = &engine.table()[0];
        assert!(t.fast_burn > CRITICAL_BURN, "burn={}", t.fast_burn);
        assert_eq!(t.alert, AlertLevel::Critical);
        assert_eq!(t.window_bad, 100);
    }

    #[test]
    fn borderline_burn_warns_before_paging() {
        let (reg, mut engine) = engine_with(Slo::latency_p99("lat", "stage.total", 200_000));
        engine.tick(&reg.snapshot(), Timestamp(0));
        // 2% of observations slow: burn = 2 — over budget but not 10×.
        for _ in 0..980 {
            reg.histogram("stage.total").record(1_000);
        }
        for _ in 0..20 {
            reg.histogram("stage.total").record(5_000_000);
        }
        engine.tick(&reg.snapshot(), Timestamp(100));
        let t = &engine.table()[0];
        assert!(t.fast_burn > 1.0 && t.fast_burn < CRITICAL_BURN);
        assert_eq!(t.alert, AlertLevel::Warning);
    }

    #[test]
    fn error_ratio_counts_counter_deltas() {
        let (reg, mut engine) = engine_with(Slo::error_ratio(
            "publish_errors",
            "controller.publish_denied",
            &["controller.published", "controller.publish_denied"],
            0.001,
        ));
        reg.counter("controller.published").add(1_000); // pre-baseline
        engine.tick(&reg.snapshot(), Timestamp(0));
        reg.counter("controller.published").add(999);
        reg.counter("controller.publish_denied").add(1);
        engine.tick(&reg.snapshot(), Timestamp(100));
        let t = &engine.table()[0];
        // 1/1000 errors against a 0.1% budget: burn exactly 1.0.
        assert!((t.fast_burn - 1.0).abs() < 1e-9, "burn={}", t.fast_burn);
        assert_eq!(t.alert, AlertLevel::Warning);
        assert_eq!(t.window_total, 1_000);
    }

    #[test]
    fn fast_window_recovers_while_slow_window_remembers() {
        let (reg, mut engine) = engine_with(Slo::latency_p99("lat", "stage.total", 200_000));
        engine.tick(&reg.snapshot(), Timestamp(0));
        for _ in 0..100 {
            reg.histogram("stage.total").record(5_000_000); // regression tick
        }
        engine.tick(&reg.snapshot(), Timestamp(1));
        // FAST_WINDOW quiet-but-busy ticks push the incident out of the
        // fast window while it stays inside the slow one.
        for tick in 0..FAST_WINDOW as u64 {
            for _ in 0..10_000 {
                reg.histogram("stage.total").record(1_000);
            }
            engine.tick(&reg.snapshot(), Timestamp(2 + tick));
        }
        let t = &engine.table()[0];
        assert_eq!(t.fast_burn, 0.0, "incident aged out of the fast window");
        assert!(t.slow_burn > 0.0, "slow window still carries it");
    }

    #[test]
    fn window_is_bounded_at_slow_window() {
        let (reg, mut engine) = engine_with(Slo::latency_p99("lat", "stage.total", 200_000));
        for i in 0..(SLOW_WINDOW as u64 + 20) {
            reg.histogram("stage.total").record(1_000);
            engine.tick(&reg.snapshot(), Timestamp(i));
        }
        assert_eq!(engine.table()[0].samples, SLOW_WINDOW);
        assert_eq!(engine.ticks(), SLOW_WINDOW as u64 + 20);
    }

    #[test]
    fn json_renders_the_table() {
        let (reg, mut engine) = engine_with(Slo::latency_p99("lat", "stage.total", 200_000));
        engine.tick(&reg.snapshot(), Timestamp(42));
        let json = engine.to_json();
        assert!(
            json.starts_with("{\"ticks\":1,\"last_sample_at_ms\":42,"),
            "{json}"
        );
        assert!(json.contains("\"name\":\"lat\""));
        assert!(json.contains("\"alert\":\"ok\""));
    }
}
