//! The ops exposition server: a zero-dependency HTTP/1.0 endpoint on
//! `std::net::TcpListener`.
//!
//! Deliberately minimal: one accept thread feeding a small fixed pool
//! of handler threads over a bounded channel, a bounded request read
//! (8 KiB, 2 s timeout), `Connection: close` on every response. The
//! server holds no platform locks while reading from the network — it
//! only calls the [`OpsState`] closures after a request has fully
//! parsed, so a slow or malicious scraper cannot stall the platform.
//!
//! Everything served is an *aggregate* (counters, gauges, histogram
//! buckets, span timings, KPI totals). Payload bytes, decrypted
//! identifiers, and policy inputs never reach this module: the closures
//! are built from [`css_telemetry::TelemetrySnapshot`] and the other
//! privacy-safe read models, none of which can name a detail payload
//! (enforced workspace-wide by `css-lint`'s detail-confinement rule,
//! which covers this crate).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use css_telemetry::TelemetrySnapshot;

use crate::prometheus::render_prometheus;
use crate::status::HealthReport;

/// Handler threads in the pool.
const POOL_SIZE: usize = 2;
/// Queued-but-unhandled connections before accept blocks.
const QUEUE_DEPTH: usize = 16;
/// Largest request head we will buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection read deadline.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

type SnapshotFn = Arc<dyn Fn() -> TelemetrySnapshot + Send + Sync>;
type ReportFn = Arc<dyn Fn() -> HealthReport + Send + Sync>;
type JsonFn = Arc<dyn Fn() -> String + Send + Sync>;
type QueryFn = Arc<dyn Fn(&str) -> String + Send + Sync>;

/// The read models behind each endpoint, injected as closures so this
/// crate stays independent of the crates that own them (the platform
/// wires `/traces` from `css-trace` and `/monitor` from `css-monitor`
/// without this crate depending on either).
#[derive(Clone)]
pub struct OpsState {
    metrics: SnapshotFn,
    health: ReportFn,
    slo: JsonFn,
    traces: JsonFn,
    monitor: JsonFn,
    incidents: JsonFn,
    exemplars: JsonFn,
    capture: Option<JsonFn>,
    query: Option<QueryFn>,
    range: Option<QueryFn>,
}

impl OpsState {
    /// State serving `/metrics`, `/health`, and `/slo`; `/traces` and
    /// `/monitor` default to empty documents until injected.
    pub fn new(
        metrics: impl Fn() -> TelemetrySnapshot + Send + Sync + 'static,
        health: impl Fn() -> HealthReport + Send + Sync + 'static,
        slo: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        OpsState {
            metrics: Arc::new(metrics),
            health: Arc::new(health),
            slo: Arc::new(slo),
            traces: Arc::new(|| "[]".to_string()),
            monitor: Arc::new(|| "{}".to_string()),
            incidents: Arc::new(|| r#"{"incidents":[]}"#.to_string()),
            exemplars: Arc::new(|| r#"{"exemplars":[]}"#.to_string()),
            capture: None,
            query: None,
            range: None,
        }
    }

    /// Serve `f`'s output (Chrome trace JSON) on `GET /traces`.
    pub fn with_traces(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.traces = Arc::new(f);
        self
    }

    /// Serve `f`'s output (PRM KPI JSON) on `GET /monitor`.
    pub fn with_monitor(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.monitor = Arc::new(f);
        self
    }

    /// Serve `f`'s output (the flight recorder's recent-incident list)
    /// on `GET /debug/incidents`.
    pub fn with_incidents(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.incidents = Arc::new(f);
        self
    }

    /// Serve `f`'s output (current histogram exemplars, trace ids
    /// only) on `GET /debug/exemplars`.
    pub fn with_exemplars(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.exemplars = Arc::new(f);
        self
    }

    /// Run `f` (a manual flight-recorder capture, returning the frozen
    /// bundle JSON) on `POST /debug/capture`. Until wired, the endpoint
    /// answers 404.
    pub fn with_capture(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.capture = Some(Arc::new(f));
        self
    }

    /// Serve `f(raw_query)` (a chronicle instant/function evaluation)
    /// on `GET /query?metric=...`. Until wired, the endpoint answers
    /// 404.
    pub fn with_query(mut self, f: impl Fn(&str) -> String + Send + Sync + 'static) -> Self {
        self.query = Some(Arc::new(f));
        self
    }

    /// Serve `f(raw_query)` (a chronicle range dump) on
    /// `GET /range?metric=...`. Until wired, the endpoint answers 404.
    pub fn with_range(mut self, f: impl Fn(&str) -> String + Send + Sync + 'static) -> Self {
        self.range = Some(Arc::new(f));
        self
    }
}

/// The exposition server. [`OpsServer::bind`] starts it and returns the
/// [`OpsHandle`] that owns its threads.
pub struct OpsServer;

impl OpsServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `state`.
    pub fn bind(addr: impl ToSocketAddrs, state: OpsState) -> std::io::Result<OpsHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(QUEUE_DEPTH);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..POOL_SIZE)
            .map(|i| {
                let rx = rx.clone();
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("css-ops-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &state))
                    .expect("spawn ops worker")
            })
            .collect();

        let accept_stop = stop.clone();
        let accept = std::thread::Builder::new()
            .name("css-ops-accept".into())
            .spawn(move || accept_loop(&listener, &tx, &accept_stop))
            .expect("spawn ops acceptor");

        Ok(OpsHandle {
            local_addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }
}

/// Owns the server threads; dropping it shuts the server down
/// gracefully (stops accepting, drains the pool, joins every thread).
pub struct OpsHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl OpsHandle {
    /// The bound address — with port 0 this is where the ephemeral
    /// port landed.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for OpsHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The accept thread owned the channel sender; with it joined
        // the channel is closed and the workers drain and exit.
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // If the queue is full the connection is dropped — the
                // scraper retries on its next interval; the platform
                // never queues unboundedly for an observer.
                let _ = tx.try_send(stream);
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &OpsState) {
    loop {
        let stream = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, state),
            Err(_) => return, // channel closed: shutting down
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &OpsState) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request_head(&mut stream) {
        Some(head) => head,
        None => {
            respond(&mut stream, 400, "text/plain", "bad request");
            return;
        }
    };
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Split off the query string; `/query` and `/range` read it, the
    // rest ignore it (`/metrics?ts=1` scrapes are common).
    let (path, raw_query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    // The one mutating endpoint: a manual flight-recorder capture.
    // Everything else is read-only and GET.
    if path == "/debug/capture" {
        match (method, &state.capture) {
            ("POST", Some(capture)) => {
                respond(&mut stream, 200, "application/json", &capture());
            }
            ("POST", None) => respond(
                &mut stream,
                404,
                "application/json",
                r#"{"error":"no flight recorder configured"}"#,
            ),
            _ => respond(
                &mut stream,
                405,
                "text/plain",
                "method not allowed: use POST",
            ),
        }
        return;
    }
    if method != "GET" {
        respond(&mut stream, 405, "text/plain", "method not allowed");
        return;
    }
    match path {
        "/metrics" => {
            let body = render_prometheus(&(state.metrics)());
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/health" => {
            let report = (state.health)();
            let code = if report.is_serving() { 200 } else { 503 };
            respond(&mut stream, code, "application/json", &report.to_json());
        }
        "/slo" => respond(&mut stream, 200, "application/json", &(state.slo)()),
        "/traces" => respond(&mut stream, 200, "application/json", &(state.traces)()),
        "/monitor" => respond(&mut stream, 200, "application/json", &(state.monitor)()),
        "/debug/incidents" => respond(&mut stream, 200, "application/json", &(state.incidents)()),
        "/debug/exemplars" => respond(&mut stream, 200, "application/json", &(state.exemplars)()),
        "/query" | "/range" => {
            let f = if path == "/query" {
                &state.query
            } else {
                &state.range
            };
            match f {
                Some(f) => respond(&mut stream, 200, "application/json", &f(raw_query)),
                None => respond(
                    &mut stream,
                    404,
                    "application/json",
                    r#"{"error":"no chronicle configured"}"#,
                ),
            }
        }
        _ => respond(
            &mut stream,
            404,
            "application/json",
            r#"{"error":"not found","endpoints":["/metrics","/health","/slo","/query","/range","/traces","/monitor","/debug/incidents","/debug/exemplars","/debug/capture"]}"#,
        ),
    }
}

/// Read until the end of the request head (`\r\n\r\n`), within the
/// size bound and read timeout. Returns the first request line.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed after (or mid-) request
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None, // timeout or reset
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let first_line = head.lines().next()?.trim().to_string();
    if first_line.is_empty() {
        None
    } else {
        Some(first_line)
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{FnCheck, HealthRegistry};
    use crate::status::HealthStatus;
    use css_telemetry::MetricsRegistry;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let code: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    fn test_state(registry: &MetricsRegistry, healthy: bool) -> OpsState {
        let metrics_reg = registry.clone();
        let health_reg = registry.clone();
        OpsState::new(
            move || metrics_reg.snapshot(),
            move || {
                let mut checks = HealthRegistry::new();
                checks.register(Box::new(FnCheck::new("storage", move || {
                    if healthy {
                        HealthStatus::Healthy
                    } else {
                        HealthStatus::unhealthy("probe read mismatch")
                    }
                })));
                checks.report(&health_reg.snapshot())
            },
            || r#"{"slos":[]}"#.to_string(),
        )
        .with_traces(|| r#"[{"name":"publish"}]"#.to_string())
        .with_monitor(|| r#"{"total":7}"#.to_string())
    }

    #[test]
    fn serves_all_endpoints() {
        let registry = MetricsRegistry::new();
        registry.counter("controller.published").add(9);
        let handle =
            OpsServer::bind("127.0.0.1:0", test_state(&registry, true)).expect("bind ephemeral");
        let addr = handle.local_addr();

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("css_controller_published_total 9"), "{body}");

        let (code, body) = get(addr, "/health");
        assert_eq!(code, 200);
        assert!(body.contains(r#""status":"healthy""#), "{body}");

        let (code, body) = get(addr, "/slo");
        assert_eq!(code, 200);
        assert_eq!(body, r#"{"slos":[]}"#);

        let (code, body) = get(addr, "/traces");
        assert_eq!(code, 200);
        assert_eq!(body, r#"[{"name":"publish"}]"#);

        let (code, body) = get(addr, "/monitor");
        assert_eq!(code, 200);
        assert_eq!(body, r#"{"total":7}"#);

        let (code, body) = get(addr, "/nope");
        assert_eq!(code, 404);
        assert!(body.contains("/metrics"), "{body}");
    }

    #[test]
    fn unhealthy_rollup_returns_503_with_reason() {
        let registry = MetricsRegistry::new();
        let handle =
            OpsServer::bind("127.0.0.1:0", test_state(&registry, false)).expect("bind ephemeral");
        let (code, body) = get(handle.local_addr(), "/health");
        assert_eq!(code, 503);
        assert!(body.contains(r#""reason":"probe read mismatch""#), "{body}");
    }

    #[test]
    fn debug_endpoints_default_to_empty_and_unconfigured() {
        let registry = MetricsRegistry::new();
        let handle =
            OpsServer::bind("127.0.0.1:0", test_state(&registry, true)).expect("bind ephemeral");
        let addr = handle.local_addr();

        let (code, body) = get(addr, "/debug/incidents");
        assert_eq!(code, 200);
        assert_eq!(body, r#"{"incidents":[]}"#);

        let (code, body) = get(addr, "/debug/exemplars");
        assert_eq!(code, 200);
        assert_eq!(body, r#"{"exemplars":[]}"#);

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /debug/capture HTTP/1.0\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
        assert!(
            response.contains("no flight recorder configured"),
            "{response}"
        );
    }

    #[test]
    fn wired_debug_endpoints_serve_and_capture() {
        let registry = MetricsRegistry::new();
        let captures = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let counted = captures.clone();
        let state = test_state(&registry, true)
            .with_incidents(|| r#"{"incidents":[{"seq":1}]}"#.to_string())
            .with_exemplars(|| r#"{"exemplars":[{"trace_id":"00000000000000ff"}]}"#.to_string())
            .with_capture(move || {
                counted.fetch_add(1, Ordering::SeqCst);
                r#"{"trigger":{"kind":"manual"}}"#.to_string()
            });
        let handle = OpsServer::bind("127.0.0.1:0", state).expect("bind ephemeral");
        let addr = handle.local_addr();

        let (code, body) = get(addr, "/debug/incidents");
        assert_eq!(code, 200);
        assert!(body.contains(r#""seq":1"#), "{body}");

        let (code, body) = get(addr, "/debug/exemplars");
        assert_eq!(code, 200);
        assert!(body.contains("00000000000000ff"), "{body}");

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /debug/capture HTTP/1.0\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 200"), "{response}");
        assert!(response.contains(r#""kind":"manual""#), "{response}");
        assert_eq!(captures.load(Ordering::SeqCst), 1);

        // Capture mutates: a GET must not trigger it.
        let (code, _) = get(addr, "/debug/capture");
        assert_eq!(code, 405);
        assert_eq!(captures.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn query_endpoints_receive_the_query_string() {
        let registry = MetricsRegistry::new();
        let state = test_state(&registry, true)
            .with_query(|q| format!(r#"{{"echo":"{q}"}}"#))
            .with_range(|q| format!(r#"{{"range":"{q}"}}"#));
        let handle = OpsServer::bind("127.0.0.1:0", state).expect("bind ephemeral");
        let addr = handle.local_addr();

        let (code, body) = get(addr, "/query?metric=stage.total&fn=p99");
        assert_eq!(code, 200);
        assert_eq!(body, r#"{"echo":"metric=stage.total&fn=p99"}"#);

        let (code, body) = get(addr, "/range?metric=bus.published");
        assert_eq!(code, 200);
        assert_eq!(body, r#"{"range":"metric=bus.published"}"#);

        // No query string at all still reaches the closure.
        let (code, body) = get(addr, "/query");
        assert_eq!(code, 200);
        assert_eq!(body, r#"{"echo":""}"#);
    }

    #[test]
    fn query_endpoints_unwired_answer_404() {
        let registry = MetricsRegistry::new();
        let handle =
            OpsServer::bind("127.0.0.1:0", test_state(&registry, true)).expect("bind ephemeral");
        let (code, body) = get(handle.local_addr(), "/query?metric=x");
        assert_eq!(code, 404);
        assert!(body.contains("no chronicle configured"), "{body}");
        let (code, _) = get(handle.local_addr(), "/range");
        assert_eq!(code, 404);
    }

    #[test]
    fn non_get_is_rejected() {
        let registry = MetricsRegistry::new();
        let handle =
            OpsServer::bind("127.0.0.1:0", test_state(&registry, true)).expect("bind ephemeral");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    }

    #[test]
    fn oversized_request_head_is_rejected() {
        let registry = MetricsRegistry::new();
        let handle =
            OpsServer::bind("127.0.0.1:0", test_state(&registry, true)).expect("bind ephemeral");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        // A header that never terminates, larger than the bound. The
        // server answers 400 and closes mid-upload, so the client may
        // instead observe a reset — either way, no oversized request
        // is served.
        write!(stream, "GET /metrics HTTP/1.0\r\nX-Pad: ").expect("write");
        let pad = vec![b'a'; MAX_REQUEST_BYTES + 1024];
        let _ = stream.write_all(&pad);
        let mut response = String::new();
        match stream.read_to_string(&mut response) {
            Ok(_) => assert!(response.starts_with("HTTP/1.0 400"), "{response}"),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
        }
    }

    #[test]
    fn drop_shuts_down_and_joins() {
        let registry = MetricsRegistry::new();
        let handle =
            OpsServer::bind("127.0.0.1:0", test_state(&registry, true)).expect("bind ephemeral");
        let addr = handle.local_addr();
        let (code, _) = get(addr, "/health");
        assert_eq!(code, 200);
        drop(handle); // must not hang
                      // A fresh server can bind and serve again immediately.
        let handle = OpsServer::bind("127.0.0.1:0", test_state(&registry, true)).expect("rebind");
        let (code, _) = get(handle.local_addr(), "/health");
        assert_eq!(code, 200);
    }
}
