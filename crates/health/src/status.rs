//! Component health statuses and the rolled-up report.

use std::fmt;

use css_telemetry::JsonBuf;

/// One component's condition at probe time.
///
/// `Degraded` means the component still serves requests but an operator
/// should look (a threshold crossed, a cache running cold); `Unhealthy`
/// means the component cannot currently do its job (a failed storage
/// round-trip). Both carry a machine-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthStatus {
    /// Operating normally.
    Healthy,
    /// Serving, but outside normal operating parameters.
    Degraded {
        /// What crossed the line, with the numbers that crossed it.
        reason: String,
    },
    /// Not currently able to serve.
    Unhealthy {
        /// What failed, with the observed error.
        reason: String,
    },
}

impl HealthStatus {
    /// Degraded with a reason.
    pub fn degraded(reason: impl Into<String>) -> Self {
        HealthStatus::Degraded {
            reason: reason.into(),
        }
    }

    /// Unhealthy with a reason.
    pub fn unhealthy(reason: impl Into<String>) -> Self {
        HealthStatus::Unhealthy {
            reason: reason.into(),
        }
    }

    /// Severity rank for rollups: higher is worse.
    fn rank(&self) -> u8 {
        match self {
            HealthStatus::Healthy => 0,
            HealthStatus::Degraded { .. } => 1,
            HealthStatus::Unhealthy { .. } => 2,
        }
    }

    /// Wire code: `healthy` / `degraded` / `unhealthy`.
    pub fn code(&self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded { .. } => "degraded",
            HealthStatus::Unhealthy { .. } => "unhealthy",
        }
    }

    /// The carried reason, if any.
    pub fn reason(&self) -> Option<&str> {
        match self {
            HealthStatus::Healthy => None,
            HealthStatus::Degraded { reason } | HealthStatus::Unhealthy { reason } => Some(reason),
        }
    }
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason() {
            None => f.write_str(self.code()),
            Some(reason) => write!(f, "{}: {reason}", self.code()),
        }
    }
}

/// One named component's probe result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentHealth {
    /// Component name (`storage`, `bus`, `policy`, `gateway`, `trace`).
    pub component: String,
    /// The probe's verdict.
    pub status: HealthStatus,
}

/// Every component's status at one instant, plus the rollup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Per-component results, in registration order.
    pub components: Vec<ComponentHealth>,
}

impl HealthReport {
    /// The worst status across all components (`Healthy` when empty:
    /// an ops plane with no probes has nothing to report against).
    pub fn rollup(&self) -> HealthStatus {
        self.components
            .iter()
            .max_by_key(|c| c.status.rank())
            .map(|c| c.status.clone())
            .unwrap_or(HealthStatus::Healthy)
    }

    /// Whether the platform should answer 200 on `/health`: anything
    /// short of `Unhealthy` still serves.
    pub fn is_serving(&self) -> bool {
        !matches!(self.rollup(), HealthStatus::Unhealthy { .. })
    }

    /// The JSON document served on `GET /health`.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_object();
        j.key("status").string(self.rollup().code());
        j.key("components").begin_array();
        for c in &self.components {
            j.begin_object();
            j.key("component").string(&c.component);
            j.key("status").string(c.status.code());
            if let Some(reason) = c.status.reason() {
                j.key("reason").string(reason);
            }
            j.end_object();
        }
        j.end_array();
        j.end_object();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(statuses: &[(&str, HealthStatus)]) -> HealthReport {
        HealthReport {
            components: statuses
                .iter()
                .map(|(n, s)| ComponentHealth {
                    component: n.to_string(),
                    status: s.clone(),
                })
                .collect(),
        }
    }

    #[test]
    fn rollup_takes_the_worst_status() {
        let r = report(&[
            ("storage", HealthStatus::Healthy),
            ("bus", HealthStatus::degraded("queue depth 2048 > 1024")),
            ("policy", HealthStatus::Healthy),
        ]);
        assert_eq!(r.rollup().code(), "degraded");
        assert!(r.is_serving());

        let r = report(&[
            ("bus", HealthStatus::degraded("x")),
            ("storage", HealthStatus::unhealthy("probe read failed")),
        ]);
        assert_eq!(r.rollup().code(), "unhealthy");
        assert!(!r.is_serving());
    }

    #[test]
    fn empty_report_is_healthy() {
        let r = HealthReport::default();
        assert_eq!(r.rollup(), HealthStatus::Healthy);
        assert!(r.is_serving());
        assert_eq!(r.to_json(), r#"{"status":"healthy","components":[]}"#);
    }

    #[test]
    fn json_carries_machine_readable_reasons() {
        let r = report(&[
            ("storage", HealthStatus::unhealthy("append: disk full")),
            ("trace", HealthStatus::Healthy),
        ]);
        assert_eq!(
            r.to_json(),
            r#"{"status":"unhealthy","components":[{"component":"storage","status":"unhealthy","reason":"append: disk full"},{"component":"trace","status":"healthy"}]}"#
        );
    }

    #[test]
    fn display_shows_code_and_reason() {
        assert_eq!(HealthStatus::Healthy.to_string(), "healthy");
        assert_eq!(HealthStatus::degraded("lag").to_string(), "degraded: lag");
    }
}
