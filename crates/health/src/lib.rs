//! # css-health — the live ops plane
//!
//! The paper's data controller is the component "everyone must trust"
//! (§4): operators and auditors need to see, *live*, that routing, the
//! encrypted index, policy enforcement, and the gateways are actually
//! healthy. This crate turns the in-process telemetry (`css-telemetry`)
//! into an externally observable surface, with zero dependencies beyond
//! the standard library:
//!
//! 1. **Component health model** ([`HealthCheck`], [`HealthRegistry`],
//!    [`HealthReport`]): pluggable probes — a storage write/read
//!    round-trip, bus queue-depth and delivery-lag thresholds, the PDP
//!    cache hit-rate floor, the gateway's pending detail backlog, the
//!    trace ring's drop rate — each yielding
//!    `Healthy`/`Degraded{reason}`/`Unhealthy{reason}`, rolled up into
//!    one report.
//! 2. **SLO engine** ([`Slo`], [`SloEngine`], [`Sampler`]): declarative
//!    objectives (`detail_request p99 < 200µs`, `publish error ratio <
//!    0.1%`) evaluated over sliding windows of periodic
//!    `TelemetrySnapshot` deltas, producing multi-window error-budget
//!    **burn rates** (fast 5-sample / slow 60-sample) with
//!    `Ok`/`Warning`/`Critical` alerts.
//! 3. **Exposition server** ([`OpsServer`], [`OpsHandle`]): a
//!    hand-rolled HTTP/1.0 listener on `std::net::TcpListener` serving
//!    `GET /metrics` (Prometheus text format), `/health` (JSON,
//!    200/503), `/slo` (burn-rate table), `/traces` (Chrome trace
//!    JSON), and `/monitor` (process-monitoring KPIs).
//!
//! Everything exposed is an **aggregate number or a privacy-safe span
//! attribute** — never an event payload or a decrypted identifier. The
//! css-lint `detail-confinement` rule covers this crate, so the types
//! that could leak details are unnameable here by construction.

mod checks;
mod prometheus;
mod sampler;
mod server;
mod slo;
mod status;

pub use checks::{
    DropRateCheck, FnCheck, GaugeThresholdCheck, HealthCheck, HealthRegistry, LatencyCheck,
    RatioFloorCheck,
};
pub use css_telemetry::JsonBuf;
pub use prometheus::render_prometheus;
pub use sampler::Sampler;
pub use server::{OpsHandle, OpsServer, OpsState};
pub use slo::{AlertLevel, Slo, SloEngine, SloStatus};
pub use status::{ComponentHealth, HealthReport, HealthStatus};
