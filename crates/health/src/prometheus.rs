//! Prometheus text exposition (format version 0.0.4) over a
//! [`TelemetrySnapshot`].
//!
//! Mapping from the internal instrument names:
//!
//! - every name is prefixed `css_` and non-alphanumeric characters
//!   become `_` (`bus.queue_depth` → `css_bus_queue_depth`);
//! - counters get the conventional `_total` suffix;
//! - histograms keep their nanosecond unit explicit as `_ns` and expand
//!   to `_bucket{le="…"}` lines (cumulative, from the log₂ buckets),
//!   plus `_sum` and `_count`;
//! - instruments render in snapshot order (`BTreeMap`, so the output is
//!   deterministic and two scrapes of the same state are byte-equal).

use std::fmt::Write as _;

use css_telemetry::TelemetrySnapshot;

/// `css_` + name with every non-`[a-zA-Z0-9_]` character mangled to `_`.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("css_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// One-line `# HELP` text, phrased from the instrument's subsystem
/// prefix. Deterministic (pure function of the name) so the exposition
/// stays byte-reproducible.
fn help_text(name: &str) -> String {
    if name == "uptime_seconds" {
        return "Seconds since the platform was assembled.".to_string();
    }
    let subsystem = match name.split('.').next().unwrap_or(name) {
        "bus" => "service bus",
        "storage" => "storage layer",
        "gateway" => "producer gateway",
        "publish" => "publish pipeline",
        "stage" => "enforcement stage",
        "shard" => "sharded data plane",
        "platform" => "platform state",
        "pdp" => "policy decision point",
        "trace" => "trace ring",
        "blackbox" => "flight recorder",
        "chronicle" => "metrics history",
        "controller" => "data controller",
        _ => "platform",
    };
    format!("CSS {subsystem} metric {name} (aggregate only).")
}

/// Render the snapshot in Prometheus text format, ready for
/// `GET /metrics`.
pub fn render_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let metric = metric_name(name);
        let _ = writeln!(out, "# HELP {metric}_total {}", help_text(name));
        let _ = writeln!(out, "# TYPE {metric}_total counter");
        let _ = writeln!(out, "{metric}_total {value}");
    }
    for (name, value) in &snapshot.gauges {
        // The build-info convention: an internal gauge named
        // `build_info.<version>` renders as the info-style metric
        // `css_build_info{version="..."} 1`.
        if let Some(version) = name.strip_prefix("build_info.") {
            let _ = writeln!(
                out,
                "# HELP css_build_info Build metadata; the value is always 1."
            );
            let _ = writeln!(out, "# TYPE css_build_info gauge");
            let _ = writeln!(out, "css_build_info{{version=\"{version}\"}} {value}");
            continue;
        }
        let metric = metric_name(name);
        let _ = writeln!(out, "# HELP {metric} {}", help_text(name));
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let metric = format!("{}_ns", metric_name(name));
        let _ = writeln!(
            out,
            "# HELP {metric} CSS latency histogram {name} (nanoseconds)."
        );
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for (bound, n) in &h.buckets {
            cumulative += n;
            // The overflow bucket (bound u64::MAX) folds into +Inf.
            if *bound != u64::MAX {
                let _ = writeln!(out, "{metric}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{metric}_sum {}", h.sum_ns);
        let _ = writeln!(out, "{metric}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_telemetry::MetricsRegistry;

    #[test]
    fn name_mangling_is_prometheus_safe() {
        assert_eq!(metric_name("bus.queue_depth"), "css_bus_queue_depth");
        assert_eq!(metric_name("stage.pdp-evaluate"), "css_stage_pdp_evaluate");
    }

    /// The exposition format is a compatibility contract with external
    /// scrapers: pin it byte-for-byte.
    #[test]
    fn exposition_golden() {
        let reg = MetricsRegistry::new();
        reg.counter("bus.published").add(42);
        reg.gauge("bus.queue_depth").set(3);
        let h = reg.histogram("stage.consent");
        h.record(500); // bucket le511
        h.record(500);
        h.record(900); // bucket le1023
        assert_eq!(
            render_prometheus(&reg.snapshot()),
            "# HELP css_bus_published_total CSS service bus metric bus.published (aggregate only).\n\
             # TYPE css_bus_published_total counter\n\
             css_bus_published_total 42\n\
             # HELP css_bus_queue_depth CSS service bus metric bus.queue_depth (aggregate only).\n\
             # TYPE css_bus_queue_depth gauge\n\
             css_bus_queue_depth 3\n\
             # HELP css_stage_consent_ns CSS latency histogram stage.consent (nanoseconds).\n\
             # TYPE css_stage_consent_ns histogram\n\
             css_stage_consent_ns_bucket{le=\"511\"} 2\n\
             css_stage_consent_ns_bucket{le=\"1023\"} 3\n\
             css_stage_consent_ns_bucket{le=\"+Inf\"} 3\n\
             css_stage_consent_ns_sum 1900\n\
             css_stage_consent_ns_count 3\n"
        );
    }

    #[test]
    fn build_info_and_uptime_render_as_conventional_metrics() {
        let reg = MetricsRegistry::new();
        reg.gauge("build_info.0.1.0").set(1);
        reg.gauge("uptime_seconds").set(7);
        let text = render_prometheus(&reg.snapshot());
        assert!(
            text.contains("css_build_info{version=\"0.1.0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("# HELP css_build_info Build metadata; the value is always 1."),
            "{text}"
        );
        assert!(!text.contains("css_build_info_0_1_0"), "{text}");
        assert!(text.contains("css_uptime_seconds 7"), "{text}");
        assert!(
            text.contains("# HELP css_uptime_seconds Seconds since the platform was assembled."),
            "{text}"
        );
    }

    #[test]
    fn buckets_are_cumulative_and_inf_equals_count() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        h.record(5);
        h.record(5);
        h.record(1_000);
        h.record(u64::MAX); // overflow bucket folds into +Inf
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("css_lat_ns_bucket{le=\"7\"} 2"), "{text}");
        assert!(text.contains("css_lat_ns_bucket{le=\"1023\"} 3"), "{text}");
        assert!(text.contains("css_lat_ns_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX)), "{text}");
        assert!(text.contains("css_lat_ns_count 4"), "{text}");
    }

    #[test]
    fn two_scrapes_of_same_state_are_byte_equal() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.histogram("lat").record(10);
        assert_eq!(
            render_prometheus(&reg.snapshot()),
            render_prometheus(&reg.snapshot())
        );
    }
}
