//! The background sampler: periodic snapshot deltas into the SLO engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use css_telemetry::MetricsRegistry;
use css_types::Clock;

use crate::slo::SloEngine;

struct SamplerShared {
    stop: Mutex<bool>,
    wake: Condvar,
    ticks: AtomicU64,
}

/// A background thread that snapshots a [`MetricsRegistry`] every
/// `interval` and feeds the delta into a shared [`SloEngine`], stamping
/// each sample with the *platform* clock (so a simulated deployment
/// reports simulated sample times). Stops and joins on drop.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    thread: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling. The first snapshot only establishes the delta
    /// baseline; burn rates appear from the second tick on.
    pub fn spawn(
        registry: MetricsRegistry,
        clock: Arc<dyn Clock>,
        engine: Arc<Mutex<SloEngine>>,
        interval: Duration,
    ) -> Sampler {
        let shared = Arc::new(SamplerShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            ticks: AtomicU64::new(0),
        });
        let thread_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("css-ops-sampler".into())
            .spawn(move || loop {
                {
                    let snapshot = registry.snapshot();
                    let mut engine = engine.lock().unwrap_or_else(PoisonError::into_inner);
                    engine.tick(&snapshot, clock.now());
                }
                thread_shared.ticks.fetch_add(1, Ordering::Relaxed);
                let stop = thread_shared
                    .stop
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let (stop, _) = thread_shared
                    .wake
                    .wait_timeout(stop, interval)
                    .unwrap_or_else(PoisonError::into_inner);
                if *stop {
                    return;
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            shared,
            thread: Some(thread),
        }
    }

    /// Samples taken so far (for overhead accounting and tests).
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        *self
            .shared
            .stop
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.shared.wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::Slo;
    use css_types::{SimClock, Timestamp};

    #[test]
    fn sampler_ticks_the_engine_and_stops_on_drop() {
        let registry = MetricsRegistry::new();
        let clock = SimClock::starting_at(Timestamp(5_000));
        let mut engine = SloEngine::new();
        engine.register(Slo::latency_p99("lat", "stage.total", 200_000));
        let engine = Arc::new(Mutex::new(engine));

        let sampler = Sampler::spawn(
            registry.clone(),
            Arc::new(clock),
            engine.clone(),
            Duration::from_millis(1),
        );
        // Generate a regression and wait for at least two ticks (one
        // baseline + one delta).
        for _ in 0..100 {
            registry.histogram("stage.total").record(10_000_000);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let table = engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .table();
            if table[0].alert == crate::AlertLevel::Critical {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never saw the regression: {table:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let ticks_before = sampler.ticks();
        assert!(ticks_before >= 2);
        drop(sampler); // must stop and join without hanging
        let after = engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ticks();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(
            after,
            engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .ticks(),
            "no ticks after drop"
        );
    }

    #[test]
    fn samples_carry_the_platform_clock() {
        let registry = MetricsRegistry::new();
        let clock = SimClock::starting_at(Timestamp(777_000));
        let mut engine = SloEngine::new();
        engine.register(Slo::latency_p99("lat", "stage.total", 200_000));
        let engine = Arc::new(Mutex::new(engine));
        let sampler = Sampler::spawn(
            registry,
            Arc::new(clock),
            engine.clone(),
            Duration::from_millis(1),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sampler.ticks() == 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(sampler);
        let json = engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_json();
        assert!(json.contains("\"last_sample_at_ms\":777000"), "{json}");
    }
}
