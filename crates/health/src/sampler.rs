//! The background sampler: periodic snapshot deltas into the SLO engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use css_telemetry::{MetricsRegistry, TelemetrySnapshot};
use css_types::{Clock, Timestamp};

use crate::slo::{SloEngine, SloStatus};

struct SamplerShared {
    stop: Mutex<bool>,
    wake: Condvar,
    ticks: AtomicU64,
}

/// A background thread that snapshots a [`MetricsRegistry`] every
/// `interval` and feeds the delta into a shared [`SloEngine`], stamping
/// each sample with the *platform* clock (so a simulated deployment
/// reports simulated sample times). Stops and joins on drop.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    thread: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling. The first snapshot only establishes the delta
    /// baseline; burn rates appear from the second tick on.
    pub fn spawn(
        registry: MetricsRegistry,
        clock: Arc<dyn Clock>,
        engine: Arc<Mutex<SloEngine>>,
        interval: Duration,
    ) -> Sampler {
        Sampler::spawn_observed(
            move || registry.snapshot(),
            clock,
            engine,
            interval,
            |_, _, _| {},
        )
    }

    /// Like [`spawn`](Sampler::spawn), but the snapshot comes from a
    /// closure (so callers can refresh derived gauges first) and an
    /// `observer` sees every sample *after* the SLO engine has ticked,
    /// together with the sample time and the post-tick alert table.
    /// This is the hook the flight recorder rides: one sampling thread,
    /// one snapshot per tick, shared by SLO evaluation and incident
    /// capture. The observer runs outside the engine lock.
    pub fn spawn_observed(
        snapshot_fn: impl Fn() -> TelemetrySnapshot + Send + 'static,
        clock: Arc<dyn Clock>,
        engine: Arc<Mutex<SloEngine>>,
        interval: Duration,
        observer: impl Fn(&TelemetrySnapshot, Timestamp, &[SloStatus]) + Send + 'static,
    ) -> Sampler {
        let shared = Arc::new(SamplerShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            ticks: AtomicU64::new(0),
        });
        let thread_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("css-ops-sampler".into())
            .spawn(move || loop {
                {
                    let snapshot = snapshot_fn();
                    let now = clock.now();
                    let table = {
                        let mut engine = engine.lock().unwrap_or_else(PoisonError::into_inner);
                        engine.tick(&snapshot, now);
                        engine.table()
                    };
                    observer(&snapshot, now, &table);
                }
                thread_shared.ticks.fetch_add(1, Ordering::Relaxed);
                let stop = thread_shared
                    .stop
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let (stop, _) = thread_shared
                    .wake
                    .wait_timeout(stop, interval)
                    .unwrap_or_else(PoisonError::into_inner);
                if *stop {
                    return;
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            shared,
            thread: Some(thread),
        }
    }

    /// Samples taken so far (for overhead accounting and tests).
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        *self
            .shared
            .stop
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.shared.wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::Slo;
    use css_types::{SimClock, Timestamp};

    #[test]
    fn sampler_ticks_the_engine_and_stops_on_drop() {
        let registry = MetricsRegistry::new();
        let clock = SimClock::starting_at(Timestamp(5_000));
        let mut engine = SloEngine::new();
        engine.register(Slo::latency_p99("lat", "stage.total", 200_000));
        let engine = Arc::new(Mutex::new(engine));

        let sampler = Sampler::spawn(
            registry.clone(),
            Arc::new(clock),
            engine.clone(),
            Duration::from_millis(1),
        );
        // Generate a regression and wait for at least two ticks (one
        // baseline + one delta).
        for _ in 0..100 {
            registry.histogram("stage.total").record(10_000_000);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let table = engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .table();
            if table[0].alert == crate::AlertLevel::Critical {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never saw the regression: {table:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let ticks_before = sampler.ticks();
        assert!(ticks_before >= 2);
        drop(sampler); // must stop and join without hanging
        let after = engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ticks();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(
            after,
            engine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .ticks(),
            "no ticks after drop"
        );
    }

    #[test]
    fn observer_sees_post_tick_alert_table() {
        let registry = MetricsRegistry::new();
        let clock = SimClock::starting_at(Timestamp(5_000));
        let mut engine = SloEngine::new();
        engine.register(Slo::latency_p99("lat", "stage.total", 200_000));
        let engine = Arc::new(Mutex::new(engine));

        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let snap_registry = registry.clone();
        let sampler = Sampler::spawn_observed(
            move || snap_registry.snapshot(),
            Arc::new(clock),
            engine,
            Duration::from_millis(1),
            move |snapshot, at, table| {
                let mut sink = sink.lock().unwrap_or_else(PoisonError::into_inner);
                sink.push((
                    snapshot.histogram("stage.total").map(|h| h.count),
                    at,
                    table[0].alert,
                ));
            },
        );
        for _ in 0..100 {
            registry.histogram("stage.total").record(10_000_000);
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            {
                let seen = seen.lock().unwrap_or_else(PoisonError::into_inner);
                if seen
                    .iter()
                    .any(|(_, _, alert)| *alert == crate::AlertLevel::Critical)
                {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "observer never saw the Critical alert"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(sampler);
        let seen = seen.lock().unwrap_or_else(PoisonError::into_inner);
        let (count, at, _) = seen.last().unwrap();
        assert_eq!(count.unwrap(), 100, "observer got the same snapshot");
        assert!(at.0 >= 5_000, "observer got the platform clock");
    }

    /// A deliberately broken platform clock that runs *backwards* one
    /// millisecond per read — the pathological case for any delta/rate
    /// math keyed on sample timestamps.
    struct ReversingClock(AtomicU64);

    impl Clock for ReversingClock {
        fn now(&self) -> Timestamp {
            Timestamp(self.0.fetch_sub(1, Ordering::Relaxed))
        }
    }

    fn wait_for_ticks(sampler: &Sampler, n: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sampler.ticks() < n {
            assert!(std::time::Instant::now() < deadline, "sampler stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn stalled_clock_produces_zero_width_ticks_without_panic() {
        let registry = MetricsRegistry::new();
        // Never advanced: every tick carries the identical timestamp.
        let clock = SimClock::starting_at(Timestamp(9_000));
        let mut engine = SloEngine::new();
        engine.register(Slo::latency_p99("lat", "stage.total", 200_000));
        let engine = Arc::new(Mutex::new(engine));
        let sampler = Sampler::spawn(
            registry.clone(),
            Arc::new(clock),
            engine.clone(),
            Duration::from_millis(1),
        );
        for _ in 0..100 {
            registry.histogram("stage.total").record(10_000_000);
        }
        wait_for_ticks(&sampler, 5);
        drop(sampler); // joins: the thread must still be alive to join
        let json = engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_json();
        // Burn math is count-based, so zero elapsed time must not leak
        // NaN/inf into the report (JsonBuf renders those as null).
        assert!(!json.contains("null"), "{json}");
        assert!(json.contains("\"last_sample_at_ms\":9000"), "{json}");
    }

    #[test]
    fn non_monotonic_clock_keeps_sampler_and_observer_alive() {
        let registry = MetricsRegistry::new();
        let mut engine = SloEngine::new();
        engine.register(Slo::latency_p99("lat", "stage.total", 200_000));
        let engine = Arc::new(Mutex::new(engine));
        let observed = Arc::new(AtomicU64::new(0));
        let sink = observed.clone();
        let snap_registry = registry.clone();
        let sampler = Sampler::spawn_observed(
            move || snap_registry.snapshot(),
            Arc::new(ReversingClock(AtomicU64::new(1_000_000))),
            engine.clone(),
            Duration::from_millis(1),
            move |_, at, _| {
                assert!(at.0 > 0, "clock reached zero mid-test");
                sink.fetch_add(1, Ordering::Relaxed);
            },
        );
        registry.histogram("stage.total").record(10_000_000);
        wait_for_ticks(&sampler, 5);
        drop(sampler);
        // Every tick reached the observer despite time flowing backwards
        // — rate math downstream guards zero-width windows itself.
        assert!(observed.load(Ordering::Relaxed) >= 5);
        let json = engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_json();
        assert!(!json.contains("null"), "{json}");
    }

    #[test]
    fn samples_carry_the_platform_clock() {
        let registry = MetricsRegistry::new();
        let clock = SimClock::starting_at(Timestamp(777_000));
        let mut engine = SloEngine::new();
        engine.register(Slo::latency_p99("lat", "stage.total", 200_000));
        let engine = Arc::new(Mutex::new(engine));
        let sampler = Sampler::spawn(
            registry,
            Arc::new(clock),
            engine.clone(),
            Duration::from_millis(1),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sampler.ticks() == 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(sampler);
        let json = engine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_json();
        assert!(json.contains("\"last_sample_at_ms\":777000"), "{json}");
    }
}
