//! Pluggable component health checks.
//!
//! A check sees one consistent [`TelemetrySnapshot`] per probe round
//! (so every threshold compares numbers from the same instant) and may
//! additionally run an active probe of its own, like the storage
//! write/read round-trip [`FnCheck`] the platform wires in.

use css_telemetry::TelemetrySnapshot;

use crate::status::{ComponentHealth, HealthReport, HealthStatus};

/// A named component probe.
pub trait HealthCheck: Send + Sync {
    /// Component name as it appears in the `/health` report.
    fn component(&self) -> &str;
    /// Probe the component against the current telemetry snapshot.
    fn check(&self, snapshot: &TelemetrySnapshot) -> HealthStatus;
}

/// An ordered collection of checks producing one [`HealthReport`].
#[derive(Default)]
pub struct HealthRegistry {
    checks: Vec<Box<dyn HealthCheck>>,
}

impl HealthRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a check (report order = registration order).
    pub fn register(&mut self, check: Box<dyn HealthCheck>) {
        self.checks.push(check);
    }

    /// Number of registered checks.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// Whether no checks are registered.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Run every check against `snapshot`.
    pub fn report(&self, snapshot: &TelemetrySnapshot) -> HealthReport {
        HealthReport {
            components: self
                .checks
                .iter()
                .map(|c| ComponentHealth {
                    component: c.component().to_string(),
                    status: c.check(snapshot),
                })
                .collect(),
        }
    }
}

/// An active probe wrapping a closure — e.g. the storage round-trip
/// (append a marker, read it back, compare). The closure runs on every
/// probe round, so keep it cheap and bounded.
pub struct FnCheck<F> {
    component: String,
    probe: F,
}

impl<F> FnCheck<F>
where
    F: Fn() -> HealthStatus + Send + Sync,
{
    /// A check named `component` running `probe` each round.
    pub fn new(component: impl Into<String>, probe: F) -> Self {
        FnCheck {
            component: component.into(),
            probe,
        }
    }
}

impl<F> HealthCheck for FnCheck<F>
where
    F: Fn() -> HealthStatus + Send + Sync,
{
    fn component(&self) -> &str {
        &self.component
    }
    fn check(&self, _snapshot: &TelemetrySnapshot) -> HealthStatus {
        (self.probe)()
    }
}

/// A gauge compared against degrade/fail ceilings — e.g. the bus queue
/// depth or the gateway's pending detail backlog.
pub struct GaugeThresholdCheck {
    component: String,
    gauge: String,
    degraded_above: i64,
    unhealthy_above: Option<i64>,
}

impl GaugeThresholdCheck {
    /// Degrade when `gauge` exceeds `degraded_above`.
    pub fn new(
        component: impl Into<String>,
        gauge: impl Into<String>,
        degraded_above: i64,
    ) -> Self {
        GaugeThresholdCheck {
            component: component.into(),
            gauge: gauge.into(),
            degraded_above,
            unhealthy_above: None,
        }
    }

    /// Also report `Unhealthy` past a hard ceiling.
    pub fn unhealthy_above(mut self, ceiling: i64) -> Self {
        self.unhealthy_above = Some(ceiling);
        self
    }
}

impl HealthCheck for GaugeThresholdCheck {
    fn component(&self) -> &str {
        &self.component
    }
    fn check(&self, snapshot: &TelemetrySnapshot) -> HealthStatus {
        let level = snapshot.gauge(&self.gauge);
        if let Some(ceiling) = self.unhealthy_above {
            if level > ceiling {
                return HealthStatus::unhealthy(format!(
                    "{} = {level} > hard ceiling {ceiling}",
                    self.gauge
                ));
            }
        }
        if level > self.degraded_above {
            return HealthStatus::degraded(format!(
                "{} = {level} > {}",
                self.gauge, self.degraded_above
            ));
        }
        HealthStatus::Healthy
    }
}

/// A histogram's windowless p99 compared against a ceiling — e.g. the
/// bus delivery lag. (The SLO engine owns the *windowed* view; this is
/// the coarse lifetime guardrail.)
pub struct LatencyCheck {
    component: String,
    histogram: String,
    p99_above_ns: u64,
}

impl LatencyCheck {
    /// Degrade when the lifetime p99 of `histogram` exceeds the ceiling.
    pub fn new(
        component: impl Into<String>,
        histogram: impl Into<String>,
        p99_above_ns: u64,
    ) -> Self {
        LatencyCheck {
            component: component.into(),
            histogram: histogram.into(),
            p99_above_ns,
        }
    }
}

impl HealthCheck for LatencyCheck {
    fn component(&self) -> &str {
        &self.component
    }
    fn check(&self, snapshot: &TelemetrySnapshot) -> HealthStatus {
        match snapshot.histogram(&self.histogram) {
            None => HealthStatus::Healthy, // not yet exercised
            Some(h) if h.p99_ns <= self.p99_above_ns => HealthStatus::Healthy,
            Some(h) => HealthStatus::degraded(format!(
                "{} p99 = {}ns > {}ns",
                self.histogram, h.p99_ns, self.p99_above_ns
            )),
        }
    }
}

/// A hit/(hit+miss) ratio held above a floor — e.g. the PDP decision
/// cache. Below `min_samples` total observations the check reports
/// `Healthy` (a cold cache is expected at startup, not an incident).
pub struct RatioFloorCheck {
    component: String,
    hits: String,
    misses: String,
    floor: f64,
    min_samples: u64,
}

impl RatioFloorCheck {
    /// Degrade when `hits/(hits+misses)` drops below `floor` after at
    /// least `min_samples` observations.
    pub fn new(
        component: impl Into<String>,
        hits: impl Into<String>,
        misses: impl Into<String>,
        floor: f64,
        min_samples: u64,
    ) -> Self {
        RatioFloorCheck {
            component: component.into(),
            hits: hits.into(),
            misses: misses.into(),
            floor,
            min_samples,
        }
    }
}

impl HealthCheck for RatioFloorCheck {
    fn component(&self) -> &str {
        &self.component
    }
    fn check(&self, snapshot: &TelemetrySnapshot) -> HealthStatus {
        let hits = snapshot.counter(&self.hits);
        let total = hits + snapshot.counter(&self.misses);
        if total < self.min_samples {
            return HealthStatus::Healthy;
        }
        let ratio = hits as f64 / total as f64;
        if ratio < self.floor {
            return HealthStatus::degraded(format!(
                "{} hit rate {:.3} < floor {:.3} over {total} lookups",
                self.component, ratio, self.floor
            ));
        }
        HealthStatus::Healthy
    }
}

/// A dropped/attempted ratio held below a ceiling — e.g. the trace
/// ring's drop rate (a high rate means the ring is undersized for the
/// traffic and causality is being lost).
pub struct DropRateCheck {
    component: String,
    dropped: String,
    attempted: String,
    ceiling: f64,
    min_samples: u64,
}

impl DropRateCheck {
    /// Degrade when `dropped/attempted` exceeds `ceiling` after at
    /// least `min_samples` attempts.
    pub fn new(
        component: impl Into<String>,
        dropped: impl Into<String>,
        attempted: impl Into<String>,
        ceiling: f64,
        min_samples: u64,
    ) -> Self {
        DropRateCheck {
            component: component.into(),
            dropped: dropped.into(),
            attempted: attempted.into(),
            ceiling,
            min_samples,
        }
    }
}

impl HealthCheck for DropRateCheck {
    fn component(&self) -> &str {
        &self.component
    }
    fn check(&self, snapshot: &TelemetrySnapshot) -> HealthStatus {
        let attempted = snapshot.counter(&self.attempted);
        if attempted < self.min_samples {
            return HealthStatus::Healthy;
        }
        let rate = snapshot.counter(&self.dropped) as f64 / attempted as f64;
        if rate > self.ceiling {
            return HealthStatus::degraded(format!(
                "{} drop rate {:.3} > {:.3} ({} of {attempted} dropped)",
                self.component,
                rate,
                self.ceiling,
                snapshot.counter(&self.dropped)
            ));
        }
        HealthStatus::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_telemetry::MetricsRegistry;

    #[test]
    fn gauge_threshold_degrades_and_fails() {
        let reg = MetricsRegistry::new();
        let check = GaugeThresholdCheck::new("bus", "bus.queue_depth", 10).unhealthy_above(100);
        assert_eq!(check.check(&reg.snapshot()), HealthStatus::Healthy);
        reg.gauge("bus.queue_depth").set(11);
        assert_eq!(check.check(&reg.snapshot()).code(), "degraded");
        reg.gauge("bus.queue_depth").set(101);
        let status = check.check(&reg.snapshot());
        assert_eq!(status.code(), "unhealthy");
        assert!(status.reason().unwrap().contains("101"), "{status}");
    }

    #[test]
    fn latency_check_reads_p99() {
        let reg = MetricsRegistry::new();
        let check = LatencyCheck::new("bus", "bus.deliver", 1_000);
        assert_eq!(check.check(&reg.snapshot()), HealthStatus::Healthy);
        reg.histogram("bus.deliver").record(100);
        assert_eq!(check.check(&reg.snapshot()), HealthStatus::Healthy);
        for _ in 0..100 {
            reg.histogram("bus.deliver").record(50_000);
        }
        assert_eq!(check.check(&reg.snapshot()).code(), "degraded");
    }

    #[test]
    fn ratio_floor_ignores_cold_cache() {
        let reg = MetricsRegistry::new();
        let check = RatioFloorCheck::new("policy", "pdp.cache_hit", "pdp.cache_miss", 0.5, 100);
        reg.counter("pdp.cache_miss").add(99); // below min_samples
        assert_eq!(check.check(&reg.snapshot()), HealthStatus::Healthy);
        reg.counter("pdp.cache_miss").add(1); // now 100 lookups, 0% hits
        assert_eq!(check.check(&reg.snapshot()).code(), "degraded");
        reg.counter("pdp.cache_hit").add(900); // 90% hits
        assert_eq!(check.check(&reg.snapshot()), HealthStatus::Healthy);
    }

    #[test]
    fn drop_rate_flags_undersized_ring() {
        let reg = MetricsRegistry::new();
        let check = DropRateCheck::new(
            "trace",
            "trace.spans_dropped",
            "trace.spans_recorded",
            0.5,
            10,
        );
        reg.counter("trace.spans_recorded").add(10);
        reg.counter("trace.spans_dropped").add(4);
        assert_eq!(check.check(&reg.snapshot()), HealthStatus::Healthy);
        reg.counter("trace.spans_dropped").add(2);
        assert_eq!(check.check(&reg.snapshot()).code(), "degraded");
    }

    #[test]
    fn fn_check_runs_the_probe_and_registry_reports_in_order() {
        let reg = MetricsRegistry::new();
        let mut health = HealthRegistry::new();
        health.register(Box::new(FnCheck::new("storage", || {
            HealthStatus::unhealthy("probe write failed")
        })));
        health.register(Box::new(GaugeThresholdCheck::new(
            "gateway",
            "platform.pending_requests",
            100,
        )));
        assert_eq!(health.len(), 2);
        assert!(!health.is_empty());
        let report = health.report(&reg.snapshot());
        assert_eq!(report.components[0].component, "storage");
        assert_eq!(report.components[1].component, "gateway");
        assert!(!report.is_serving());
    }
}
