//! ChaCha20 stream cipher (RFC 8439).

/// ChaCha20 keystream generator / stream cipher.
///
/// Encryption and decryption are the same operation (XOR with the
/// keystream).
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

impl ChaCha20 {
    /// Construct from a 256-bit key and a 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// The 64-byte keystream block at the given counter.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XOR `data` in place with the keystream starting at block counter
    /// `initial_counter` (RFC 8439 uses 1 for AEAD payloads; we use 0).
    pub fn apply_keystream(&self, data: &mut [u8], initial_counter: u32) {
        for (i, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(initial_counter.wrapping_add(i as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    /// Encrypt (or decrypt) into a new buffer.
    pub fn process(&self, data: &[u8], initial_counter: u32) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(&mut out, initial_counter);
        out
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2
        let key = rfc_key();
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let c = ChaCha20::new(&key, &nonce);
        let block = c.block(1);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 §2.4.2
        let key = rfc_key();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let c = ChaCha20::new(&key, &nonce);
        let ct = c.process(plaintext, 1);
        assert_eq!(
            to_hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(to_hex(&ct[112..]), "874d");
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let c = ChaCha20::new(&[7u8; 32], &[3u8; 12]);
        let msg = b"identifying info: Mario Rossi RSSMRA45C12L378Y".to_vec();
        let ct = c.process(&msg, 0);
        assert_ne!(ct, msg);
        assert_eq!(c.process(&ct, 0), msg);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [9u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12]).process(b"same message", 0);
        let b = ChaCha20::new(&key, &[1u8; 12]).process(b"same message", 0);
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_messages() {
        let c = ChaCha20::new(&[1u8; 32], &[2u8; 12]);
        let msg = vec![0x55u8; 200]; // spans 4 blocks
        let ct = c.process(&msg, 0);
        assert_eq!(c.process(&ct, 0), msg);
        // keystream continuity: encrypting in two halves equals one shot
        let mut half = msg.clone();
        c.apply_keystream(&mut half[..128], 0);
        c.apply_keystream(&mut half[128..], 2);
        assert_eq!(half, ct);
    }

    #[test]
    fn empty_message() {
        let c = ChaCha20::new(&[0u8; 32], &[0u8; 12]);
        assert!(c.process(b"", 0).is_empty());
    }
}
