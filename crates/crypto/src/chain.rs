//! Tamper-evident hash chains for the audit log.
//!
//! Every audit record is chained to its predecessor:
//! `h_i = SHA-256(h_{i-1} || seq_i || payload_i)`. An auditor holding
//! the latest head can detect any modification, insertion, deletion or
//! reordering of past records by re-deriving the chain.

use std::fmt;

use crate::sha256::Sha256;

/// A single link: the payload plus its chained digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Zero-based position in the chain.
    pub seq: u64,
    /// The record bytes this link covers.
    pub payload: Vec<u8>,
    /// The chained digest covering everything up to and including this
    /// payload.
    pub hash: [u8; 32],
}

/// Where chain verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainVerifyError {
    /// The link at `seq` carries a hash that does not re-derive.
    HashMismatch {
        /// Sequence number of the offending link.
        seq: u64,
    },
    /// Sequence numbers are not contiguous from zero.
    BadSequence {
        /// Expected sequence number.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
}

impl fmt::Display for ChainVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainVerifyError::HashMismatch { seq } => {
                write!(f, "hash chain broken at link {seq}")
            }
            ChainVerifyError::BadSequence { expected, found } => {
                write!(f, "bad link sequence: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ChainVerifyError {}

/// An append-only hash chain.
#[derive(Debug, Clone)]
pub struct HashChain {
    links: Vec<Link>,
    head: [u8; 32],
}

/// Digest of the empty chain (domain-separated genesis value).
fn genesis() -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"css-audit-chain-genesis-v1");
    h.finalize()
}

fn derive(prev: &[u8; 32], seq: u64, payload: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&seq.to_le_bytes());
    h.update(&(payload.len() as u64).to_le_bytes());
    h.update(payload);
    h.finalize()
}

impl Default for HashChain {
    fn default() -> Self {
        Self::new()
    }
}

impl HashChain {
    /// An empty chain.
    pub fn new() -> Self {
        HashChain {
            links: Vec::new(),
            head: genesis(),
        }
    }

    /// Append a payload, returning the new link's sequence number.
    pub fn append(&mut self, payload: Vec<u8>) -> u64 {
        let seq = self.links.len() as u64;
        let hash = derive(&self.head, seq, &payload);
        self.head = hash;
        self.links.push(Link { seq, payload, hash });
        seq
    }

    /// The digest covering the entire chain so far.
    pub fn head(&self) -> [u8; 32] {
        self.head
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// All links, in order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Re-derive every hash and compare. O(n).
    pub fn verify(&self) -> Result<(), ChainVerifyError> {
        Self::verify_links(&self.links)
    }

    /// Verify an externally stored sequence of links (e.g. reloaded from
    /// disk).
    pub fn verify_links(links: &[Link]) -> Result<(), ChainVerifyError> {
        let mut prev = genesis();
        for (i, link) in links.iter().enumerate() {
            if link.seq != i as u64 {
                return Err(ChainVerifyError::BadSequence {
                    expected: i as u64,
                    found: link.seq,
                });
            }
            let expect = derive(&prev, link.seq, &link.payload);
            if expect != link.hash {
                return Err(ChainVerifyError::HashMismatch { seq: link.seq });
            }
            prev = link.hash;
        }
        Ok(())
    }

    /// Rebuild a chain from stored links after verifying them.
    pub fn from_links(links: Vec<Link>) -> Result<Self, ChainVerifyError> {
        Self::verify_links(&links)?;
        let head = links.last().map(|l| l.hash).unwrap_or_else(genesis);
        Ok(HashChain { links, head })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HashChain {
        let mut c = HashChain::new();
        for i in 0..10u32 {
            c.append(format!("record-{i}").into_bytes());
        }
        c
    }

    #[test]
    fn verify_accepts_untampered() {
        assert!(sample().verify().is_ok());
        assert!(HashChain::new().verify().is_ok());
    }

    #[test]
    fn payload_tampering_detected() {
        let mut c = sample();
        c.links[3].payload = b"record-3-FORGED".to_vec();
        assert_eq!(c.verify(), Err(ChainVerifyError::HashMismatch { seq: 3 }));
    }

    #[test]
    fn hash_tampering_detected_downstream() {
        let mut c = sample();
        // Forge payload *and* recompute its hash — the next link breaks.
        c.links[3].payload = b"record-3-FORGED".to_vec();
        let prev = c.links[2].hash;
        c.links[3].hash = derive(&prev, 3, &c.links[3].payload);
        assert_eq!(c.verify(), Err(ChainVerifyError::HashMismatch { seq: 4 }));
    }

    #[test]
    fn deletion_detected() {
        let mut c = sample();
        c.links.remove(5);
        assert!(matches!(
            c.verify(),
            Err(ChainVerifyError::BadSequence { .. })
        ));
    }

    #[test]
    fn truncation_changes_head() {
        let c = sample();
        let mut truncated = HashChain::new();
        for l in &c.links[..5] {
            truncated.append(l.payload.clone());
        }
        assert!(truncated.verify().is_ok());
        assert_ne!(truncated.head(), c.head());
    }

    #[test]
    fn reordering_detected() {
        let mut c = sample();
        c.links.swap(2, 3);
        assert!(c.verify().is_err());
    }

    #[test]
    fn from_links_roundtrip() {
        let c = sample();
        let rebuilt = HashChain::from_links(c.links().to_vec()).unwrap();
        assert_eq!(rebuilt.head(), c.head());
        assert_eq!(rebuilt.len(), 10);
    }

    #[test]
    fn from_links_rejects_tampered() {
        let mut links = sample().links().to_vec();
        links[0].payload.push(b'!');
        assert!(HashChain::from_links(links).is_err());
    }

    #[test]
    fn heads_depend_on_content_and_order() {
        let mut a = HashChain::new();
        a.append(b"x".to_vec());
        a.append(b"y".to_vec());
        let mut b = HashChain::new();
        b.append(b"y".to_vec());
        b.append(b"x".to_vec());
        assert_ne!(a.head(), b.head());
    }
}
