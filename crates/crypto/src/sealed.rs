//! Authenticated encryption of identifying data at rest.
//!
//! [`SealedBox`] implements encrypt-then-MAC: ChaCha20 for
//! confidentiality, HMAC-SHA-256 over `nonce || ciphertext` for
//! integrity. The events index uses it to store the identifying fields
//! of every notification in encrypted form, as the privacy regulation
//! cited by the paper requires.
//!
//! Nonces are derived from a caller-supplied unique sequence number
//! (the global event id), which the platform guarantees never repeats
//! under a given key.

use std::fmt;

use crate::chacha20::ChaCha20;
use crate::hmac::{hmac_sha256, verify_mac};
use crate::sha256::Sha256;

/// Failure to open a sealed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The payload is too short to contain a nonce and MAC.
    Truncated,
    /// The MAC did not verify — the payload was corrupted or forged.
    MacMismatch,
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::Truncated => f.write_str("sealed payload truncated"),
            SealError::MacMismatch => f.write_str("sealed payload failed authentication"),
        }
    }
}

impl std::error::Error for SealError {}

/// Symmetric authenticated-encryption context.
///
/// Layout of a sealed payload: `nonce (12) || ciphertext || mac (32)`.
#[derive(Clone)]
pub struct SealedBox {
    enc_key: [u8; 32],
    mac_key: [u8; 32],
}

impl fmt::Debug for SealedBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        f.write_str("SealedBox{..}")
    }
}

const NONCE_LEN: usize = 12;
const MAC_LEN: usize = 32;

impl SealedBox {
    /// Derive independent encryption and MAC keys from a master key.
    pub fn new(master_key: &[u8]) -> Self {
        let derive = |label: &[u8]| {
            let mut h = Sha256::new();
            h.update(label);
            h.update(master_key);
            h.finalize()
        };
        SealedBox {
            enc_key: derive(b"css-enc-v1:"),
            mac_key: derive(b"css-mac-v1:"),
        }
    }

    /// Minimum size overhead added to every plaintext.
    pub const OVERHEAD: usize = NONCE_LEN + MAC_LEN;

    /// Seal `plaintext` using `sequence` to derive the nonce.
    ///
    /// The caller must never reuse a sequence number with the same key;
    /// the platform uses the global event id, which is unique.
    pub fn seal(&self, sequence: u64, plaintext: &[u8]) -> Vec<u8> {
        let nonce = Self::nonce_for(sequence);
        let cipher = ChaCha20::new(&self.enc_key, &nonce);
        let mut out = Vec::with_capacity(plaintext.len() + Self::OVERHEAD);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(&cipher.process(plaintext, 0));
        let mac = hmac_sha256(&self.mac_key, &out);
        out.extend_from_slice(&mac);
        out
    }

    /// Open a sealed payload, verifying its MAC.
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, SealError> {
        if sealed.len() < Self::OVERHEAD {
            return Err(SealError::Truncated);
        }
        let (body, mac_bytes) = sealed.split_at(sealed.len() - MAC_LEN);
        let expected = hmac_sha256(&self.mac_key, body);
        let actual: [u8; 32] = mac_bytes.try_into().expect("split length");
        if !verify_mac(&expected, &actual) {
            return Err(SealError::MacMismatch);
        }
        let (nonce_bytes, ciphertext) = body.split_at(NONCE_LEN);
        let nonce: [u8; 12] = nonce_bytes.try_into().expect("split length");
        let cipher = ChaCha20::new(&self.enc_key, &nonce);
        Ok(cipher.process(ciphertext, 0))
    }

    fn nonce_for(sequence: u64) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&sequence.to_le_bytes());
        nonce[8..].copy_from_slice(b"css!");
        nonce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx() -> SealedBox {
        SealedBox::new(b"controller master key")
    }

    #[test]
    fn seal_open_roundtrip() {
        let b = bx();
        let msg = b"Mario Rossi RSSMRA45C12L378Y";
        let sealed = b.seal(1, msg);
        assert_eq!(b.open(&sealed).unwrap(), msg);
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let b = bx();
        let msg = b"identifying information";
        let sealed = b.seal(7, msg);
        // The ciphertext region must not contain the plaintext.
        assert!(sealed.windows(msg.len()).all(|w| w != msg.as_slice()));
    }

    #[test]
    fn tampering_detected() {
        let b = bx();
        let mut sealed = b.seal(2, b"payload");
        for i in 0..sealed.len() {
            sealed[i] ^= 0x80;
            assert_eq!(b.open(&sealed), Err(SealError::MacMismatch), "byte {i}");
            sealed[i] ^= 0x80;
        }
        assert!(b.open(&sealed).is_ok());
    }

    #[test]
    fn truncated_rejected() {
        let b = bx();
        let sealed = b.seal(3, b"x");
        assert_eq!(b.open(&sealed[..10]), Err(SealError::Truncated));
        // Long enough for overhead but MAC now wrong.
        assert!(b.open(&sealed[..SealedBox::OVERHEAD]).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = bx().seal(4, b"secret");
        let other = SealedBox::new(b"different master key");
        assert_eq!(other.open(&sealed), Err(SealError::MacMismatch));
    }

    #[test]
    fn distinct_sequences_distinct_ciphertexts() {
        let b = bx();
        assert_ne!(b.seal(1, b"same"), b.seal(2, b"same"));
    }

    #[test]
    fn empty_plaintext() {
        let b = bx();
        let sealed = b.seal(5, b"");
        assert_eq!(sealed.len(), SealedBox::OVERHEAD);
        assert_eq!(b.open(&sealed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn debug_does_not_leak_keys() {
        assert_eq!(format!("{:?}", bx()), "SealedBox{..}");
    }
}
