//! Cryptographic primitives for the CSS platform, implemented in-repo.
//!
//! The paper requires two cryptographic capabilities:
//!
//! 1. "The identifying information of the person specified in the
//!    notification is stored in encrypted form to comply with the
//!    privacy regulations" (Section 4) — provided by [`SealedBox`],
//!    an encrypt-then-MAC construction over ChaCha20 + HMAC-SHA-256.
//! 2. The data controller "maintains logs of the access request for
//!    auditing purposes" — made tamper-evident by [`HashChain`].
//!
//! The primitives (SHA-256 per FIPS 180-4, ChaCha20 per RFC 8439,
//! HMAC per RFC 2104) are implemented from the specifications and
//! verified against published test vectors in each module's tests.
//! They are *reproduction-grade*: no constant-time hardening or key
//! zeroization is attempted, which is acceptable for a simulation
//! substrate but would not be for a production deployment.

pub mod chacha20;
pub mod chain;
pub mod hmac;
pub mod sealed;
pub mod sha256;

pub use chacha20::ChaCha20;
pub use chain::{ChainVerifyError, HashChain, Link};
pub use hmac::hmac_sha256;
pub use sealed::{SealError, SealedBox};
pub use sha256::{from_hex, sha256, to_hex, Sha256};
