//! Detail requests (Definition 3's `r = {A_r, τ_e, S_r}` plus the
//! event identifier of Algorithm 1's `R = {a, τ_e, eID, s}`).

use css_types::{ActorId, EventTypeId, GlobalEventId, Purpose, RequestId};

/// A request for the details of one event, with an explicitly stated
/// purpose. Issued by a data consumer to the data controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetailRequest {
    /// Identifier assigned by the controller for audit correlation.
    pub request_id: RequestId,
    /// `a` / `A_r`: the requesting actor.
    pub actor: ActorId,
    /// `τ_e`: the type of the event whose details are requested.
    pub event_type: EventTypeId,
    /// `eID`: the global identifier from the notification message.
    ///
    /// Possessing it is a precondition: "the notification ... is a
    /// pre-requisite to issue the request for details".
    pub event_id: GlobalEventId,
    /// `s` / `S_r`: the stated purpose of use.
    pub purpose: Purpose,
}

impl DetailRequest {
    /// Construct a request.
    pub fn new(
        request_id: RequestId,
        actor: ActorId,
        event_type: EventTypeId,
        event_id: GlobalEventId,
        purpose: Purpose,
    ) -> Self {
        DetailRequest {
            request_id,
            actor,
            event_type,
            event_id,
            purpose,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = DetailRequest::new(
            RequestId(1),
            ActorId(2),
            EventTypeId::v1("blood-test"),
            GlobalEventId(3),
            Purpose::HealthcareTreatment,
        );
        assert_eq!(r.actor, ActorId(2));
        assert_eq!(r.purpose, Purpose::HealthcareTreatment);
    }
}
