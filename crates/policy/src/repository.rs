//! The persistent policy repository.
//!
//! The data controller "acts as guarantor and as certificated repository
//! of the privacy policies" (Section 5). Policies are persisted in their
//! XACML form through the `css-storage` keyed store, so the repository
//! survives restarts and can be audited byte-for-byte.

use css_storage::{KvStore, LogBackend};
use css_types::{CssError, CssResult, PolicyId};

use crate::model::PrivacyPolicy;
use crate::xacml::{from_xacml, to_xacml};

/// Durable store of privacy policies, keyed by policy id.
pub struct PolicyRepository<B: LogBackend> {
    store: KvStore<B>,
}

impl<B: LogBackend> PolicyRepository<B> {
    /// Open a repository over a storage backend, replaying existing
    /// policies.
    pub fn open(backend: B) -> CssResult<Self> {
        let (store, _torn) = KvStore::open(backend)?;
        Ok(PolicyRepository { store })
    }

    /// Persist a policy (insert or replace).
    pub fn save(&mut self, policy: &PrivacyPolicy) -> CssResult<()> {
        let xml = css_xml::to_string(&to_xacml(policy));
        self.store.put(&key(policy.id), xml.as_bytes())?;
        self.store.sync()
    }

    /// Persist a set of policies as one group commit: every record is
    /// written in a single backend append and synced once, instead of
    /// one write + fsync per policy. Bulk loads (elicitation-tool
    /// imports, consumer fan-outs) use this path.
    pub fn save_all(&mut self, policies: &[PrivacyPolicy]) -> CssResult<()> {
        if policies.is_empty() {
            return Ok(());
        }
        let keys: Vec<Vec<u8>> = policies.iter().map(|p| key(p.id)).collect();
        let docs: Vec<Vec<u8>> = policies
            .iter()
            .map(|p| css_xml::to_string(&to_xacml(p)).into_bytes())
            .collect();
        let pairs: Vec<(&[u8], &[u8])> = keys
            .iter()
            .zip(&docs)
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        self.store.put_batch(&pairs)?;
        self.store.sync()
    }

    /// Load a policy by id.
    pub fn load(&self, id: PolicyId) -> CssResult<Option<PrivacyPolicy>> {
        match self.store.get(&key(id))? {
            None => Ok(None),
            Some(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|e| CssError::Serialization(format!("policy not UTF-8: {e}")))?;
                let doc =
                    css_xml::parse(&text).map_err(|e| CssError::Serialization(e.to_string()))?;
                Ok(Some(from_xacml(&doc)?))
            }
        }
    }

    /// Remove a policy outright. Prefer [`PolicyRepository::revoke`],
    /// which preserves the record for auditing.
    pub fn delete(&mut self, id: PolicyId) -> CssResult<bool> {
        let was = self.store.delete(&key(id))?;
        self.store.sync()?;
        Ok(was)
    }

    /// Mark a stored policy revoked.
    pub fn revoke(&mut self, id: PolicyId) -> CssResult<bool> {
        match self.load(id)? {
            None => Ok(false),
            Some(mut policy) => {
                policy.revoke();
                self.save(&policy)?;
                Ok(true)
            }
        }
    }

    /// Load every stored policy.
    pub fn load_all(&self) -> CssResult<Vec<PrivacyPolicy>> {
        let ids: Vec<Vec<u8>> = self.store.keys().map(<[u8]>::to_vec).collect();
        let mut out = Vec::with_capacity(ids.len());
        for k in ids {
            let bytes = self
                .store
                .get(&k)?
                .ok_or_else(|| CssError::Storage("key vanished during scan".into()))?;
            let text = String::from_utf8(bytes)
                .map_err(|e| CssError::Serialization(format!("policy not UTF-8: {e}")))?;
            let doc = css_xml::parse(&text).map_err(|e| CssError::Serialization(e.to_string()))?;
            out.push(from_xacml(&doc)?);
        }
        out.sort_by_key(|p| p.id);
        Ok(out)
    }

    /// Number of stored policies.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

fn key(id: PolicyId) -> Vec<u8> {
    format!("policy:{}", id.value()).into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_storage::MemBackend;
    use css_types::{ActorId, EventTypeId, Purpose};

    fn policy(id: u64) -> PrivacyPolicy {
        PrivacyPolicy::new(
            PolicyId(id),
            ActorId(1),
            ActorId(2),
            EventTypeId::v1("blood-test"),
            [Purpose::HealthcareTreatment],
            ["PatientId".to_string()],
        )
        .labeled(format!("p{id}"), "test policy")
    }

    #[test]
    fn save_load_roundtrip() {
        let mut repo = PolicyRepository::open(MemBackend::new()).unwrap();
        repo.save(&policy(1)).unwrap();
        assert_eq!(repo.load(PolicyId(1)).unwrap().unwrap(), policy(1));
        assert!(repo.load(PolicyId(2)).unwrap().is_none());
    }

    #[test]
    fn save_replaces() {
        let mut repo = PolicyRepository::open(MemBackend::new()).unwrap();
        repo.save(&policy(1)).unwrap();
        let mut updated = policy(1);
        updated.fields.insert("Result".into());
        repo.save(&updated).unwrap();
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.load(PolicyId(1)).unwrap().unwrap(), updated);
    }

    #[test]
    fn revoke_persists() {
        let mut repo = PolicyRepository::open(MemBackend::new()).unwrap();
        repo.save(&policy(1)).unwrap();
        assert!(repo.revoke(PolicyId(1)).unwrap());
        assert!(repo.load(PolicyId(1)).unwrap().unwrap().revoked);
        assert!(!repo.revoke(PolicyId(99)).unwrap());
    }

    #[test]
    fn load_all_sorted() {
        let mut repo = PolicyRepository::open(MemBackend::new()).unwrap();
        for id in [3, 1, 2] {
            repo.save(&policy(id)).unwrap();
        }
        let all = repo.load_all().unwrap();
        let ids: Vec<u64> = all.iter().map(|p| p.id.value()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn save_all_matches_sequential_saves() {
        let mut sequential = PolicyRepository::open(MemBackend::new()).unwrap();
        for id in 1..=4 {
            sequential.save(&policy(id)).unwrap();
        }
        let mut batched = PolicyRepository::open(MemBackend::new()).unwrap();
        let all: Vec<PrivacyPolicy> = (1..=4).map(policy).collect();
        batched.save_all(&all).unwrap();
        assert_eq!(batched.len(), 4);
        assert_eq!(batched.load_all().unwrap(), sequential.load_all().unwrap());
        batched.save_all(&[]).unwrap();
        assert_eq!(batched.len(), 4);
    }

    #[test]
    fn delete_removes() {
        let mut repo = PolicyRepository::open(MemBackend::new()).unwrap();
        repo.save(&policy(1)).unwrap();
        assert!(repo.delete(PolicyId(1)).unwrap());
        assert!(repo.is_empty());
    }

    #[test]
    fn survives_reopen_on_file_backend() {
        let dir = std::env::temp_dir().join(format!("css-polrepo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policies.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut repo =
                PolicyRepository::open(css_storage::FileBackend::open(&path).unwrap()).unwrap();
            repo.save(&policy(1)).unwrap();
            repo.save(&policy(2)).unwrap();
            repo.revoke(PolicyId(2)).unwrap();
        }
        let repo = PolicyRepository::open(css_storage::FileBackend::open(&path).unwrap()).unwrap();
        assert_eq!(repo.len(), 2);
        assert!(!repo.load(PolicyId(1)).unwrap().unwrap().revoked);
        assert!(repo.load(PolicyId(2)).unwrap().unwrap().revoked);
        let _ = std::fs::remove_file(&path);
    }
}
