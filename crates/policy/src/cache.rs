//! Generation-stamped PDP decision cache.
//!
//! Algorithm-1 traffic is heavily repetitive: the same consumer asks
//! for the same event class with the same purpose thousands of times
//! (one request per notification received). Matching, however, walks
//! every candidate policy and the actor hierarchy on every request.
//! This cache memoizes the evaluation result per
//! `(actor, event type, purpose)` key so the steady state is one hash
//! lookup.
//!
//! Two things can change a decision after it was computed:
//!
//! 1. **The policy set changes** — `install` / `remove` / `revoke`.
//!    The owning PDP bumps the [`Generation`] counter; every cached
//!    entry carries the generation it was computed under and a stale
//!    stamp is a miss. A revoked policy therefore denies on the very
//!    next request — there is no propagation window.
//! 2. **Time passes a validity boundary** — a policy expires or enters
//!    its window. Each entry stores the *stability interval* the
//!    decision holds on: the interval between the nearest validity
//!    boundaries of the candidate policies around the evaluation
//!    instant. A lookup outside the interval is a miss, so an expiring
//!    policy stops matching at exactly its boundary, cached or not.
//!
//! The cache never answers differently from a fresh evaluation; it only
//! skips re-deriving an answer that provably cannot have changed.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use css_types::Timestamp;

use crate::model::PrivacyPolicy;

/// Monotonic stamp of the policy-set version a decision was computed
/// under. Bumped wholesale on any install/remove/revoke.
#[derive(Debug, Default)]
pub struct Generation(AtomicU64);

impl Generation {
    /// Current generation.
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Invalidate every decision computed so far.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::AcqRel);
    }
}

/// The half-open interval `[from, until)` of instants a cached decision
/// is provably stable on, derived from candidate validity windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityInterval {
    from: Timestamp,
    until: Option<Timestamp>,
}

impl StabilityInterval {
    /// The interval containing `now`, narrowed by every validity
    /// boundary of `policies`. A decision evaluated at `now` holds for
    /// any instant in the returned interval: no candidate policy enters
    /// or leaves its validity window inside it.
    pub fn around<'a>(
        now: Timestamp,
        policies: impl IntoIterator<Item = &'a PrivacyPolicy>,
    ) -> Self {
        let mut from = Timestamp(0);
        let mut until: Option<Timestamp> = None;
        let mut narrow = |boundary: Timestamp| {
            if boundary <= now {
                if boundary > from {
                    from = boundary;
                }
            } else if until.is_none_or(|u| boundary < u) {
                until = Some(boundary);
            }
        };
        for policy in policies {
            // Revoked policies never match at any time: no boundary.
            if policy.revoked {
                continue;
            }
            if let Some(nb) = policy.validity.not_before {
                narrow(nb);
            }
            if let Some(na) = policy.validity.not_after {
                // The decision flips strictly after `not_after`.
                if let Some(b) = na.as_millis().checked_add(1) {
                    narrow(Timestamp(b));
                }
            }
        }
        StabilityInterval { from, until }
    }

    /// Whether `now` falls inside the interval.
    pub fn contains(&self, now: Timestamp) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

struct Entry<V> {
    generation: u64,
    stable: StabilityInterval,
    value: V,
}

/// Hit/miss totals since the cache was created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh evaluation.
    pub misses: u64,
}

/// How many independently locked segments a cache spreads its entries
/// over. Keys hash-partition across segments, so concurrent lookups
/// from different shards of the data plane contend only when they land
/// on the same segment, not on one global mutex.
const CACHE_SEGMENTS: usize = 8;

/// A keyed memo of decisions, validated against a [`Generation`] and a
/// per-entry [`StabilityInterval`].
///
/// Internally the map is split into [`CACHE_SEGMENTS`] segments, each
/// behind its own mutex, keyed by the entry's hash — the sharded
/// controller data plane hits the cache from many threads at once, and
/// a single map mutex would re-serialize what the shards just
/// parallelized. All segments share the owning PDP's one [`Generation`]
/// counter, so a revocation invalidates every segment at the same
/// instant. The PDP's evaluation path stays `&self` so concurrent
/// readers share one cache.
pub struct DecisionCache<K, V> {
    segments: Vec<Mutex<HashMap<K, Entry<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K, V> Default for DecisionCache<K, V> {
    fn default() -> Self {
        DecisionCache {
            segments: (0..CACHE_SEGMENTS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<K: Eq + Hash, V: Clone> DecisionCache<K, V> {
    fn segment(&self, key: &K) -> &Mutex<HashMap<K, Entry<V>>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.segments[(hasher.finish() as usize) % self.segments.len()]
    }

    /// The cached value for `key`, if it was computed under
    /// `generation` and its stability interval contains `now`.
    pub fn get(&self, key: &K, generation: u64, now: Timestamp) -> Option<V> {
        let entries = self.segment(key).lock();
        let hit = entries
            .get(key)
            .filter(|e| e.generation == generation && e.stable.contains(now))
            .map(|e| e.value.clone());
        drop(entries);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Memoize `value` for `key` under `generation`, stable on
    /// `stable`. An entry from an older generation is replaced.
    pub fn put(&self, key: K, generation: u64, stable: StabilityInterval, value: V) {
        self.segment(&key).lock().insert(
            key,
            Entry {
                generation,
                stable,
                value,
            },
        );
    }

    /// Drop every entry (generation bumps make entries unreachable;
    /// this also frees their memory on explicit invalidation).
    pub fn clear(&self) {
        for segment in &self.segments {
            segment.lock().clear();
        }
    }

    /// Number of resident entries (any generation).
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.lock().is_empty())
    }

    /// Hit/miss totals since creation.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ValidityWindow;
    use css_types::{ActorId, EventTypeId, PolicyId, Purpose};

    fn policy(window: ValidityWindow) -> PrivacyPolicy {
        PrivacyPolicy::new(
            PolicyId(1),
            ActorId(1),
            ActorId(2),
            EventTypeId::v1("e"),
            [Purpose::Audit],
            ["f".to_string()],
        )
        .valid(window)
    }

    #[test]
    fn unbounded_policies_give_unbounded_interval() {
        let p = policy(ValidityWindow::ALWAYS);
        let s = StabilityInterval::around(Timestamp(50), [&p]);
        assert!(s.contains(Timestamp(0)));
        assert!(s.contains(Timestamp(u64::MAX)));
    }

    #[test]
    fn interval_stops_at_expiry_boundary() {
        let p = policy(ValidityWindow::until(Timestamp(100)));
        let s = StabilityInterval::around(Timestamp(50), [&p]);
        assert!(s.contains(Timestamp(100)));
        assert!(!s.contains(Timestamp(101)));
    }

    #[test]
    fn interval_after_expiry_excludes_the_window() {
        let p = policy(ValidityWindow::between(Timestamp(10), Timestamp(100)));
        let s = StabilityInterval::around(Timestamp(200), [&p]);
        assert!(!s.contains(Timestamp(100)));
        assert!(s.contains(Timestamp(101)));
        assert!(s.contains(Timestamp(u64::MAX)));
    }

    #[test]
    fn interval_before_window_stops_at_entry() {
        let p = policy(ValidityWindow::between(Timestamp(10), Timestamp(100)));
        let s = StabilityInterval::around(Timestamp(5), [&p]);
        assert!(s.contains(Timestamp(0)));
        assert!(s.contains(Timestamp(9)));
        assert!(!s.contains(Timestamp(10)));
    }

    #[test]
    fn revoked_policies_contribute_no_boundary() {
        let mut p = policy(ValidityWindow::until(Timestamp(100)));
        p.revoke();
        let s = StabilityInterval::around(Timestamp(50), [&p]);
        assert!(s.contains(Timestamp(u64::MAX)));
    }

    #[test]
    fn generation_mismatch_is_a_miss() {
        let cache: DecisionCache<u8, u8> = DecisionCache::default();
        let stable = StabilityInterval::around(Timestamp(0), []);
        cache.put(1, 0, stable, 42);
        assert_eq!(cache.get(&1, 0, Timestamp(0)), Some(42));
        assert_eq!(cache.get(&1, 1, Timestamp(0)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn segmented_cache_round_trips_across_segments() {
        // More keys than segments: every segment ends up holding
        // entries, and get/len/clear see the union, not one segment.
        let cache: DecisionCache<u64, u64> = DecisionCache::default();
        let stable = StabilityInterval::around(Timestamp(0), []);
        for k in 0..64u64 {
            cache.put(k, 0, stable, k * 2);
        }
        assert_eq!(cache.len(), 64);
        for k in 0..64u64 {
            assert_eq!(cache.get(&k, 0, Timestamp(0)), Some(k * 2));
        }
        // A generation bump (as after revocation) misses on every
        // segment at once.
        for k in 0..64u64 {
            assert_eq!(cache.get(&k, 1, Timestamp(0)), None);
        }
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn out_of_interval_lookup_is_a_miss() {
        let cache: DecisionCache<u8, u8> = DecisionCache::default();
        let p = policy(ValidityWindow::until(Timestamp(100)));
        let stable = StabilityInterval::around(Timestamp(50), [&p]);
        cache.put(1, 0, stable, 42);
        assert_eq!(cache.get(&1, 0, Timestamp(100)), Some(42));
        assert_eq!(cache.get(&1, 0, Timestamp(101)), None);
    }
}
