//! XACML serialization of privacy policies (Fig. 8).
//!
//! "We are using XACML to model internally to the Policy Enforcer module
//! the privacy policies" (Section 5.1). The elicitation tool
//! "automatically generates and stores in a policy repository the
//! privacy policy in XACML format" (Section 6).
//!
//! The document shape follows the paper's Fig. 8 example: a `Policy`
//! with a `Target` (Subjects = the actor, Resources = the event type,
//! Actions = the purposes), one Permit `Rule`, and an `Obligations`
//! block enumerating the accessible fields. The paper's architecture is
//! explicitly *notation-independent* ("the way we interact with the data
//! producer and data consumer is independent from the underlying
//! notation"), which experiment E5 quantifies by benchmarking native
//! evaluation against a full XACML round-trip.

use css_types::{ActorId, CssError, CssResult, PolicyId, Purpose, Timestamp};
use css_xml::Element;

use crate::model::{PrivacyPolicy, ValidityWindow};

const RULE_COMBINING: &str =
    "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:permit-overrides";
const OBLIGATION_FILTER: &str = "urn:css:obligation:filter-fields";

/// Serialize a policy to its XACML document.
pub fn to_xacml(policy: &PrivacyPolicy) -> Element {
    let mut root = Element::new("Policy")
        .attr("PolicyId", policy.id.to_string())
        .attr("RuleCombiningAlgId", RULE_COMBINING)
        .attr("Producer", policy.producer.to_string());
    if !policy.label.is_empty() {
        root = root.attr("Label", policy.label.clone());
    }
    if let Some(t) = policy.validity.not_before {
        root = root.attr("ValidFrom", t.as_millis().to_string());
    }
    if let Some(t) = policy.validity.not_after {
        root = root.attr("ValidUntil", t.as_millis().to_string());
    }
    if policy.revoked {
        root = root.attr("Revoked", "true");
    }
    if !policy.description.is_empty() {
        root = root.child(Element::leaf("Description", policy.description.clone()));
    }

    let subjects = Element::new("Subjects").child(
        Element::new("Subject").child(
            Element::new("SubjectMatch")
                .attr(
                    "MatchId",
                    "urn:oasis:names:tc:xacml:1.0:function:string-equal",
                )
                .child(Element::leaf("AttributeValue", policy.actor.to_string())),
        ),
    );
    let resources = Element::new("Resources").child(
        Element::new("Resource").child(
            Element::new("ResourceMatch")
                .attr(
                    "MatchId",
                    "urn:oasis:names:tc:xacml:1.0:function:string-equal",
                )
                .child(Element::leaf(
                    "AttributeValue",
                    policy.event_type.to_string(),
                )),
        ),
    );
    let mut actions = Element::new("Actions");
    for purpose in &policy.purposes {
        actions = actions.child(
            Element::new("Action").child(
                Element::new("ActionMatch")
                    .attr(
                        "MatchId",
                        "urn:oasis:names:tc:xacml:1.0:function:string-equal",
                    )
                    .child(Element::leaf("AttributeValue", purpose.code())),
            ),
        );
    }
    let target = Element::new("Target")
        .child(subjects)
        .child(resources)
        .child(actions);

    let rule = Element::new("Rule")
        .attr("RuleId", format!("{}-rule", policy.id))
        .attr("Effect", "Permit");

    let mut obligation = Element::new("Obligation")
        .attr("ObligationId", OBLIGATION_FILTER)
        .attr("FulfillOn", "Permit");
    for field in &policy.fields {
        obligation = obligation.child(
            Element::new("AttributeAssignment")
                .attr("AttributeId", "urn:css:field")
                .text(field.clone()),
        );
    }
    let obligations = Element::new("Obligations").child(obligation);

    root.child(target).child(rule).child(obligations)
}

/// Parse a policy back from its XACML document.
pub fn from_xacml(e: &Element) -> CssResult<PrivacyPolicy> {
    let bad = |msg: String| CssError::Serialization(format!("XACML: {msg}"));
    if e.name != "Policy" {
        return Err(bad(format!("wrong root <{}>", e.name)));
    }
    let id: PolicyId = e
        .attribute("PolicyId")
        .ok_or_else(|| bad("missing PolicyId".into()))?
        .parse()
        .map_err(|err| bad(format!("bad PolicyId: {err}")))?;
    let producer: ActorId = e
        .attribute("Producer")
        .ok_or_else(|| bad("missing Producer".into()))?
        .parse()
        .map_err(|err| bad(format!("bad Producer: {err}")))?;
    let target = e
        .find("Target")
        .ok_or_else(|| bad("missing <Target>".into()))?;

    let match_values = |section: &str, match_tag: &str| -> Vec<String> {
        let mut out = Vec::new();
        if let Some(sec) = target.find(section) {
            sec.walk(&mut |el| {
                if el.name == match_tag {
                    if let Some(v) = el.find("AttributeValue") {
                        out.push(v.text_content());
                    }
                }
            });
        }
        out
    };

    let subjects = match_values("Subjects", "SubjectMatch");
    let actor: ActorId = subjects
        .first()
        .ok_or_else(|| bad("missing subject".into()))?
        .parse()
        .map_err(|err| bad(format!("bad subject: {err}")))?;

    let resources = match_values("Resources", "ResourceMatch");
    let event_type = resources
        .first()
        .ok_or_else(|| bad("missing resource".into()))?
        .parse()
        .map_err(|err| bad(format!("bad resource: {err}")))?;

    let purposes: Vec<Purpose> = match_values("Actions", "ActionMatch")
        .iter()
        .map(|s| Purpose::from_code(s))
        .collect();
    if purposes.is_empty() {
        return Err(bad("policy allows no purposes".into()));
    }

    // Rule must exist and be a Permit (deny-by-default makes Deny rules
    // meaningless in this subset).
    let rule = e.find("Rule").ok_or_else(|| bad("missing <Rule>".into()))?;
    if rule.attribute("Effect") != Some("Permit") {
        return Err(bad("only Permit rules are supported".into()));
    }

    let mut fields = Vec::new();
    if let Some(obligations) = e.find("Obligations") {
        for ob in obligations.find_all("Obligation") {
            if ob.attribute("ObligationId") == Some(OBLIGATION_FILTER) {
                for assign in ob.find_all("AttributeAssignment") {
                    fields.push(assign.text_content());
                }
            }
        }
    }

    let parse_ts = |attr: &str| -> CssResult<Option<Timestamp>> {
        match e.attribute(attr) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<u64>()
                .map(|ms| Some(Timestamp(ms)))
                .map_err(|err| bad(format!("bad {attr}: {err}"))),
        }
    };
    let validity = ValidityWindow {
        not_before: parse_ts("ValidFrom")?,
        not_after: parse_ts("ValidUntil")?,
    };

    let mut policy = PrivacyPolicy::new(id, producer, actor, event_type, purposes, fields)
        .valid(validity)
        .labeled(
            e.attribute("Label").unwrap_or_default(),
            e.child_text("Description").unwrap_or_default(),
        );
    if e.attribute("Revoked") == Some("true") {
        policy.revoke();
    }
    Ok(policy)
}

/// Map a detail request to an XACML `Request` context (Fig. 5: "the
/// request for details of the data consumer is mapped to an XACML
/// request by the policy enforcer").
pub fn to_xacml_request(request: &crate::request::DetailRequest) -> Element {
    let attribute = |id: &str, value: String| {
        Element::new("Attribute")
            .attr("AttributeId", id)
            .child(Element::leaf("AttributeValue", value))
    };
    Element::new("Request")
        .child(Element::new("Subject").child(attribute(
            "urn:css:subject:actor",
            request.actor.to_string(),
        )))
        .child(
            Element::new("Resource")
                .child(attribute(
                    "urn:css:resource:event-type",
                    request.event_type.to_string(),
                ))
                .child(attribute(
                    "urn:css:resource:event-id",
                    request.event_id.to_string(),
                )),
        )
        .child(Element::new("Action").child(attribute(
            "urn:css:action:purpose",
            request.purpose.code().to_string(),
        )))
        .child(Element::new("Environment").child(attribute(
            "urn:css:environment:request-id",
            request.request_id.to_string(),
        )))
}

/// Parse a detail request back from its XACML `Request` context.
pub fn from_xacml_request(e: &Element) -> CssResult<crate::request::DetailRequest> {
    let bad = |msg: String| CssError::Serialization(format!("XACML Request: {msg}"));
    if e.name != "Request" {
        return Err(bad(format!("wrong root <{}>", e.name)));
    }
    let find_attr = |section: &str, id: &str| -> CssResult<String> {
        e.find(section)
            .ok_or_else(|| bad(format!("missing <{section}>")))?
            .find_all("Attribute")
            .find(|a| a.attribute("AttributeId") == Some(id))
            .and_then(|a| a.child_text("AttributeValue"))
            .ok_or_else(|| bad(format!("missing attribute {id}")))
    };
    let actor: ActorId = find_attr("Subject", "urn:css:subject:actor")?
        .parse()
        .map_err(|err| bad(format!("bad actor: {err}")))?;
    let event_type = find_attr("Resource", "urn:css:resource:event-type")?
        .parse()
        .map_err(|err| bad(format!("bad event type: {err}")))?;
    let event_id = find_attr("Resource", "urn:css:resource:event-id")?
        .parse()
        .map_err(|err| bad(format!("bad event id: {err}")))?;
    let purpose = Purpose::from_code(&find_attr("Action", "urn:css:action:purpose")?);
    let request_id = find_attr("Environment", "urn:css:environment:request-id")?
        .parse()
        .map_err(|err| bad(format!("bad request id: {err}")))?;
    Ok(crate::request::DetailRequest::new(
        request_id, actor, event_type, event_id, purpose,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use css_types::EventTypeId;

    fn fig8_like_policy() -> PrivacyPolicy {
        // Fig. 8: family doctor may access HomeCareServiceEvent for
        // HealthCareTreatment; only PatientId, Name, Surname accessible.
        PrivacyPolicy::new(
            PolicyId(8),
            ActorId(30),
            ActorId(12), // family doctor role
            EventTypeId::v1("home-care-service-event"),
            [Purpose::HealthcareTreatment],
            ["PatientId", "Name", "Surname"].map(String::from),
        )
        .labeled("family-doctor-homecare", "Fig. 8 example policy")
    }

    #[test]
    fn roundtrip_basic() {
        let p = fig8_like_policy();
        let doc = to_xacml(&p);
        let text = css_xml::to_string_pretty(&doc);
        let back = from_xacml(&css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_with_validity_and_revocation() {
        let mut p =
            fig8_like_policy().valid(ValidityWindow::between(Timestamp(1_000), Timestamp(2_000)));
        p.revoke();
        let back = from_xacml(&to_xacml(&p)).unwrap();
        assert_eq!(back, p);
        assert!(back.revoked);
    }

    #[test]
    fn roundtrip_multiple_purposes_and_custom() {
        let p = PrivacyPolicy::new(
            PolicyId(9),
            ActorId(1),
            ActorId(2),
            EventTypeId::v1("autonomy-test"),
            [
                Purpose::StatisticalAnalysis,
                Purpose::Administration,
                Purpose::Custom("pilot-study".into()),
            ],
            ["age".to_string()],
        );
        let back = from_xacml(&to_xacml(&p)).unwrap();
        assert_eq!(back.purposes, p.purposes);
    }

    #[test]
    fn roundtrip_empty_field_set() {
        // A policy can grant notification visibility with zero detail
        // fields (subscription-only authorization).
        let p = PrivacyPolicy::new(
            PolicyId(10),
            ActorId(1),
            ActorId(2),
            EventTypeId::v1("discharge"),
            [Purpose::Administration],
            Vec::<String>::new(),
        );
        let back = from_xacml(&to_xacml(&p)).unwrap();
        assert!(back.fields.is_empty());
    }

    #[test]
    fn document_shape_matches_fig8() {
        let doc = to_xacml(&fig8_like_policy());
        assert_eq!(doc.name, "Policy");
        let target = doc.find("Target").unwrap();
        assert!(target.find("Subjects").is_some());
        assert!(target.find("Resources").is_some());
        assert!(target.find("Actions").is_some());
        assert_eq!(
            doc.find("Rule").unwrap().attribute("Effect"),
            Some("Permit")
        );
        let fields: Vec<String> = doc
            .find("Obligations")
            .unwrap()
            .find("Obligation")
            .unwrap()
            .find_all("AttributeAssignment")
            .map(|a| a.text_content())
            .collect();
        assert_eq!(fields.len(), 3);
    }

    #[test]
    fn from_xacml_rejects_deny_rule() {
        let mut doc = to_xacml(&fig8_like_policy());
        // Flip the rule effect.
        for child in &mut doc.children {
            if let css_xml::Node::Element(el) = child {
                if el.name == "Rule" {
                    el.attributes.retain(|(k, _)| k != "Effect");
                    el.attributes.push(("Effect".into(), "Deny".into()));
                }
            }
        }
        assert!(from_xacml(&doc).is_err());
    }

    #[test]
    fn from_xacml_rejects_missing_parts() {
        let p = fig8_like_policy();
        let full = to_xacml(&p);
        // Remove Target → error.
        let mut no_target = full.clone();
        no_target
            .children
            .retain(|c| !matches!(c, css_xml::Node::Element(e) if e.name == "Target"));
        assert!(from_xacml(&no_target).is_err());
        // Remove Rule → error.
        let mut no_rule = full.clone();
        no_rule
            .children
            .retain(|c| !matches!(c, css_xml::Node::Element(e) if e.name == "Rule"));
        assert!(from_xacml(&no_rule).is_err());
        // Wrong root → error.
        assert!(from_xacml(&Element::new("PolicySet")).is_err());
    }

    #[test]
    fn from_xacml_rejects_no_purposes() {
        let p = PrivacyPolicy::new(
            PolicyId(11),
            ActorId(1),
            ActorId(2),
            EventTypeId::v1("x"),
            Vec::<Purpose>::new(),
            ["a".to_string()],
        );
        assert!(from_xacml(&to_xacml(&p)).is_err());
    }
}

#[cfg(test)]
mod request_tests {
    use super::*;
    use crate::request::DetailRequest;
    use css_types::{EventTypeId, GlobalEventId, RequestId};

    fn request() -> DetailRequest {
        DetailRequest::new(
            RequestId(44),
            ActorId(12),
            EventTypeId::v1("home-care-service-event"),
            GlobalEventId(9),
            Purpose::HealthcareTreatment,
        )
    }

    #[test]
    fn request_roundtrip() {
        let r = request();
        let text = css_xml::to_string_pretty(&to_xacml_request(&r));
        let back = from_xacml_request(&css_xml::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn request_context_shape() {
        let doc = to_xacml_request(&request());
        assert_eq!(doc.name, "Request");
        for section in ["Subject", "Resource", "Action", "Environment"] {
            assert!(doc.find(section).is_some(), "missing <{section}>");
        }
    }

    #[test]
    fn request_parse_rejects_malformed() {
        assert!(from_xacml_request(&Element::new("Response")).is_err());
        let mut doc = to_xacml_request(&request());
        doc.children
            .retain(|c| !matches!(c, css_xml::Node::Element(e) if e.name == "Action"));
        assert!(from_xacml_request(&doc).is_err());
    }

    #[test]
    fn request_roundtrip_custom_purpose() {
        let mut r = request();
        r.purpose = Purpose::Custom("pilot-study".into());
        let back = from_xacml_request(&to_xacml_request(&r)).unwrap();
        assert_eq!(back.purpose, r.purpose);
    }
}
