//! The Policy Decision Point.
//!
//! The PDP holds the policies a producer has defined and evaluates
//! requests with **deny-by-default** semantics: "unless permitted by
//! some privacy policy an Event Details cannot be accessed by any
//! subject" (Section 5.1).
//!
//! When several policies match (e.g. one granted to the organization and
//! one to the department), the permit carries the **union** of their
//! field sets — each matching policy independently authorizes its own
//! fields, so the combined obligation is their union. This is XACML's
//! permit-overrides combining algorithm restricted to the paper's
//! read-only rules.

use std::collections::HashMap;

use css_types::{ActorRegistry, DenyReason, EventTypeId, PolicyId, Timestamp};

use crate::decision::Decision;
use crate::matching::{matches, MatchOutcome};
use crate::model::PrivacyPolicy;
use crate::request::DetailRequest;

/// In-memory decision point over an indexed policy set.
#[derive(Debug, Default)]
pub struct PolicyDecisionPoint {
    by_type: HashMap<EventTypeId, Vec<PrivacyPolicy>>,
    count: usize,
}

impl PolicyDecisionPoint {
    /// An empty PDP (every request denies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a policy. Replaces any existing policy with the same id.
    pub fn install(&mut self, policy: PrivacyPolicy) {
        self.remove(policy.id);
        self.by_type
            .entry(policy.event_type.clone())
            .or_default()
            .push(policy);
        self.count += 1;
    }

    /// Remove a policy by id. Returns whether it was present.
    pub fn remove(&mut self, id: PolicyId) -> bool {
        for policies in self.by_type.values_mut() {
            if let Some(pos) = policies.iter().position(|p| p.id == id) {
                policies.remove(pos);
                self.count -= 1;
                return true;
            }
        }
        false
    }

    /// Mark a policy revoked (kept for audit, never matches again).
    pub fn revoke(&mut self, id: PolicyId) -> bool {
        for policies in self.by_type.values_mut() {
            if let Some(p) = policies.iter_mut().find(|p| p.id == id) {
                p.revoke();
                return true;
            }
        }
        false
    }

    /// Number of installed policies (including revoked ones).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no policies are installed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// All policies for an event type.
    pub fn policies_for(&self, event_type: &EventTypeId) -> &[PrivacyPolicy] {
        self.by_type
            .get(event_type)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate over every installed policy.
    pub fn iter(&self) -> impl Iterator<Item = &PrivacyPolicy> {
        self.by_type.values().flatten()
    }

    /// Evaluate a request (Algorithm 1, steps 2–3).
    ///
    /// Returns `Permit` with the union of allowed fields over all
    /// matching policies, or the most precise deny reason observed.
    pub fn evaluate(
        &self,
        request: &DetailRequest,
        actors: &ActorRegistry,
        now: Timestamp,
    ) -> Decision {
        let candidates = self.policies_for(&request.event_type);
        let mut allowed = std::collections::BTreeSet::new();
        let mut matched = Vec::new();
        // Track the "closest" failure for a precise deny reason:
        // later outcomes in this ordering indicate the request got
        // further through the checks.
        let mut best_failure = DenyReason::NoMatchingPolicy;
        let mut best_rank = 0u8;
        for policy in candidates {
            match matches(policy, request, actors, now) {
                MatchOutcome::Match => {
                    allowed.extend(policy.fields.iter().cloned());
                    matched.push(policy.id);
                }
                failure => {
                    let (rank, reason) = match failure {
                        MatchOutcome::WrongEventType | MatchOutcome::Revoked => {
                            (1, DenyReason::NoMatchingPolicy)
                        }
                        MatchOutcome::WrongActor => (2, DenyReason::NoMatchingPolicy),
                        MatchOutcome::PurposeNotAllowed => (3, DenyReason::PurposeNotAllowed),
                        MatchOutcome::OutsideValidity => (4, DenyReason::PolicyExpired),
                        MatchOutcome::Match => unreachable!(),
                    };
                    if rank > best_rank {
                        best_rank = rank;
                        best_failure = reason;
                    }
                }
            }
        }
        if matched.is_empty() {
            Decision::Deny(best_failure)
        } else {
            Decision::Permit {
                allowed_fields: allowed,
                matched_policies: matched,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ValidityWindow;
    use css_types::{Actor, ActorId, GlobalEventId, Purpose, RequestId};

    fn registry() -> ActorRegistry {
        let mut reg = ActorRegistry::new();
        reg.register(Actor::organization(ActorId(1), "Hospital"))
            .unwrap();
        reg.register(Actor::unit(ActorId(2), "Laboratory", ActorId(1)))
            .unwrap();
        reg.register(Actor::organization(ActorId(3), "SocialWelfare"))
            .unwrap();
        reg
    }

    fn policy(
        id: u64,
        actor: ActorId,
        ty: &str,
        purpose: Purpose,
        fields: &[&str],
    ) -> PrivacyPolicy {
        PrivacyPolicy::new(
            PolicyId(id),
            ActorId(9),
            actor,
            EventTypeId::v1(ty),
            [purpose],
            fields.iter().map(|s| s.to_string()),
        )
    }

    fn request(actor: ActorId, ty: &str, purpose: Purpose) -> DetailRequest {
        DetailRequest::new(
            RequestId(1),
            actor,
            EventTypeId::v1(ty),
            GlobalEventId(1),
            purpose,
        )
    }

    #[test]
    fn deny_by_default_on_empty_pdp() {
        let pdp = PolicyDecisionPoint::new();
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(d, Decision::Deny(DenyReason::NoMatchingPolicy));
    }

    #[test]
    fn single_match_permits_with_its_fields() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a", "b"],
        ));
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        match d {
            Decision::Permit {
                allowed_fields,
                matched_policies,
            } => {
                assert_eq!(allowed_fields.len(), 2);
                assert_eq!(matched_policies, vec![PolicyId(1)]);
            }
            other => panic!("expected permit, got {other:?}"),
        }
    }

    #[test]
    fn multiple_matches_union_fields() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        pdp.install(policy(
            2,
            ActorId(2),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["b"],
        ));
        // Request from the Laboratory: both the hospital-level and the
        // lab-level grant apply.
        let d = pdp.evaluate(
            &request(ActorId(2), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        let fields = d.allowed_fields().unwrap();
        assert!(fields.contains("a") && fields.contains("b"));
    }

    #[test]
    fn deny_reason_prefers_purpose_over_no_match() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::Administration,
            &["a"],
        ));
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::StatisticalAnalysis),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(d, Decision::Deny(DenyReason::PurposeNotAllowed));
    }

    #[test]
    fn deny_reason_expired() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(
            policy(
                1,
                ActorId(1),
                "blood-test",
                Purpose::HealthcareTreatment,
                &["a"],
            )
            .valid(ValidityWindow::until(Timestamp(10))),
        );
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(11),
        );
        assert_eq!(d, Decision::Deny(DenyReason::PolicyExpired));
    }

    #[test]
    fn revoke_turns_permit_into_deny() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        let r = request(ActorId(1), "blood-test", Purpose::HealthcareTreatment);
        assert!(pdp.evaluate(&r, &registry(), Timestamp(0)).is_permit());
        assert!(pdp.revoke(PolicyId(1)));
        assert!(!pdp.evaluate(&r, &registry(), Timestamp(0)).is_permit());
        // Still installed (audit), just inert.
        assert_eq!(pdp.len(), 1);
    }

    #[test]
    fn install_replaces_same_id() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["b"],
        ));
        assert_eq!(pdp.len(), 1);
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        let fields = d.allowed_fields().unwrap();
        assert!(fields.contains("b") && !fields.contains("a"));
    }

    #[test]
    fn remove_policy() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        assert!(pdp.remove(PolicyId(1)));
        assert!(!pdp.remove(PolicyId(1)));
        assert!(pdp.is_empty());
    }

    #[test]
    fn unrelated_consumer_denied_even_with_policies_present() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        let d = pdp.evaluate(
            &request(ActorId(3), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(d, Decision::Deny(DenyReason::NoMatchingPolicy));
    }
}

#[cfg(test)]
mod validity_tests {
    use super::*;
    use crate::model::{PrivacyPolicy, ValidityWindow};
    use css_types::{Actor, ActorId, EventTypeId, GlobalEventId, Purpose, RequestId};

    #[test]
    fn valid_policy_wins_even_when_siblings_expired() {
        let mut actors = ActorRegistry::new();
        actors
            .register(Actor::organization(ActorId(1), "C"))
            .unwrap();
        let mut pdp = PolicyDecisionPoint::new();
        let base = |id: u64, fields: &[&str]| {
            PrivacyPolicy::new(
                PolicyId(id),
                ActorId(9),
                ActorId(1),
                EventTypeId::v1("e"),
                [Purpose::Audit],
                fields.iter().map(|s| s.to_string()),
            )
        };
        pdp.install(base(1, &["old"]).valid(ValidityWindow::until(Timestamp(10))));
        pdp.install(base(2, &["current"]));
        let request = DetailRequest::new(
            RequestId(1),
            ActorId(1),
            EventTypeId::v1("e"),
            GlobalEventId(1),
            Purpose::Audit,
        );
        match pdp.evaluate(&request, &actors, Timestamp(100)) {
            Decision::Permit {
                allowed_fields,
                matched_policies,
            } => {
                // Only the in-window policy contributes fields.
                assert!(allowed_fields.contains("current"));
                assert!(!allowed_fields.contains("old"));
                assert_eq!(matched_policies, vec![PolicyId(2)]);
            }
            other => panic!("expected permit, got {other:?}"),
        }
    }
}
