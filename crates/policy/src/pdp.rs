//! The Policy Decision Point.
//!
//! The PDP holds the policies a producer has defined and evaluates
//! requests with **deny-by-default** semantics: "unless permitted by
//! some privacy policy an Event Details cannot be accessed by any
//! subject" (Section 5.1).
//!
//! When several policies match (e.g. one granted to the organization and
//! one to the department), the permit carries the **union** of their
//! field sets — each matching policy independently authorizes its own
//! fields, so the combined obligation is their union. This is XACML's
//! permit-overrides combining algorithm restricted to the paper's
//! read-only rules.

use std::collections::HashMap;
use std::fmt;

use css_types::{ActorId, ActorRegistry, DenyReason, EventTypeId, PolicyId, Purpose, Timestamp};

use crate::cache::{CacheStats, DecisionCache, Generation, StabilityInterval};
use crate::decision::Decision;
use crate::matching::{matches, MatchOutcome};
use crate::model::PrivacyPolicy;
use crate::request::DetailRequest;

/// In-memory decision point over an indexed policy set, with a
/// generation-stamped decision cache over the evaluation paths.
#[derive(Default)]
pub struct PolicyDecisionPoint {
    by_type: HashMap<EventTypeId, Vec<PrivacyPolicy>>,
    /// `id → event type` so removal and revocation resolve their bucket
    /// in O(1) instead of scanning every bucket.
    by_id: HashMap<PolicyId, EventTypeId>,
    /// Bumped on every policy mutation; stale cache entries miss.
    generation: Generation,
    eval_cache: DecisionCache<(ActorId, EventTypeId, Purpose), Decision>,
    auth_cache: DecisionCache<(ActorId, EventTypeId), bool>,
}

impl fmt::Debug for PolicyDecisionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyDecisionPoint")
            .field("policies", &self.by_id.len())
            .field("event_types", &self.by_type.len())
            .field("generation", &self.generation.current())
            .finish()
    }
}

impl PolicyDecisionPoint {
    /// An empty PDP (every request denies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidate every cached decision (policy set changed, or an
    /// external input of matching — e.g. the actor hierarchy — did).
    pub fn invalidate_cache(&self) {
        self.generation.bump();
        self.eval_cache.clear();
        self.auth_cache.clear();
    }

    /// The current cache generation (bumped on every mutation).
    pub fn cache_generation(&self) -> u64 {
        self.generation.current()
    }

    /// Hit/miss totals across both decision caches.
    pub fn cache_stats(&self) -> CacheStats {
        let e = self.eval_cache.stats();
        let a = self.auth_cache.stats();
        CacheStats {
            hits: e.hits + a.hits,
            misses: e.misses + a.misses,
        }
    }

    /// Load a policy. Replaces any existing policy with the same id.
    pub fn install(&mut self, policy: PrivacyPolicy) {
        self.remove(policy.id);
        self.by_id.insert(policy.id, policy.event_type.clone());
        self.by_type
            .entry(policy.event_type.clone())
            .or_default()
            .push(policy);
        self.invalidate_cache();
    }

    /// Remove a policy by id. Returns whether it was present.
    pub fn remove(&mut self, id: PolicyId) -> bool {
        let Some(event_type) = self.by_id.remove(&id) else {
            return false;
        };
        // by_id and by_type are maintained in lockstep; if the bucket or
        // its entry is somehow already gone, the policy is removed either
        // way — degrade gracefully rather than panic mid-request.
        if let Some(bucket) = self.by_type.get_mut(&event_type) {
            if let Some(pos) = bucket.iter().position(|p| p.id == id) {
                bucket.remove(pos);
            }
            // Drop emptied buckets so churn doesn't grow the map forever.
            if bucket.is_empty() {
                self.by_type.remove(&event_type);
            }
        }
        self.invalidate_cache();
        true
    }

    /// Mark a policy revoked (kept for audit, never matches again).
    pub fn revoke(&mut self, id: PolicyId) -> bool {
        let Some(event_type) = self.by_id.get(&id) else {
            return false;
        };
        let revoked = self
            .by_type
            .get_mut(event_type)
            .and_then(|bucket| bucket.iter_mut().find(|p| p.id == id))
            .map(|p| p.revoke())
            .is_some();
        if revoked {
            self.invalidate_cache();
        }
        revoked
    }

    /// Number of installed policies (including revoked ones).
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no policies are installed.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// All policies for an event type.
    pub fn policies_for(&self, event_type: &EventTypeId) -> &[PrivacyPolicy] {
        self.by_type
            .get(event_type)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate over every installed policy.
    pub fn iter(&self) -> impl Iterator<Item = &PrivacyPolicy> {
        self.by_type.values().flatten()
    }

    /// Evaluate a request (Algorithm 1, steps 2–3), consulting the
    /// decision cache first.
    ///
    /// Returns `Permit` with the union of allowed fields over all
    /// matching policies, or the most precise deny reason observed.
    pub fn evaluate(
        &self,
        request: &DetailRequest,
        actors: &ActorRegistry,
        now: Timestamp,
    ) -> Decision {
        self.evaluate_traced(request, actors, now).0
    }

    /// Like [`PolicyDecisionPoint::evaluate`], also reporting whether
    /// the decision was answered from the cache (for telemetry).
    pub fn evaluate_traced(
        &self,
        request: &DetailRequest,
        actors: &ActorRegistry,
        now: Timestamp,
    ) -> (Decision, bool) {
        let generation = self.generation.current();
        let key = (
            request.actor,
            request.event_type.clone(),
            request.purpose.clone(),
        );
        if let Some(decision) = self.eval_cache.get(&key, generation, now) {
            return (decision, true);
        }
        let decision = self.evaluate_uncached(request, actors, now);
        let stable = StabilityInterval::around(now, self.policies_for(&request.event_type));
        self.eval_cache
            .put(key, generation, stable, decision.clone());
        (decision, false)
    }

    /// Whether `consumer` (or an ancestor organization) holds any live,
    /// in-window policy over `event_type` — the notification-routing
    /// authorization check, cached per `(consumer, event type)`.
    pub fn is_authorized(
        &self,
        consumer: ActorId,
        event_type: &EventTypeId,
        actors: &ActorRegistry,
        now: Timestamp,
    ) -> bool {
        let generation = self.generation.current();
        let key = (consumer, event_type.clone());
        if let Some(authorized) = self.auth_cache.get(&key, generation, now) {
            return authorized;
        }
        let candidates = self.policies_for(event_type);
        let authorized = candidates.iter().any(|p| {
            !p.revoked
                && p.validity.contains(now)
                && actors.is_same_or_descendant(consumer, p.actor)
        });
        let stable = StabilityInterval::around(now, candidates);
        self.auth_cache.put(key, generation, stable, authorized);
        authorized
    }

    /// Evaluate a request without touching the cache (the raw
    /// Algorithm-1 matching walk; benchmark baseline).
    pub fn evaluate_uncached(
        &self,
        request: &DetailRequest,
        actors: &ActorRegistry,
        now: Timestamp,
    ) -> Decision {
        let candidates = self.policies_for(&request.event_type);
        let mut allowed = std::collections::BTreeSet::new();
        let mut matched = Vec::new();
        // Track the "closest" failure for a precise deny reason:
        // later outcomes in this ordering indicate the request got
        // further through the checks.
        let mut best_failure = DenyReason::NoMatchingPolicy;
        let mut best_rank = 0u8;
        for policy in candidates {
            let (rank, reason) = match matches(policy, request, actors, now) {
                MatchOutcome::Match => {
                    allowed.extend(policy.fields.iter().cloned());
                    matched.push(policy.id);
                    continue;
                }
                MatchOutcome::WrongEventType | MatchOutcome::Revoked => {
                    (1, DenyReason::NoMatchingPolicy)
                }
                MatchOutcome::WrongActor => (2, DenyReason::NoMatchingPolicy),
                MatchOutcome::PurposeNotAllowed => (3, DenyReason::PurposeNotAllowed),
                MatchOutcome::OutsideValidity => (4, DenyReason::PolicyExpired),
            };
            if rank > best_rank {
                best_rank = rank;
                best_failure = reason;
            }
        }
        if matched.is_empty() {
            Decision::Deny(best_failure)
        } else {
            Decision::Permit {
                allowed_fields: allowed,
                matched_policies: matched,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ValidityWindow;
    use css_types::{Actor, ActorId, GlobalEventId, Purpose, RequestId};

    fn registry() -> ActorRegistry {
        let mut reg = ActorRegistry::new();
        reg.register(Actor::organization(ActorId(1), "Hospital"))
            .unwrap();
        reg.register(Actor::unit(ActorId(2), "Laboratory", ActorId(1)))
            .unwrap();
        reg.register(Actor::organization(ActorId(3), "SocialWelfare"))
            .unwrap();
        reg
    }

    fn policy(
        id: u64,
        actor: ActorId,
        ty: &str,
        purpose: Purpose,
        fields: &[&str],
    ) -> PrivacyPolicy {
        PrivacyPolicy::new(
            PolicyId(id),
            ActorId(9),
            actor,
            EventTypeId::v1(ty),
            [purpose],
            fields.iter().map(|s| s.to_string()),
        )
    }

    fn request(actor: ActorId, ty: &str, purpose: Purpose) -> DetailRequest {
        DetailRequest::new(
            RequestId(1),
            actor,
            EventTypeId::v1(ty),
            GlobalEventId(1),
            purpose,
        )
    }

    #[test]
    fn deny_by_default_on_empty_pdp() {
        let pdp = PolicyDecisionPoint::new();
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(d, Decision::Deny(DenyReason::NoMatchingPolicy));
    }

    #[test]
    fn single_match_permits_with_its_fields() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a", "b"],
        ));
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        match d {
            Decision::Permit {
                allowed_fields,
                matched_policies,
            } => {
                assert_eq!(allowed_fields.len(), 2);
                assert_eq!(matched_policies, vec![PolicyId(1)]);
            }
            other => panic!("expected permit, got {other:?}"),
        }
    }

    #[test]
    fn multiple_matches_union_fields() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        pdp.install(policy(
            2,
            ActorId(2),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["b"],
        ));
        // Request from the Laboratory: both the hospital-level and the
        // lab-level grant apply.
        let d = pdp.evaluate(
            &request(ActorId(2), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        let fields = d.allowed_fields().unwrap();
        assert!(fields.contains("a") && fields.contains("b"));
    }

    #[test]
    fn deny_reason_prefers_purpose_over_no_match() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::Administration,
            &["a"],
        ));
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::StatisticalAnalysis),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(d, Decision::Deny(DenyReason::PurposeNotAllowed));
    }

    #[test]
    fn deny_reason_expired() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(
            policy(
                1,
                ActorId(1),
                "blood-test",
                Purpose::HealthcareTreatment,
                &["a"],
            )
            .valid(ValidityWindow::until(Timestamp(10))),
        );
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(11),
        );
        assert_eq!(d, Decision::Deny(DenyReason::PolicyExpired));
    }

    #[test]
    fn revoke_turns_permit_into_deny() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        let r = request(ActorId(1), "blood-test", Purpose::HealthcareTreatment);
        assert!(pdp.evaluate(&r, &registry(), Timestamp(0)).is_permit());
        assert!(pdp.revoke(PolicyId(1)));
        assert!(!pdp.evaluate(&r, &registry(), Timestamp(0)).is_permit());
        // Still installed (audit), just inert.
        assert_eq!(pdp.len(), 1);
    }

    #[test]
    fn install_replaces_same_id() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["b"],
        ));
        assert_eq!(pdp.len(), 1);
        let d = pdp.evaluate(
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        let fields = d.allowed_fields().unwrap();
        assert!(fields.contains("b") && !fields.contains("a"));
    }

    #[test]
    fn remove_policy() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        assert!(pdp.remove(PolicyId(1)));
        assert!(!pdp.remove(PolicyId(1)));
        assert!(pdp.is_empty());
    }

    #[test]
    fn unrelated_consumer_denied_even_with_policies_present() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(
            1,
            ActorId(1),
            "blood-test",
            Purpose::HealthcareTreatment,
            &["a"],
        ));
        let d = pdp.evaluate(
            &request(ActorId(3), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(d, Decision::Deny(DenyReason::NoMatchingPolicy));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::model::ValidityWindow;
    use css_types::{Actor, ActorId, GlobalEventId, Purpose, RequestId};

    fn registry() -> ActorRegistry {
        let mut reg = ActorRegistry::new();
        reg.register(Actor::organization(ActorId(1), "Hospital"))
            .unwrap();
        reg
    }

    fn policy(id: u64) -> PrivacyPolicy {
        PrivacyPolicy::new(
            PolicyId(id),
            ActorId(9),
            ActorId(1),
            EventTypeId::v1("blood-test"),
            [Purpose::HealthcareTreatment],
            ["a".to_string()],
        )
    }

    fn request() -> DetailRequest {
        DetailRequest::new(
            RequestId(1),
            ActorId(1),
            EventTypeId::v1("blood-test"),
            GlobalEventId(1),
            Purpose::HealthcareTreatment,
        )
    }

    #[test]
    fn repeat_evaluation_hits_the_cache() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(1));
        let actors = registry();
        let (d1, hit1) = pdp.evaluate_traced(&request(), &actors, Timestamp(5));
        let (d2, hit2) = pdp.evaluate_traced(&request(), &actors, Timestamp(6));
        assert!(!hit1, "first evaluation computes");
        assert!(hit2, "second evaluation is served from cache");
        assert_eq!(d1, d2);
        let stats = pdp.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn revocation_denies_on_the_very_next_request() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(1));
        let actors = registry();
        // Warm the cache with a permit.
        assert!(pdp.evaluate(&request(), &actors, Timestamp(0)).is_permit());
        assert!(pdp.evaluate(&request(), &actors, Timestamp(0)).is_permit());
        assert!(pdp.revoke(PolicyId(1)));
        // No propagation window: the generation bump invalidates the
        // cached permit immediately.
        let (d, hit) = pdp.evaluate_traced(&request(), &actors, Timestamp(0));
        assert!(!hit);
        assert_eq!(d, Decision::Deny(DenyReason::NoMatchingPolicy));
    }

    #[test]
    fn install_invalidates_cached_deny() {
        let mut pdp = PolicyDecisionPoint::new();
        let actors = registry();
        assert!(!pdp.evaluate(&request(), &actors, Timestamp(0)).is_permit());
        pdp.install(policy(1));
        assert!(pdp.evaluate(&request(), &actors, Timestamp(0)).is_permit());
    }

    #[test]
    fn cached_permit_expires_at_validity_boundary() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(1).valid(ValidityWindow::until(Timestamp(100))));
        let actors = registry();
        assert!(pdp.evaluate(&request(), &actors, Timestamp(50)).is_permit());
        // Inside the stability interval: cached permit still valid.
        let (d, hit) = pdp.evaluate_traced(&request(), &actors, Timestamp(100));
        assert!(hit && d.is_permit());
        // Past the boundary: the cached entry must NOT answer.
        let (d, hit) = pdp.evaluate_traced(&request(), &actors, Timestamp(101));
        assert!(!hit);
        assert_eq!(d, Decision::Deny(DenyReason::PolicyExpired));
    }

    #[test]
    fn authorization_check_is_cached_and_invalidated() {
        let mut pdp = PolicyDecisionPoint::new();
        pdp.install(policy(1));
        let actors = registry();
        let ty = EventTypeId::v1("blood-test");
        assert!(pdp.is_authorized(ActorId(1), &ty, &actors, Timestamp(0)));
        assert!(pdp.is_authorized(ActorId(1), &ty, &actors, Timestamp(0)));
        assert!(!pdp.is_authorized(ActorId(7), &ty, &actors, Timestamp(0)));
        pdp.revoke(PolicyId(1));
        assert!(!pdp.is_authorized(ActorId(1), &ty, &actors, Timestamp(0)));
    }

    #[test]
    fn generation_bump_is_visible_to_concurrent_readers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Arc, RwLock};

        // Readers evaluate through a shared lock while the writer
        // revokes; after the revocation no reader may observe a permit.
        let pdp = Arc::new(RwLock::new(PolicyDecisionPoint::new()));
        pdp.write().unwrap().install(policy(1));
        let actors = Arc::new(registry());
        let revoked = Arc::new(AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let pdp = Arc::clone(&pdp);
                let actors = Arc::clone(&actors);
                let revoked = Arc::clone(&revoked);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let seen_revoked = revoked.load(Ordering::SeqCst);
                        let d = pdp
                            .read()
                            .unwrap()
                            .evaluate(&request(), &actors, Timestamp(0));
                        // If the revocation happened-before this read,
                        // a cached permit would be a correctness bug.
                        if seen_revoked {
                            assert!(!d.is_permit(), "stale cached permit after revoke");
                        }
                    }
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(2));
        pdp.write().unwrap().revoke(PolicyId(1));
        revoked.store(true, Ordering::SeqCst);

        for r in readers {
            r.join().unwrap();
        }
        assert!(!pdp
            .read()
            .unwrap()
            .evaluate(&request(), &actors, Timestamp(0))
            .is_permit());
    }
}

#[cfg(test)]
mod validity_tests {
    use super::*;
    use crate::model::{PrivacyPolicy, ValidityWindow};
    use css_types::{Actor, ActorId, EventTypeId, GlobalEventId, Purpose, RequestId};

    #[test]
    fn valid_policy_wins_even_when_siblings_expired() {
        let mut actors = ActorRegistry::new();
        actors
            .register(Actor::organization(ActorId(1), "C"))
            .unwrap();
        let mut pdp = PolicyDecisionPoint::new();
        let base = |id: u64, fields: &[&str]| {
            PrivacyPolicy::new(
                PolicyId(id),
                ActorId(9),
                ActorId(1),
                EventTypeId::v1("e"),
                [Purpose::Audit],
                fields.iter().map(|s| s.to_string()),
            )
        };
        pdp.install(base(1, &["old"]).valid(ValidityWindow::until(Timestamp(10))));
        pdp.install(base(2, &["current"]));
        let request = DetailRequest::new(
            RequestId(1),
            ActorId(1),
            EventTypeId::v1("e"),
            GlobalEventId(1),
            Purpose::Audit,
        );
        match pdp.evaluate(&request, &actors, Timestamp(100)) {
            Decision::Permit {
                allowed_fields,
                matched_policies,
            } => {
                // Only the in-window policy contributes fields.
                assert!(allowed_fields.contains("current"));
                assert!(!allowed_fields.contains("old"));
                assert_eq!(matched_policies, vec![PolicyId(2)]);
            }
            other => panic!("expected permit, got {other:?}"),
        }
    }
}
