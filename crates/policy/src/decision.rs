//! Authorization decisions produced by the PDP.

use std::collections::BTreeSet;

use css_types::{DenyReason, PolicyId};

/// The outcome of evaluating a detail request against the policy set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The request is authorized. Carries the obligation: only the
    /// fields in `allowed_fields` may be released (the producer applies
    /// this in Algorithm 2).
    Permit {
        /// Union of `F` over every matching policy.
        allowed_fields: BTreeSet<String>,
        /// The policies that granted access, for the audit record.
        matched_policies: Vec<PolicyId>,
    },
    /// The request is denied. `deny-by-default`: this is also the
    /// outcome when no policy exists at all.
    Deny(DenyReason),
}

impl Decision {
    /// Whether this is a permit.
    pub fn is_permit(&self) -> bool {
        matches!(self, Decision::Permit { .. })
    }

    /// The allowed fields of a permit, or `None` for a deny.
    pub fn allowed_fields(&self) -> Option<&BTreeSet<String>> {
        match self {
            Decision::Permit { allowed_fields, .. } => Some(allowed_fields),
            Decision::Deny(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let permit = Decision::Permit {
            allowed_fields: ["a".to_string()].into_iter().collect(),
            matched_policies: vec![PolicyId(1)],
        };
        assert!(permit.is_permit());
        assert_eq!(permit.allowed_fields().unwrap().len(), 1);
        let deny = Decision::Deny(DenyReason::NoMatchingPolicy);
        assert!(!deny.is_permit());
        assert!(deny.allowed_fields().is_none());
    }
}
