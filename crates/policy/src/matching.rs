//! Policy matching (Definition 3).
//!
//! `p` is a matching policy for `r` iff `e_j = τ_e ∧ A_r = A ∧ S_r ∈ S`.
//! Two deployment realities extend the literal definition:
//!
//! - the actor test uses the organizational hierarchy (Section 5.1): a
//!   request from the `Laboratory` is covered by a policy granted to
//!   `Hospital S. Maria`;
//! - policies may carry a validity window (Fig. 7), and revoked
//!   policies never match.
//!
//! The outcome is reported per-dimension so the PDP can map a failed
//! match to the most precise deny reason for the audit trail.

use css_types::{ActorRegistry, Timestamp};

use crate::model::PrivacyPolicy;
use crate::request::DetailRequest;

/// Why (or that) a policy matched a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// All conditions hold — the policy authorizes the request.
    Match,
    /// The event type differs (`e_j ≠ τ_e`).
    WrongEventType,
    /// The requesting actor is not the granted actor nor below it.
    WrongActor,
    /// The stated purpose is not in `S`.
    PurposeNotAllowed,
    /// The request falls outside the validity window.
    OutsideValidity,
    /// The policy has been revoked by its producer.
    Revoked,
}

impl MatchOutcome {
    /// Whether this outcome authorizes the request.
    pub fn is_match(self) -> bool {
        self == MatchOutcome::Match
    }
}

/// Evaluate Definition 3 for one policy and one request at time `now`.
///
/// Checks run from cheapest to most specific; the first failing
/// dimension is reported.
pub fn matches(
    policy: &PrivacyPolicy,
    request: &DetailRequest,
    actors: &ActorRegistry,
    now: Timestamp,
) -> MatchOutcome {
    if policy.revoked {
        return MatchOutcome::Revoked;
    }
    if policy.event_type != request.event_type {
        return MatchOutcome::WrongEventType;
    }
    if !actors.is_same_or_descendant(request.actor, policy.actor) {
        return MatchOutcome::WrongActor;
    }
    if !policy.purposes.contains(&request.purpose) {
        return MatchOutcome::PurposeNotAllowed;
    }
    if !policy.validity.contains(now) {
        return MatchOutcome::OutsideValidity;
    }
    MatchOutcome::Match
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ValidityWindow;
    use css_types::{Actor, ActorId, EventTypeId, GlobalEventId, PolicyId, Purpose, RequestId};

    fn registry() -> ActorRegistry {
        let mut reg = ActorRegistry::new();
        reg.register(Actor::organization(ActorId(1), "Hospital"))
            .unwrap();
        reg.register(Actor::unit(ActorId(2), "Laboratory", ActorId(1)))
            .unwrap();
        reg.register(Actor::organization(ActorId(3), "Municipality"))
            .unwrap();
        reg
    }

    fn policy() -> PrivacyPolicy {
        PrivacyPolicy::new(
            PolicyId(1),
            ActorId(9),
            ActorId(1), // granted to the Hospital
            EventTypeId::v1("blood-test"),
            [Purpose::HealthcareTreatment, Purpose::Administration],
            ["PatientId".to_string()],
        )
    }

    fn request(actor: ActorId, ty: &str, purpose: Purpose) -> DetailRequest {
        DetailRequest::new(
            RequestId(1),
            actor,
            EventTypeId::v1(ty),
            GlobalEventId(1),
            purpose,
        )
    }

    #[test]
    fn exact_match() {
        let out = matches(
            &policy(),
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert!(out.is_match());
    }

    #[test]
    fn descendant_actor_matches() {
        let out = matches(
            &policy(),
            &request(ActorId(2), "blood-test", Purpose::Administration),
            &registry(),
            Timestamp(0),
        );
        assert!(out.is_match());
    }

    #[test]
    fn unrelated_actor_fails() {
        let out = matches(
            &policy(),
            &request(ActorId(3), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(out, MatchOutcome::WrongActor);
    }

    #[test]
    fn wrong_event_type_fails() {
        let out = matches(
            &policy(),
            &request(ActorId(1), "urine-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(out, MatchOutcome::WrongEventType);
    }

    #[test]
    fn wrong_purpose_fails() {
        let out = matches(
            &policy(),
            &request(ActorId(1), "blood-test", Purpose::StatisticalAnalysis),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(out, MatchOutcome::PurposeNotAllowed);
    }

    #[test]
    fn event_type_version_is_significant() {
        let mut p = policy();
        p.event_type = EventTypeId::new("blood-test", 2);
        let out = matches(
            &p,
            &request(ActorId(1), "blood-test", Purpose::HealthcareTreatment),
            &registry(),
            Timestamp(0),
        );
        assert_eq!(out, MatchOutcome::WrongEventType);
    }

    #[test]
    fn expired_policy_fails() {
        let p = policy().valid(ValidityWindow::until(Timestamp(1_000)));
        let r = request(ActorId(1), "blood-test", Purpose::HealthcareTreatment);
        assert!(matches(&p, &r, &registry(), Timestamp(1_000)).is_match());
        assert_eq!(
            matches(&p, &r, &registry(), Timestamp(1_001)),
            MatchOutcome::OutsideValidity
        );
    }

    #[test]
    fn not_yet_valid_policy_fails() {
        let p = policy().valid(ValidityWindow::between(Timestamp(500), Timestamp(1_000)));
        let r = request(ActorId(1), "blood-test", Purpose::HealthcareTreatment);
        assert_eq!(
            matches(&p, &r, &registry(), Timestamp(499)),
            MatchOutcome::OutsideValidity
        );
    }

    #[test]
    fn revoked_policy_never_matches() {
        let mut p = policy();
        p.revoke();
        let r = request(ActorId(1), "blood-test", Purpose::HealthcareTreatment);
        assert_eq!(
            matches(&p, &r, &registry(), Timestamp(0)),
            MatchOutcome::Revoked
        );
    }

    #[test]
    fn grant_does_not_flow_upward() {
        // Policy granted to the Laboratory must not cover the Hospital.
        let mut p = policy();
        p.actor = ActorId(2);
        let r = request(ActorId(1), "blood-test", Purpose::HealthcareTreatment);
        assert_eq!(
            matches(&p, &r, &registry(), Timestamp(0)),
            MatchOutcome::WrongActor
        );
    }
}
