//! The privacy policy model (Definition 2).

use std::collections::BTreeSet;

use css_types::{ActorId, EventTypeId, PolicyId, Purpose, Timestamp};

/// The time window a policy is applicable in.
///
/// The elicitation tool lets data owners bound a rule in time — "this
/// option is particularly useful when private companies are involved in
/// the care process and should access the events of their customers
/// only for the duration of their contract" (Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidityWindow {
    /// First instant the policy applies (inclusive). `None` = unbounded.
    pub not_before: Option<Timestamp>,
    /// Last instant the policy applies (inclusive). `None` = unbounded.
    pub not_after: Option<Timestamp>,
}

impl ValidityWindow {
    /// A window with no bounds (always valid).
    pub const ALWAYS: ValidityWindow = ValidityWindow {
        not_before: None,
        not_after: None,
    };

    /// A window valid until (and including) `t`.
    pub fn until(t: Timestamp) -> Self {
        ValidityWindow {
            not_before: None,
            not_after: Some(t),
        }
    }

    /// A window valid from `from` to `to`, inclusive.
    pub fn between(from: Timestamp, to: Timestamp) -> Self {
        ValidityWindow {
            not_before: Some(from),
            not_after: Some(to),
        }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: Timestamp) -> bool {
        self.not_before.is_none_or(|t| now >= t) && self.not_after.is_none_or(|t| now <= t)
    }
}

/// A privacy policy (Definition 2): actor `A` may read fields `F` of
/// events of type `e_j` for any purpose in `S`.
///
/// Policies are authored by the data *producer* (owner of the data) and
/// stored centrally at the data controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivacyPolicy {
    /// Repository identifier.
    pub id: PolicyId,
    /// The producer (data owner) that authored the policy.
    pub producer: ActorId,
    /// `A`: the consumer actor granted access. Per Section 5.1 this may
    /// be a top-level organization or a unit/role inside one; the grant
    /// covers the actor and everything below it.
    pub actor: ActorId,
    /// `e_j`: the event-details type the policy protects.
    pub event_type: EventTypeId,
    /// `S`: allowed purposes of use.
    pub purposes: BTreeSet<Purpose>,
    /// `F ⊆ e_j`: field names that may be released.
    pub fields: BTreeSet<String>,
    /// Applicability window.
    pub validity: ValidityWindow,
    /// Short label shown in the Privacy Rules Manager dashboard.
    pub label: String,
    /// Free-form description.
    pub description: String,
    /// Whether the producer has revoked the policy. Revoked policies are
    /// kept (for audit) but never match.
    pub revoked: bool,
}

impl PrivacyPolicy {
    /// Construct a policy with the mandatory parts of Definition 2.
    pub fn new(
        id: PolicyId,
        producer: ActorId,
        actor: ActorId,
        event_type: EventTypeId,
        purposes: impl IntoIterator<Item = Purpose>,
        fields: impl IntoIterator<Item = String>,
    ) -> Self {
        PrivacyPolicy {
            id,
            producer,
            actor,
            event_type,
            purposes: purposes.into_iter().collect(),
            fields: fields.into_iter().collect(),
            validity: ValidityWindow::ALWAYS,
            label: String::new(),
            description: String::new(),
            revoked: false,
        }
    }

    /// Builder: set the validity window.
    pub fn valid(mut self, window: ValidityWindow) -> Self {
        self.validity = window;
        self
    }

    /// Builder: set label and description.
    pub fn labeled(mut self, label: impl Into<String>, description: impl Into<String>) -> Self {
        self.label = label.into();
        self.description = description.into();
        self
    }

    /// Mark the policy revoked.
    pub fn revoke(&mut self) {
        self.revoked = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_window_contains() {
        let w = ValidityWindow::between(Timestamp(100), Timestamp(200));
        assert!(!w.contains(Timestamp(99)));
        assert!(w.contains(Timestamp(100)));
        assert!(w.contains(Timestamp(200)));
        assert!(!w.contains(Timestamp(201)));
        assert!(ValidityWindow::ALWAYS.contains(Timestamp(0)));
        assert!(ValidityWindow::until(Timestamp(50)).contains(Timestamp(50)));
        assert!(!ValidityWindow::until(Timestamp(50)).contains(Timestamp(51)));
    }

    #[test]
    fn builder_defaults() {
        let p = PrivacyPolicy::new(
            PolicyId(1),
            ActorId(1),
            ActorId(2),
            EventTypeId::v1("autonomy-test"),
            [Purpose::StatisticalAnalysis],
            ["age".to_string(), "sex".to_string()],
        );
        assert!(!p.revoked);
        assert_eq!(p.validity, ValidityWindow::ALWAYS);
        assert_eq!(p.fields.len(), 2);
    }

    #[test]
    fn paper_example_policy() {
        // p = {National Governance, autonomy test, statistical analysis,
        //      <age, sex, autonomy_score>}
        let p = PrivacyPolicy::new(
            PolicyId(1),
            ActorId(10),
            ActorId(99), // National Governance
            EventTypeId::v1("autonomy-test"),
            [Purpose::StatisticalAnalysis],
            ["age", "sex", "autonomy_score"].map(String::from),
        )
        .labeled("stats", "elderly needs analysis");
        assert!(p.purposes.contains(&Purpose::StatisticalAnalysis));
        assert!(p.fields.contains("autonomy_score"));
        assert_eq!(p.label, "stats");
    }
}
