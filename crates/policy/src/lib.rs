//! Event-based privacy policies — the paper's core contribution.
//!
//! Section 5 defines the model this crate implements:
//!
//! - **Definition 2**: a privacy policy `p = {A, e_j, S, F}` names an
//!   actor `A`, an event-details type `e_j`, a set of purposes `S`, and
//!   the subset of fields `F ⊆ e_j` that may be released —
//!   [`PrivacyPolicy`].
//! - **Definition 3**: a policy *matches* a request `r = {A_r, τ_e, S_r}`
//!   iff `e_j = τ_e ∧ A_r = A ∧ S_r ∈ S` — [`matching`], extended with
//!   the organizational hierarchy of Section 5.1 (a policy for
//!   `Hospital S. Maria` covers its `Laboratory`) and the validity
//!   window of the elicitation tool (Fig. 7).
//! - **Definition 4** (privacy safety) lives with the event model:
//!   `css_event::EventDetails::is_privacy_safe`.
//! - The **deny-by-default** semantics: "unless permitted by some
//!   privacy policy an Event Details cannot be accessed by any subject"
//!   — [`pdp::PolicyDecisionPoint`].
//!
//! Policies serialize to the XACML subset of Fig. 8 ([`xacml`]) and are
//! persisted by the [`repository::PolicyRepository`], which is the
//! "certificated repository of the privacy policies" held by the data
//! controller.

pub mod cache;
pub mod decision;
pub mod matching;
pub mod model;
pub mod pdp;
pub mod repository;
pub mod request;
pub mod xacml;

pub use cache::CacheStats;
pub use decision::Decision;
pub use matching::{matches, MatchOutcome};
pub use model::{PrivacyPolicy, ValidityWindow};
pub use pdp::PolicyDecisionPoint;
pub use repository::PolicyRepository;
pub use request::DetailRequest;
