//! The elderly care pathway of Section 2, end to end.
//!
//! Run with: `cargo run --example home_care_pathway`
//!
//! A citizen is discharged from hospital; the social welfare department
//! assesses her autonomy; a telecare company and the municipality
//! deliver weeks of home care and meals. Events from four different
//! producers compose her "social and health profile", which the welfare
//! department reads from the events index — each institution seeing only
//! what its policies allow.

use css::prelude::*;
use css::sim::{run_pathway, Scenario, ScenarioConfig};

fn main() -> CssResult<()> {
    let scenario = Scenario::build(ScenarioConfig {
        persons: 5,
        family_doctors: 2,
        seed: 2010,
    })?;
    let person = scenario.persons[0].clone();
    println!("following the care pathway of {person}\n");

    // Run 4 weeks of the pathway: discharge, assessment, home care,
    // meals, telecare alarms.
    let report = run_pathway(&scenario, &person, 4, 42)?;
    println!(
        "{} events published by 4 institutions over {} simulated days",
        report.events.len(),
        report.span_days
    );

    // The welfare department composes the person's profile from the
    // events index (it is authorized for the social events).
    let welfare = scenario.platform.consumer(scenario.orgs.welfare)?;
    let profile = welfare.inquire_by_person(person.id)?;
    println!("\nsocial profile visible to the welfare department:");
    for n in &profile {
        println!(
            "  {}  {:24} from {}",
            n.occurred_at,
            n.event_type.to_string(),
            n.producer
        );
    }

    // The welfare department chases the details of the discharge — and
    // gets the care plan but NOT the diagnosis (field-level obligation).
    let discharge = profile
        .iter()
        .find(|n| n.event_type.code() == "hospital-discharge")
        .expect("pathway starts with a discharge");
    let response = welfare.request_details(discharge, Purpose::SocialAssistance)?;
    println!("\ndischarge details released to welfare:");
    for (field, value) in response.details.iter() {
        println!("  {field:14} = {:?}", value.render());
    }
    assert!(response.details.get("Diagnosis").unwrap().is_empty());
    assert!(!response.details.get("CarePlan").unwrap().is_empty());

    // The family doctor, instead, is authorized for the diagnosis.
    let doctor = scenario
        .platform
        .consumer(scenario.orgs.family_doctors[0])?;
    let seen = doctor.inquire_by_person(person.id)?;
    let discharge_for_doctor = seen
        .iter()
        .find(|n| n.event_type.code() == "hospital-discharge")
        .expect("doctor sees clinical events");
    let clinical = doctor.request_details(discharge_for_doctor, Purpose::HealthcareTreatment)?;
    println!(
        "\nfamily doctor sees the diagnosis: {:?}",
        clinical.details.get("Diagnosis").unwrap().render()
    );
    assert!(!clinical.details.get("Diagnosis").unwrap().is_empty());

    scenario.platform.verify_audit()?;
    println!("\naudit chain verified — every access above is on record");
    Ok(())
}
