//! Multi-institution process monitoring — the project's raison d'être.
//!
//! Run with: `cargo run --example process_monitoring`
//!
//! The province monitors the elderly-care pathway (discharge →
//! assessment within 7 days → home care within 14) across the whole
//! region. The monitor consumes **only notification messages** — no
//! sensitive payloads — which is exactly what the paper's two-phase
//! design makes possible: process visibility without data disclosure.

use css::monitor::{InstanceStatus, ProcessDefinition, ProcessMonitor};
use css::prelude::*;
use css::sim::{run_pathway, Scenario, ScenarioConfig};

fn main() -> CssResult<()> {
    let scenario = Scenario::build(ScenarioConfig {
        persons: 8,
        family_doctors: 1,
        seed: 33,
    })?;

    // The elderly-care office (authorized for all the social events,
    // including its department's own autonomy assessments) acts as the
    // monitoring node.
    let welfare = scenario.platform.consumer(scenario.orgs.elderly_office)?;
    let mut monitor = ProcessMonitor::new();
    monitor.register(ProcessDefinition::elderly_care());

    // Run pathways for several citizens (with different shapes).
    for (i, person) in scenario.persons.iter().take(6).cloned().enumerate() {
        run_pathway(&scenario, &person, 1 + i % 3, 100 + i as u64)?;
    }

    // The monitor feeds on the notification stream from the index.
    for person in scenario.persons.iter().take(6) {
        for n in welfare.inquire_by_person(person.id)? {
            monitor.feed(&n);
        }
    }
    monitor.check_deadlines(scenario.platform.clock().now());

    println!("tracked care pathways:");
    for inst in monitor.instances() {
        println!(
            "  person {:6}  steps={}  span={}d  status={:?}",
            inst.person.to_string(),
            inst.history.len(),
            inst.span().as_millis() / 86_400_000,
            match &inst.status {
                InstanceStatus::Running => "running".to_string(),
                InstanceStatus::Completed => "completed".to_string(),
                InstanceStatus::Violated(v) => format!("VIOLATED: {v:?}"),
            }
        );
    }

    let kpis = monitor.kpis();
    println!("\nregional KPIs:");
    println!("  pathways tracked    : {}", kpis.total);
    println!("  completed           : {}", kpis.completed);
    println!("  deadline violations : {}", kpis.deadline_violations);
    println!(
        "  mean setup time     : {} days",
        kpis.mean_completion.as_millis() / 86_400_000
    );
    println!(
        "  completion rate     : {:.0}%",
        kpis.completion_rate() * 100.0
    );
    println!(
        "  events outside known processes: {}",
        kpis.unmatched_events
    );
    Ok(())
}
