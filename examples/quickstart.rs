//! Quickstart: one producer, one consumer, the two-phase protocol.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The flow mirrors the paper's running example: a hospital publishes a
//! blood-test event; the family doctor receives the *notification*
//! (who/what/when/where, nothing sensitive), then explicitly requests
//! the *details* for a stated purpose, and receives only the fields the
//! hospital's privacy policy allows.

use css::prelude::*;

fn main() -> CssResult<()> {
    // 1. Assemble a platform (in-memory, system clock).
    let mut platform = CssPlatform::in_memory();
    let hospital = platform.register_organization("Hospital S. Maria")?;
    let doctor = platform.register_organization("Family Doctor Bianchi")?;
    platform.join(hospital, Role::Producer)?;
    platform.join(doctor, Role::Consumer)?;

    // 2. The hospital declares a class of events (its "XSD" in the
    //    catalog).
    let schema = EventSchema::new(EventTypeId::v1("blood-test"), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive())
        .field(FieldDef::optional("HivResult", FieldKind::Text).sensitive());
    let producer = platform.producer(hospital)?;
    producer.declare(&schema, Some("health/laboratory"))?;

    // 3. The hospital authors a privacy policy through the elicitation
    //    wizard: the doctor may see PatientId and Result — but never the
    //    HIV field — for healthcare treatment.
    producer
        .policy_wizard(&EventTypeId::v1("blood-test"))?
        .select_fields(["PatientId", "Result"])?
        .grant_to([doctor])?
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-blood-tests", "treatment access, HIV obfuscated")
        .save()?;

    // 4. The doctor subscribes (allowed only because the policy exists).
    let consumer = platform.consumer(doctor)?;
    let subscription = consumer.subscribe(&EventTypeId::v1("blood-test"))?;

    // 5. The hospital publishes an event. Details are persisted at its
    //    local gateway; only the notification travels.
    let mario = PersonIdentity {
        id: PersonId(42),
        fiscal_code: "RSSMRA45C12L378Y".into(),
        name: "Mario".into(),
        surname: "Rossi".into(),
    };
    let details = EventDetails::new(EventTypeId::v1("blood-test"))
        .with("PatientId", FieldValue::Integer(42))
        .with("Result", FieldValue::Text("negative".into()))
        .with("HivResult", FieldValue::Text("negative".into()));
    let now = platform.clock().now();
    producer.publish(mario, "blood test completed", details, now)?;

    // 6. Phase 1 — the doctor receives the notification.
    let notification = subscription.next()?.expect("notification routed").message;
    println!(
        "notification: {}",
        css_xml::to_string_pretty(&notification.to_xml())
    );

    // 7. Phase 2 — the doctor requests the details, stating the purpose.
    let response = consumer.request_details(&notification, Purpose::HealthcareTreatment)?;
    println!("allowed fields: {:?}", response.allowed_fields);
    println!(
        "Result = {:?}, HivResult = {:?} (blanked by policy)",
        response.details.get("Result").unwrap().render(),
        response.details.get("HivResult").unwrap().render(),
    );
    assert!(response.is_privacy_safe());

    // A request for a non-authorized purpose is denied.
    let denied = consumer.request_details(&notification, Purpose::StatisticalAnalysis);
    println!("statistics request -> {denied:?}");
    assert!(denied.is_err());

    // 8. Everything is on the tamper-evident audit log.
    platform.verify_audit()?;
    let report = platform.audit_report(&css::audit::AuditQuery::new());
    println!(
        "audit: {} records, {} denied, head intact",
        report.total, report.denied
    );

    // 9. The platform timed every hot-path stage along the way.
    let telemetry = platform.telemetry();
    assert!(telemetry.counter("controller.published") >= 1);
    assert!(telemetry.counter("bus.published") >= 1);
    assert!(telemetry.histogram("stage.pdp_evaluate").is_some());
    println!("\ntelemetry snapshot:\n{telemetry}");
    Ok(())
}
