//! A live platform with its ops plane up — scrape it while it runs.
//!
//! Run with: `cargo run --example ops_demo`
//!
//! Boots an in-memory platform with `ops_server` on an ephemeral port,
//! keeps publishing blood-test events, and prints the endpoints to
//! curl. The process exits on its own after `CSS_OPS_DEMO_SECS`
//! (default 600) so a scripted smoke run cannot leak a server.

use std::sync::Arc;
use std::time::Duration;

use css::monitor::{ProcessDefinition, ProcessMonitor};
use css::prelude::*;

fn main() -> CssResult<()> {
    let monitor = Arc::new(parking_lot::Mutex::new(ProcessMonitor::new()));
    monitor.lock().register(ProcessDefinition::elderly_care());

    let addr = std::env::var("CSS_OPS_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let mut builder = CssPlatformBuilder::new()
        .tracing(1024)
        .ops_server(addr)
        .ops_sample_interval(Duration::from_millis(250))
        .ops_monitor(monitor.clone())
        .chronicle(css::core::Retention::default())
        .blackbox(512);
    // CSS_OPS_INCIDENT_DIR redirects incident bundles (the obs.sh smoke
    // captures one and greps it for identifier leaks); unset, they land
    // under target/incidents/.
    if let Ok(dir) = std::env::var("CSS_OPS_INCIDENT_DIR") {
        builder = builder.incident_dir(dir);
    }
    // CSS_OPS_SHARDS pins the data-plane shard count (the obs.sh smoke
    // sweeps this and checks the per-shard /metrics series); unset, the
    // platform sizes it from the core count.
    if let Some(shards) = std::env::var("CSS_OPS_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        builder = builder.shards(shards);
    }
    let mut platform = builder.build()?;
    println!("data plane shards: {}", platform.shard_count());

    let hospital = platform.register_organization("Hospital S. Maria")?;
    let doctor = platform.register_organization("Family Doctor")?;
    platform.join(hospital, Role::Producer)?;
    platform.join(doctor, Role::Consumer)?;

    let ty = EventTypeId::v1("blood-test");
    let schema = EventSchema::new(ty.clone(), "Blood Test", hospital)
        .field(FieldDef::required("PatientId", FieldKind::Integer))
        .field(FieldDef::required("Result", FieldKind::Text).sensitive());
    let producer = platform.producer(hospital)?;
    producer.declare(&schema, None)?;
    producer
        .policy_wizard(&ty)?
        .select_fields(["PatientId", "Result"])?
        .grant_to([doctor])?
        .for_purposes([Purpose::HealthcareTreatment])
        .labeled("doctor-bt", "treatment access")
        .save()?;
    let consumer = platform.consumer(doctor)?;
    let sub = consumer.subscribe(&ty)?;

    let ops = platform.ops_handle().expect("ops server enabled");
    println!("ops plane listening at http://{}", ops.local_addr());
    println!("  curl http://{}/metrics", ops.local_addr());
    println!("  curl http://{}/health", ops.local_addr());
    println!("  curl http://{}/slo", ops.local_addr());
    println!(
        "  curl 'http://{}/query?metric=stage.total&fn=p99'",
        ops.local_addr()
    );
    println!(
        "  curl 'http://{}/range?metric=stage.total&res=minute'",
        ops.local_addr()
    );
    println!("  curl http://{}/traces", ops.local_addr());
    println!("  curl http://{}/monitor", ops.local_addr());
    println!("  curl http://{}/debug/exemplars", ops.local_addr());
    println!("  curl http://{}/debug/incidents", ops.local_addr());
    println!("  curl -X POST http://{}/debug/capture", ops.local_addr());

    let secs: u64 = std::env::var("CSS_OPS_DEMO_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);
    let deadline = std::time::Instant::now() + Duration::from_secs(secs);
    let mut i = 0u64;
    while std::time::Instant::now() < deadline {
        i += 1;
        let person = PersonIdentity {
            id: PersonId(i % 50 + 1),
            fiscal_code: format!("FC{:014}", i % 50 + 1),
            name: "Demo".into(),
            surname: format!("Subject{}", i % 50 + 1),
        };
        let details = EventDetails::new(ty.clone())
            .with("PatientId", FieldValue::Integer((i % 50 + 1) as i64))
            .with("Result", FieldValue::Text("negative".into()));
        producer.publish(person, format!("bt-{i}"), details, platform.clock().now())?;
        if let Some(n) = sub.next()? {
            consumer.request_details(&n.message, Purpose::HealthcareTreatment)?;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    Ok(())
}
