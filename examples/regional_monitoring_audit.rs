//! Regional process monitoring and audit, the governing body's view.
//!
//! Run with: `cargo run --example regional_monitoring_audit`
//!
//! Drives a randomized region-wide workload, then shows the two
//! accountability faces of the platform: the governance computing
//! statistics from purpose-limited detail requests (only
//! age/sex/autonomy-score, per the paper's example policy), and an
//! audit inquiry answering "who accessed this citizen's data and why?".

use css::audit::{AuditAction, AuditQuery};
use css::prelude::*;
use css::sim::{run_workload, Scenario, ScenarioConfig, WorkloadConfig};

fn main() -> CssResult<()> {
    let scenario = Scenario::build(ScenarioConfig {
        persons: 40,
        family_doctors: 3,
        seed: 7,
    })?;

    // A month of regional activity.
    let report = run_workload(
        &scenario,
        WorkloadConfig {
            events: 500,
            detail_request_prob: 0.35,
            wrong_purpose_prob: 0.05,
            seed: 99,
        },
    );
    println!("regional workload:");
    println!("  events published        : {}", report.published);
    println!(
        "  notifications delivered : {}",
        report.notifications_delivered
    );
    println!(
        "  detail requests permitted / denied: {} / {}",
        report.detail_permits, report.detail_denies
    );
    println!(
        "  bytes released (all / sensitive) : {} / {}",
        report.released_bytes, report.sensitive_released_bytes
    );

    // Governance statistics: autonomy scores across the population,
    // via purpose-limited detail requests.
    let governance = scenario.platform.consumer(scenario.orgs.governance)?;
    let assessments = governance.inquire_by_type(&EventTypeId::v1("autonomy-assessment"))?;
    let mut scores = Vec::new();
    for n in &assessments {
        let response = governance.request_details(n, Purpose::StatisticalAnalysis)?;
        // The policy limits governance to Age, Sex, AutonomyScore; the
        // psych notes are blanked.
        assert!(response.details.get("PsychNotes").unwrap().is_empty());
        if let Some(FieldValue::Integer(score)) = response.details.get("AutonomyScore") {
            scores.push(*score);
        }
    }
    if !scores.is_empty() {
        let avg = scores.iter().sum::<i64>() as f64 / scores.len() as f64;
        println!(
            "\ngovernance statistics: {} assessments, mean autonomy score {avg:.2}",
            scores.len()
        );
    }

    // Audit inquiry: a citizen (or the privacy guarantor) asks who
    // touched this person's data.
    let person = scenario.persons[0].id;
    let trail = scenario.platform.audit_query(
        &AuditQuery::new()
            .person(person)
            .action(AuditAction::DetailRequest),
    );
    println!("\ndetail requests about person {person}:");
    for record in trail.iter().take(10) {
        println!(
            "  {} actor={} purpose={:?} outcome={:?}",
            record.at,
            record.actor,
            record.purpose.as_ref().map(|p| p.code()),
            record.outcome
        );
    }

    // Denial statistics for the privacy guarantor.
    let denials = scenario
        .platform
        .audit_report(&AuditQuery::new().denied_only());
    println!("\ndenials by reason:");
    for (reason, count) in &denials.deny_reasons {
        println!("  {reason:30} {count}");
    }

    scenario.platform.verify_audit()?;
    println!(
        "\naudit hash chain verified over {} records",
        scenario.platform.audit_report(&AuditQuery::new()).total
    );
    Ok(())
}
