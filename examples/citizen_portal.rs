//! The citizen's view: PHR profile, consent control, access history —
//! plus credential-enforced participant identity.
//!
//! Run with: `cargo run --example citizen_portal`
//!
//! Exercises the Section 7 extensions: "the system can be used also
//! directly by the citizens to specify and control their consent", with
//! CSS as "the backbone for the implementation of a Personalized Health
//! Records (PHR)", and the identity-management future work of Section 5.

use css::prelude::*;
use css::sim::{run_pathway, Scenario, ScenarioConfig};

fn main() -> CssResult<()> {
    let mut scenario = Scenario::build(ScenarioConfig {
        persons: 4,
        family_doctors: 1,
        seed: 77,
    })?;
    let anna = scenario.persons[0].clone();

    // A few weeks of care generate Anna's history.
    run_pathway(&scenario, &anna, 3, 9)?;
    let doctor = scenario
        .platform
        .consumer(scenario.orgs.family_doctors[0])?;
    for n in doctor.inquire_by_person(anna.id)? {
        let _ = doctor.request_details(&n, Purpose::HealthcareTreatment);
    }

    // --- the citizen portal -----------------------------------------
    let portal = scenario.platform.citizen(anna.id);

    println!("== {} — my health & care record ==", anna);
    for n in portal.my_profile()? {
        println!(
            "  {}  {:28} at {}",
            n.occurred_at,
            n.event_type.to_string(),
            n.producer
        );
    }

    println!("\n== who accessed my data? ==");
    for r in portal.who_accessed_my_data()? {
        if matches!(r.action, css::audit::AuditAction::DetailRequest) {
            println!(
                "  {} actor={} purpose={:?} -> {:?}",
                r.at,
                r.actor,
                r.purpose.as_ref().map(|p| p.code()),
                r.outcome
            );
        }
    }

    // Anna withdraws consent for telecare sharing from the portal.
    portal.opt_out(ConsentScope::Producer(scenario.orgs.telecare))?;
    println!("\nAnna opted out of telecare sharing.");
    let telecare = scenario.platform.producer(scenario.orgs.telecare)?;
    let alarm = EventDetails::new(EventTypeId::v1("telecare-alarm"))
        .with("PatientId", FieldValue::Integer(anna.id.value() as i64))
        .with("AlarmKind", FieldValue::Code("fall".into()));
    let blocked = telecare.publish(
        anna.clone(),
        "alarm",
        alarm,
        scenario.platform.clock().now(),
    );
    println!("telecare publish now -> {blocked:?}");
    assert!(blocked.is_err());

    // --- identity enforcement ----------------------------------------
    let welfare_cred = scenario.platform.issue_credential(scenario.orgs.welfare)?;
    scenario.platform.enable_identity_enforcement();
    println!("\nidentity enforcement enabled");
    assert!(scenario.platform.consumer(scenario.orgs.welfare).is_err());
    let welfare = scenario.platform.consumer_with_credential(&welfare_cred)?;
    println!(
        "welfare authenticated with credential #{} and sees {} events about Anna",
        welfare_cred.serial,
        welfare.inquire_by_person(anna.id)?.len()
    );
    scenario.platform.revoke_credential(welfare_cred.serial);
    assert!(scenario
        .platform
        .consumer_with_credential(&welfare_cred)
        .is_err());
    println!("credential revoked — access now refused");

    scenario.platform.verify_audit()?;
    println!("\naudit chain verified");
    Ok(())
}
