//! Citizen consent and the pending-access-request flow.
//!
//! Run with: `cargo run --example consent_and_access_requests`
//!
//! Shows the two governance flows around the core protocol: a citizen
//! opting out of sharing (checked at publish *and* at detail-request
//! time), and a consumer with no policy asking for access — which lands
//! in the producer's pending queue and is granted through the
//! elicitation wizard (Section 5's flow).

use css::prelude::*;
use css::sim::{scenario::types, Scenario, ScenarioConfig};

fn main() -> CssResult<()> {
    let scenario = Scenario::build(ScenarioConfig {
        persons: 3,
        family_doctors: 1,
        seed: 5,
    })?;
    let platform = &scenario.platform;
    let anna = scenario.persons[0].clone();
    let bruno = scenario.persons[1].clone();

    // --- consent -----------------------------------------------------
    // Anna opts out of telecare sharing entirely.
    platform.record_consent(
        anna.id,
        ConsentScope::Producer(scenario.orgs.telecare),
        ConsentDecision::OptOut,
    )?;

    let telecare = platform.producer(scenario.orgs.telecare)?;
    let alarm = |person: &PersonIdentity| {
        EventDetails::new(types::telecare_alarm())
            .with("PatientId", FieldValue::Integer(person.id.value() as i64))
            .with("AlarmKind", FieldValue::Code("fall".into()))
            .with("Outcome", FieldValue::Text("ambulance dispatched".into()))
    };
    let now = platform.clock().now();

    // Publishing Anna's alarm is blocked at the source.
    let blocked = telecare.publish(anna.clone(), "fall alarm", alarm(&anna), now);
    println!("publish for opted-out Anna -> {blocked:?}");
    assert!(matches!(blocked, Err(CssError::ConsentWithheld(_))));

    // Bruno has not opted out: his alarm flows normally.
    let receipt = telecare.publish(bruno.clone(), "fall alarm", alarm(&bruno), now)?;
    println!("publish for Bruno -> event {}", receipt.global_id);

    // Bruno later opts out; already-published details become
    // unreachable even for authorized consumers.
    platform.record_consent(bruno.id, ConsentScope::All, ConsentDecision::OptOut)?;
    let doctor = platform.consumer(scenario.orgs.family_doctors[0])?;
    let seen = doctor.inquire_by_person(bruno.id)?;
    let denied = doctor.request_details(&seen[0], Purpose::HealthcareTreatment);
    println!("detail request after opt-out -> {denied:?}");
    assert_eq!(
        denied.unwrap_err(),
        CssError::AccessDenied(DenyReason::ConsentWithheld)
    );

    // --- pending access requests ---------------------------------------
    // The governance wants blood-test data it has no policy for.
    let governance = platform.consumer(scenario.orgs.governance)?;
    assert!(governance.subscribe(&types::blood_test()).is_err());
    let request_id = governance.request_access(
        types::blood_test(),
        vec![Purpose::StatisticalAnalysis],
        "anonymized lab statistics for the yearly health report",
        now,
    )?;
    println!("\ngovernance filed access request #{request_id}");

    // The hospital reviews its queue and grants a narrow policy:
    // result statistics only, no patient identifiers, for one year.
    let hospital = platform.producer(scenario.orgs.hospital)?;
    let pending = hospital.pending_requests();
    println!(
        "hospital pending queue: {:?}",
        pending
            .iter()
            .map(|r| (r.id, r.note.clone()))
            .collect::<Vec<_>>()
    );
    hospital
        .grant_request(request_id)?
        .select_fields(["Result", "Hemoglobin"])?
        .labeled("governance-lab-stats", "granted per request; 1 year")
        .valid_until(now.plus(Duration::days(365)))
        .save()?;
    println!("granted: governance may now subscribe");
    assert!(governance.subscribe(&types::blood_test()).is_ok());

    platform.verify_audit()?;
    println!("\naudit chain verified");
    Ok(())
}
