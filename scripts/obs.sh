#!/usr/bin/env bash
# Ops-plane smoke test: boot a live platform with the ops server on an
# ephemeral port, scrape /health /metrics /slo, and validate the
# responses (JSON well-formedness, Prometheus text syntax). The boot is
# swept across data-plane shard counts (CSS_OPS_SHARDS=1 and 4) and the
# per-shard /metrics series are checked for each. Exits nonzero on any
# failure; always reaps the demo process.
# Usage: scripts/obs.sh
set -euo pipefail
cd "$(dirname "$0")/.."

log=$(mktemp)
incident_dir=$(mktemp -d)
demo_pid=""
cleanup() {
    [ -n "$demo_pid" ] && kill "$demo_pid" 2>/dev/null || true
    [ -n "$demo_pid" ] && wait "$demo_pid" 2>/dev/null || true
    rm -f "$log"
    rm -rf "$incident_dir"
}
trap cleanup EXIT

cargo build -q --example ops_demo

fetch() { # fetch PATH -> body on stdout, fails on non-200
    local path=$1
    if [ -z "${CSS_OBS_NO_CURL:-}" ] && command -v curl > /dev/null 2>&1; then
        curl -sf "http://$addr$path"
    else
        # Zero-dep fallback: HTTP/1.0 over bash's /dev/tcp. The server
        # closes after each response, so one `cat` drains it all.
        local host=${addr%:*} port=${addr##*:} resp status
        exec 3<> "/dev/tcp/$host/$port"
        printf 'GET %s HTTP/1.0\r\n\r\n' "$path" >&3
        resp=$(cat <&3)
        exec 3<&- 3>&-
        status=$(printf '%s\n' "$resp" | head -n1 | tr -d '\r')
        case "$status" in *" 200 "*) ;; *)
            echo "obs: GET $path -> $status" >&2
            return 22 ;;
        esac
        printf '%s\n' "$resp" | sed '1,/^\r\{0,1\}$/d'
    fi
}

post_capture() { # POST /debug/capture -> bundle body on stdout
    if [ -z "${CSS_OBS_NO_CURL:-}" ] && command -v curl > /dev/null 2>&1; then
        curl -sf -X POST "http://$addr/debug/capture"
    else
        local host=${addr%:*} port=${addr##*:} resp status
        exec 3<> "/dev/tcp/$host/$port"
        printf 'POST /debug/capture HTTP/1.0\r\n\r\n' >&3
        resp=$(cat <&3)
        exec 3<&- 3>&-
        status=$(printf '%s\n' "$resp" | head -n1 | tr -d '\r')
        case "$status" in *" 200 "*) ;; *)
            echo "obs: POST /debug/capture -> $status" >&2
            return 22 ;;
        esac
        printf '%s\n' "$resp" | sed '1,/^\r\{0,1\}$/d'
    fi
}

check_json() { # check_json NAME BODY REQUIRED_KEY
    local name=$1 body=$2 key=$3
    if command -v python3 > /dev/null 2>&1; then
        printf '%s' "$body" | python3 -c 'import json,sys; json.load(sys.stdin)' \
            || { echo "obs: $name is not valid JSON" >&2; return 1; }
    fi
    case "$body" in
        "{"*"\"$key\""*) ;;
        *) echo "obs: $name missing key \"$key\": ${body:0:200}" >&2; return 1 ;;
    esac
    echo "obs: $name ok (${#body} bytes)"
}

run_smoke() { # run_smoke SHARDS
    local shards=$1
    : > "$log"
    CSS_OPS_DEMO_SECS=60 CSS_OPS_SHARDS=$shards CSS_OPS_INCIDENT_DIR=$incident_dir \
        ./target/debug/examples/ops_demo > "$log" &
    demo_pid=$!

    # The demo prints "ops plane listening at http://ADDR" once bound.
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's|^ops plane listening at http://||p' "$log" | head -n1)
        [ -n "$addr" ] && break
        if ! kill -0 "$demo_pid" 2>/dev/null; then
            echo "obs: demo exited before binding; log:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "obs: timed out waiting for ops server address" >&2
        exit 1
    fi
    echo "obs: ops plane at $addr (shards=$shards)"
    if ! grep -q "^data plane shards: $shards\$" "$log"; then
        echo "obs: demo did not honor CSS_OPS_SHARDS=$shards:" >&2
        grep "^data plane shards:" "$log" >&2 || true
        exit 1
    fi

    # Let the sampler tick and some traffic flow before scraping: on a
    # loaded box the demo's setup (registration, policy wizard) can take
    # a while, so poll until the live publish counter and every
    # per-shard series are being exported rather than sleeping a fixed
    # interval.
    local metrics="" ready i
    for _ in $(seq 1 150); do
        metrics=$(fetch /metrics || true)
        ready=1
        printf '%s\n' "$metrics" | grep -q '^css_controller_published_total ' || ready=0
        for ((i = 0; i < shards; i++)); do
            printf '%s\n' "$metrics" | grep -q "^css_shard_${i}_ops" || ready=0
        done
        [ "$ready" -eq 1 ] && break
        sleep 0.1
    done

    local health slo bad types
    health=$(fetch /health)
    check_json /health "$health" status
    case "$health" in
        *'"status":"healthy"'* | *'"status":"degraded"'*) ;;
        *) echo "obs: live platform not serving: $health" >&2; exit 1 ;;
    esac

    slo=$(fetch /slo)
    check_json /slo "$slo" slos

    # Prometheus text 0.0.4: every non-comment line is `name{labels} value`
    # with our css_ prefix, and every metric has HELP/TYPE headers.
    bad=$(printf '%s\n' "$metrics" | grep -v '^#' | grep -v '^$' \
        | grep -cEv '^css_[a-zA-Z0-9_]+(\{[^}]*\})? [0-9.+-]+$' || true)
    if [ "$bad" -ne 0 ]; then
        echo "obs: /metrics has $bad malformed exposition lines" >&2
        printf '%s\n' "$metrics" | grep -v '^#' \
            | grep -Ev '^css_[a-zA-Z0-9_]+(\{[^}]*\})? [0-9.+-]+$' | head >&2
        exit 1
    fi
    types=$(printf '%s\n' "$metrics" | grep -c '^# TYPE css_' || true)
    if [ "$types" -eq 0 ]; then
        echo "obs: /metrics has no TYPE headers" >&2
        exit 1
    fi
    if ! printf '%s\n' "$metrics" | grep -q '^css_controller_published_total '; then
        echo "obs: /metrics missing live publish counter" >&2
        exit 1
    fi
    # Per-shard data-plane series: one css_shard_{i}_ops counter per
    # shard (and none beyond), plus the imbalance gauge.
    local i
    for ((i = 0; i < shards; i++)); do
        if ! printf '%s\n' "$metrics" | grep -q "^css_shard_${i}_ops"; then
            echo "obs: /metrics missing per-shard series css_shard_${i}_ops (shards=$shards)" >&2
            printf '%s\n' "$metrics" | grep '^css_shard' >&2 || true
            exit 1
        fi
    done
    if printf '%s\n' "$metrics" | grep -q "^css_shard_${shards}_ops"; then
        echo "obs: /metrics has a series for nonexistent shard $shards" >&2
        exit 1
    fi
    if ! printf '%s\n' "$metrics" | grep -q '^css_shard_imbalance_pct '; then
        echo "obs: /metrics missing css_shard_imbalance_pct gauge" >&2
        exit 1
    fi
    echo "obs: /metrics ok ($(printf '%s\n' "$metrics" | wc -l) lines, $types metrics, $shards shard series)"

    # Metrics history: the chronicle answers /query and /range with
    # aggregates only. Poll until the first stage.total tick has been
    # retained, then grep both documents for identifier leaks.
    local query="" range
    for _ in $(seq 1 150); do
        query=$(fetch '/query?metric=stage.total&fn=p99' || true)
        case "$query" in *'"metric":"stage.total"'*) break ;; esac
        sleep 0.1
    done
    check_json "/query" "$query" metric
    case "$query" in
        *'"metric":"stage.total"'*) ;;
        *) echo "obs: /query never retained stage.total: ${query:0:200}" >&2; exit 1 ;;
    esac
    case "$query" in
        *'"fn":"quantile_over_time"'*) ;;
        *) echo "obs: /query p99 shorthand broken: ${query:0:200}" >&2; exit 1 ;;
    esac
    range=$(fetch '/range?metric=stage.total&res=raw')
    check_json "/range" "$range" points
    if printf '%s\n%s\n' "$query" "$range" | grep -Eq 'FC[0-9]{14}|"Demo"|Subject[0-9]'; then
        echo "obs: metrics history leaks a personal identifier:" >&2
        printf '%s\n%s\n' "$query" "$range" \
            | grep -Eo 'FC[0-9]{14}|"Demo"|Subject[0-9]+' | head >&2
        exit 1
    fi
    echo "obs: /query + /range ok (leak grep clean)"

    # Flight recorder: force an incident over HTTP, validate the bundle,
    # and grep it (plus the on-disk copy) for identifier leaks — the
    # demo publishes FC-coded identities with name "Demo" and surname
    # "Subject<i>", none of which may survive into a bundle.
    local exemplars bundle bundle_file incidents
    exemplars=$(fetch /debug/exemplars)
    check_json /debug/exemplars "$exemplars" exemplars
    bundle=$(post_capture)
    check_json "POST /debug/capture" "$bundle" schema
    case "$bundle" in
        *'"schema":"css-blackbox/1"'*) ;;
        *) echo "obs: bundle missing schema marker: ${bundle:0:200}" >&2; exit 1 ;;
    esac
    incidents=$(fetch /debug/incidents)
    check_json /debug/incidents "$incidents" incidents
    case "$incidents" in
        *'"kind":"manual"'*) ;;
        *) echo "obs: forced incident not listed: $incidents" >&2; exit 1 ;;
    esac
    bundle_file=$(ls -t "$incident_dir"/incident-*.json 2>/dev/null | head -n1 || true)
    if [ -z "$bundle_file" ]; then
        echo "obs: no incident bundle written under $incident_dir" >&2
        exit 1
    fi
    if cat "$bundle_file" <(printf '%s' "$bundle") | grep -Eq 'FC[0-9]{14}|"Demo"|Subject[0-9]'; then
        echo "obs: incident bundle leaks a personal identifier:" >&2
        grep -Eo 'FC[0-9]{14}|"Demo"|Subject[0-9]+' "$bundle_file" | head >&2
        exit 1
    fi
    echo "obs: incident capture ok ($(basename "$bundle_file"), $(wc -c < "$bundle_file") bytes, leak grep clean)"

    kill "$demo_pid" 2>/dev/null || true
    wait "$demo_pid" 2>/dev/null || true
    demo_pid=""
}

for shards in 1 4; do
    run_smoke "$shards"
done

echo "obs: ops plane smoke passed"
