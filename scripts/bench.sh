#!/usr/bin/env bash
# Run experiment benches in smoke mode and emit machine-readable
# BENCH_<name>.json files: per-benchmark ns/op + iteration counts, and
# the stage.* telemetry percentiles the benches print (p50/p99).
#
# Usage: scripts/bench.sh [--ratchet] [bench ...]
#   (default benches: e4_detail_request e9_encrypted_index
#    e11_policy_scaling e15_mixed_workload e16_trace_overhead
#    e17_ops_overhead e18_consumer_groups e19_shard_scaling
#    e21_blackbox_overhead e22_chronicle_overhead)
#
# --ratchet: before overwriting each BENCH_<name>.json, keep the
#   committed copy and compare fresh ns_per_iter per benchmark id
#   against it — a perf-regression ratchet. At matching CSS_BENCH_MS a
#   series >15% slower than committed warns and >40% fails the run
#   (exit 1); when the scales differ (smoke run vs full-scale
#   baseline) the bars relax to 40/100 because tiny measurement
#   windows carry ±50% noise on this single-core box. New series (no
#   committed counterpart) pass silently, and concurrent series
#   (threads_N / shards_N, N>1) are warn-only — on one core their
#   timings measure scheduler contention, not the code under test.
#
# Environment:
#   CSS_BENCH_MS    measurement window per benchmark in ms (default 50;
#                   the criterion shim reads the same variable)
#   CSS_E19_EVENTS  large-world event count for e19 (default 1000000)
#   CSS_E19_PERSONS large-world citizen count for e19 (default 10000)
set -euo pipefail
cd "$(dirname "$0")/.."

RATCHET=0
if [ "${1:-}" = "--ratchet" ]; then
  RATCHET=1
  shift
fi
BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
  BENCHES=(e4_detail_request e9_encrypted_index e11_policy_scaling e15_mixed_workload e16_trace_overhead e17_ops_overhead e18_consumer_groups e19_shard_scaling e21_blackbox_overhead e22_chronicle_overhead)
fi
: "${CSS_BENCH_MS:=50}"
export CSS_BENCH_MS

ratchet_failed=0
for bench in "${BENCHES[@]}"; do
  out=$(mktemp)
  committed=""
  if [ "$RATCHET" -eq 1 ] && [ -f "BENCH_${bench}.json" ]; then
    committed=$(mktemp)
    cp "BENCH_${bench}.json" "$committed"
  fi
  echo "== $bench (CSS_BENCH_MS=${CSS_BENCH_MS})"
  cargo bench -q -p css-bench --bench "$bench" 2>&1 | tee "$out"
  awk -v bench="$bench" -v ms="$CSS_BENCH_MS" '
    # Benchmark lines: group/id    time:   12.345 µs/iter (n=1234)
    $1 ~ /\// && $0 ~ / time: / && $0 ~ /\/iter/ {
      v = ""; u = ""
      for (i = 2; i <= NF; i++) if ($i == "time:") { v = $(i + 1); u = $(i + 2); break }
      if (v == "") next
      f = 1000.0                      # default µs (non-ASCII prefix)
      if (u ~ /^ns/) f = 1.0
      else if (u ~ /^ms/) f = 1000000.0
      iters = 0
      if ($NF ~ /^\(n=/) { s = $NF; gsub(/[^0-9]/, "", s); iters = s + 0 }
      nr++
      rname[nr] = $1; rns[nr] = v * f; rit[nr] = iters
    }
    # Threaded-throughput lines (E15): "N ops across M thread(s): X ops/s"
    $0 ~ / ops across / && $NF == "ops/s" {
      t = 0; v = 0
      for (i = 1; i <= NF; i++) if ($i == "across") t = $(i + 1) + 0
      v = $(NF - 1) + 0
      if (t > 0) { sops[t] = v; if (t > smax) smax = t; shave = 1 }
    }
    # Large-world tail line (E19): "1M-world: events=N ... p50=Xns p99=Yns"
    $1 == "1M-world:" {
      for (i = 2; i <= NF; i++) {
        n = index($i, "=")
        if (n == 0) continue
        k = substr($i, 1, n - 1); val = substr($i, n + 1)
        gsub(/[^0-9]/, "", val)
        wk[++nw] = k; wv[nw] = val + 0
      }
      whave = 1
    }
    # Telemetry lines: stage.pdp_evaluate  count=N  p50=Xns p99=Yns ...
    # (trace.* counters from E16 use the same format)
    $1 ~ /^(stage|trace)\./ && $2 ~ /^count=/ {
      name = $1; sub(/:$/, "", name)
      c = $2; gsub(/[^0-9]/, "", c)
      p50 = 0; p99 = 0
      for (i = 3; i <= NF; i++) {
        if ($i ~ /^p50=/) { p50 = $i; sub(/^p50=/, "", p50); gsub(/[^0-9]/, "", p50) }
        if ($i ~ /^p99=/) { p99 = $i; sub(/^p99=/, "", p99); gsub(/[^0-9]/, "", p99) }
      }
      nt++
      tname[nt] = name; tc[nt] = c + 0; t50[nt] = p50 + 0; t99[nt] = p99 + 0
    }
    END {
      printf "{\n  \"bench\": \"%s\",\n  \"bench_ms\": %d,\n  \"results\": [", bench, ms
      for (i = 1; i <= nr; i++)
        printf "%s\n    {\"name\": \"%s\", \"ns_per_iter\": %.3f, \"iters\": %d}", (i > 1 ? "," : ""), rname[i], rns[i], rit[i]
      printf "\n  ],\n  \"telemetry\": ["
      for (i = 1; i <= nt; i++)
        printf "%s\n    {\"stage\": \"%s\", \"count\": %d, \"p50_ns\": %d, \"p99_ns\": %d}", (i > 1 ? "," : ""), tname[i], tc[i], t50[i], t99[i]
      printf "\n  ]"
      # Threaded scaling (E15): ops/s per thread count plus the 8v1
      # speedup ratio, so the shard win is one JSON field.
      if (shave) {
        printf ",\n  \"scaling\": {\"ops_per_sec\": {"
        first = 1
        for (t = 1; t <= smax; t++) if (t in sops) {
          printf "%s\"threads_%d\": %.0f", (first ? "" : ", "), t, sops[t]
          first = 0
        }
        printf "}"
        if ((1 in sops) && (8 in sops) && sops[1] > 0)
          printf ", \"speedup_8v1\": %.3f", sops[8] / sops[1]
        printf "}"
      }
      # Large-world tail (E19): the key=value pairs of the 1M-world marker.
      if (whave) {
        printf ",\n  \"world\": {"
        for (i = 1; i <= nw; i++)
          printf "%s\"%s\": %d", (i > 1 ? ", " : ""), wk[i], wv[i]
        printf "}"
      }
      # Overhead benches: the on/off ns-per-op delta, when the bench
      # registered an off and an on series (E16 collector_off/on,
      # E17 sampler_off/on, E21 recorder_off/on, E22 chronicle_off/on).
      off = -1; on = -1
      for (i = 1; i <= nr; i++) {
        if (rname[i] ~ /\/(collector|sampler|recorder|chronicle)_off$/) off = rns[i]
        if (rname[i] ~ /\/(collector|sampler|recorder|chronicle)_on$/) on = rns[i]
      }
      if (off >= 0 && on >= 0) {
        dropped = 0
        for (i = 1; i <= nt; i++) if (tname[i] == "trace.spans_dropped") dropped = tc[i]
        printf ",\n  \"overhead\": {\"off_ns\": %.3f, \"on_ns\": %.3f, \"delta_ns_per_op\": %.3f, \"delta_pct\": %.2f, \"spans_dropped\": %d}", off, on, on - off, (off > 0 ? 100.0 * (on - off) / off : 0), dropped
      }
      printf "\n}\n"
    }
  ' "$out" > "BENCH_${bench}.json"
  rm -f "$out"
  echo "-- wrote BENCH_${bench}.json"

  # The ratchet: fresh ns_per_iter vs the committed copy, per series.
  # Like-for-like runs (same bench_ms) get the tight 15/40 bars; a
  # smoke run compared against a full-scale baseline only trips on a
  # >2× blowup, because tiny windows carry ±50% noise on this box.
  if [ -n "$committed" ]; then
    while read -r verdict bar name old new pct; do
      case "$verdict" in
        FAIL)
          echo "-- ratchet FAIL: $name ${old}ns -> ${new}ns (${pct}%, bar +${bar}%)" >&2
          ratchet_failed=1
          ;;
        warn)
          echo "-- ratchet warn: $name ${old}ns -> ${new}ns (${pct}%, bar +${bar}%)"
          ;;
        *)
          echo "-- ratchet ok:   $name ${old}ns -> ${new}ns (${pct}%)"
          ;;
      esac
    done < <(awk '
      FNR == 1 { file++ }
      /"bench_ms": / {
        v = $0; sub(/.*"bench_ms": /, "", v); sub(/,.*/, "", v)
        ms[file] = v + 0
      }
      /"name": "/ && /"ns_per_iter": / {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        v = $0; sub(/.*"ns_per_iter": /, "", v); sub(/,.*/, "", v)
        if (file == 1) old[name] = v + 0
        else if (name in old) {
          warn_bar = 15; fail_bar = 40
          if (ms[1] != ms[2]) { warn_bar = 40; fail_bar = 100 }
          pct = (old[name] > 0) ? 100.0 * (v - old[name]) / old[name] : 0
          verdict = "ok"; bar = fail_bar
          if (pct > fail_bar) verdict = "FAIL"
          else if (pct > warn_bar) { verdict = "warn"; bar = warn_bar }
          # Concurrent series never hard-fail: on a single-core box
          # multi-thread (and multi-shard scatter-gather) timings
          # measure scheduler contention, not the code under test.
          if (verdict == "FAIL" && name ~ /(shards|threads)_([2-9]|[0-9][0-9])/) verdict = "warn"
          printf "%s %d %s %.3f %.3f %+.1f\n", verdict, bar, name, old[name], v, pct
        }
      }
    ' "$committed" "BENCH_${bench}.json")
    rm -f "$committed"
  fi
done

if [ "$ratchet_failed" -ne 0 ]; then
  echo "bench: perf-regression ratchet failed (ns_per_iter over the committed fail bar)" >&2
  exit 1
fi
