#!/usr/bin/env bash
# Run the css-lint privacy-invariant pass over the workspace.
#
# Writes the machine-readable report to LINT_REPORT.json (schema v1,
# see crates/lint/src/json.rs) and exits nonzero on any error-severity
# finding — the same gate crates/lint/tests/self_check.rs enforces.
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if cargo run -q -p css-lint -- --format json > LINT_REPORT.json; then
    echo "css-lint: clean ($(grep -o '"files_scanned":[0-9]*' LINT_REPORT.json | cut -d: -f2) files, report in LINT_REPORT.json)"
else
    status=$?
    echo "css-lint: FAILED (exit $status); findings:" >&2
    # Re-run in human-readable form so the failure is actionable.
    cargo run -q -p css-lint || true
    exit "$status"
fi
