#!/usr/bin/env bash
# Run the css-lint privacy-invariant pass over the workspace.
#
# Writes the machine-readable report to LINT_REPORT.json (schema v2,
# see crates/lint/src/json.rs) and exits nonzero on any error-severity
# finding or any waiver not covered by the committed lint-baseline.json
# budget — the same gate crates/lint/tests/self_check.rs enforces.
#
# Environment:
#   LINT_FORMAT=json|sarif   output format (default json). sarif writes
#                            LINT_REPORT.sarif instead.
#   LINT_NO_CACHE=1          force a cold run (skip target/css-lint-cache.json)
#
# Usage: scripts/lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

format="${LINT_FORMAT:-json}"
case "$format" in
    json)  out=LINT_REPORT.json ;;
    sarif) out=LINT_REPORT.sarif ;;
    *) echo "lint.sh: LINT_FORMAT must be json or sarif, got \`$format\`" >&2; exit 2 ;;
esac

args=(--format "$format" --baseline lint-baseline.json)
if [[ "${LINT_NO_CACHE:-0}" == "1" ]]; then
    args+=(--no-cache)
fi

if cargo run -q -p css-lint -- "${args[@]}" > "$out"; then
    if [[ "$format" == "json" ]]; then
        echo "css-lint: clean ($(grep -o '"files_scanned":[0-9]*' "$out" | cut -d: -f2) files, report in $out)"
    else
        echo "css-lint: clean (report in $out)"
    fi
else
    status=$?
    echo "css-lint: FAILED (exit $status); findings:" >&2
    # Re-run in human-readable form so the failure is actionable.
    cargo run -q -p css-lint -- --baseline lint-baseline.json || true
    exit "$status"
fi
