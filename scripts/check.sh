#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, build, tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== css-lint: privacy-invariant pass (waiver budget vs lint-baseline.json)"
scripts/lint.sh

echo "== tracing: unit + end-to-end suite"
cargo test -q -p css-trace
cargo test -q --test trace_integration

echo "== tier-1: build + test"
cargo build --release
cargo test -q

echo "== ops plane: live scrape smoke"
scripts/obs.sh

echo "== benches: build + smoke run + perf-regression ratchet"
cargo build --benches
# Smoke sizes only — a real BENCH_*.json refresh is a plain
# `scripts/bench.sh` (e19 then builds its full-scale sim world).
# --ratchet compares the fresh ns_per_iter against the committed
# BENCH_*.json values (warn >15%, fail >40%); after a green check,
# regenerate the JSONs at full scale with `scripts/bench.sh` so the
# committed baseline stays a full-scale run.
CSS_BENCH_MS=5 CSS_E19_EVENTS=20000 CSS_E19_PERSONS=500 scripts/bench.sh --ratchet
